"""Tests for the nonblocking API of the system MPI layer.

Covers the split-phase collectives (``Ialltoallv`` / ``Ineighbor_alltoallv``),
the readiness-probing ``Test``, and the ``Waitany`` all-null regression.
"""

import numpy as np
import pytest

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.errors import MpiArgumentError, MpiError
from repro.mpi.request import Request, null_request
from repro.mpi.world import World


class TestWaitanyAllNull:
    def test_all_null_list_raises(self):
        """Regression: an all-null list used to return (0, status) silently;
        a caller completing requests one by one would loop forever."""
        with pytest.raises(MpiError):
            Request.Waitany([null_request(), null_request()])

    def test_empty_list_raises(self):
        with pytest.raises(MpiError):
            Request.Waitany([])

    def test_null_entries_skipped(self):
        def program(ctx):
            if ctx.rank == 0:
                buf = np.arange(8, dtype=np.uint8)
                ctx.comm.Send(buf, dest=1)
                return True
            buf = np.zeros(8, dtype=np.uint8)
            request = ctx.comm.Irecv(buf)
            index, status = Request.Waitany([null_request(), request, null_request()])
            assert index == 1
            assert status.Get_source() == 0
            assert (buf == np.arange(8, dtype=np.uint8)).all()
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_completed_non_null_returned(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(np.zeros(4, dtype=np.uint8), dest=1)
                return True
            request = ctx.comm.Irecv(np.zeros(4, dtype=np.uint8))
            request.Wait()
            index, _ = Request.Waitany([null_request(), request])
            assert index == 1
            return True

        assert all(World(2, ranks_per_node=1).run(program))


class TestWaitanyArrivalOrder:
    def test_blocks_on_earliest_arrival_not_list_order(self):
        """Regression: with nothing nonblockingly completable, ``Waitany``
        used to block on the first active request; it must pick the one with
        the earliest known arrival time instead."""
        from repro.gpu.clock import VirtualClock

        clock = VirtualClock()
        late = Request("send", completion_time=2.0, clock=clock)
        early = Request("send", completion_time=1.0, clock=clock)
        index, _ = Request.Waitany([late, early])
        assert index == 1
        # The clock advanced only to the early completion, not past the late.
        assert clock.now == 1.0
        assert not late.completed

    def test_arrival_callback_orders_receives(self):
        from repro.gpu.clock import VirtualClock
        from repro.mpi.status import Status

        clock = VirtualClock()
        completions = []

        def make(when):
            return Request(
                "recv",
                complete=lambda: completions.append(when) or Status(),
                arrival=lambda: when,
            )

        slow, fast = make(5.0), make(0.5)
        index, _ = Request.Waitany([slow, fast])
        assert index == 1
        assert completions == [0.5]

    def test_unknown_arrivals_fall_back_to_list_order(self):
        from repro.mpi.status import Status

        request = Request("recv", complete=lambda: Status(tag=3))
        index, status = Request.Waitany([request, Request("recv", complete=Status)])
        assert index == 0
        assert status.Get_tag() == 3

    def test_earliest_arrival_in_world(self):
        """Two Irecvs whose messages arrive out of list order: Waitany must
        complete the earlier arrival first and leave the later one pending."""

        def program(ctx):
            if ctx.rank == 0:
                # Isends post both messages at (nearly) the same virtual time;
                # the larger one takes longer on the wire, so the second-listed
                # receive below is the one that completes first.
                slow = ctx.comm.Isend(np.zeros(1 << 18, dtype=np.uint8), dest=1, tag=1)
                fast = ctx.comm.Isend(np.full(1 << 16, 9, dtype=np.uint8), dest=1, tag=2)
                ctx.comm.Barrier()
                Request.Waitall([slow, fast])
                ctx.comm.Barrier()
                return True
            big = np.zeros(1 << 18, dtype=np.uint8)
            small = np.zeros(1 << 16, dtype=np.uint8)
            slow = ctx.comm.Irecv(big, source=0, tag=1)
            fast = ctx.comm.Irecv(small, source=0, tag=2)
            ctx.comm.Barrier()  # both messages posted; neither arrived yet
            slow_at, fast_at = slow.arrival_hint(), fast.arrival_hint()
            assert slow_at is not None and fast_at is not None
            assert ctx.clock.now < fast_at < slow_at  # genuinely pending
            index, status = Request.Waitany([slow, fast])
            # tag-2 is smaller and lands first despite being listed last.
            assert index == 1
            assert status.Get_tag() == 2
            assert ctx.clock.now == fast_at  # did not wait for the slow one
            assert (small == 9).all()
            slow.Wait()
            ctx.comm.Barrier()
            return True

        assert all(World(2, ranks_per_node=1).run(program))


class TestRequestTestReadiness:
    def test_testall_reports_pending_then_done(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(np.ones(16, dtype=np.uint8), dest=1)
                return True
            buf = np.zeros(16, dtype=np.uint8)
            request = ctx.comm.Irecv(buf, source=0)
            done, statuses = Request.Testall([request])
            if not done:
                request.Wait()
            assert request.completed
            assert (buf == 1).all()
            return True

        assert all(World(2, ranks_per_node=1).run(program))


def _alltoallv_bytes(ctx, comm, *, nonblocking):
    size = comm.Get_size()
    chunk = 64
    send = np.zeros(chunk * size, dtype=np.uint8)
    recv = np.zeros(chunk * size, dtype=np.uint8)
    for peer in range(size):
        send[peer * chunk : (peer + 1) * chunk] = (ctx.rank * 10 + peer) % 251
    counts = [chunk] * size
    displs = [peer * chunk for peer in range(size)]
    if nonblocking:
        comm.Ialltoallv(send, counts, displs, recv, counts, displs).Wait()
    else:
        comm.Alltoallv(send, counts, displs, recv, counts, displs)
    return recv.copy()


class TestIalltoallvByte:
    def test_matches_blocking(self):
        blocking = World(4, ranks_per_node=2).run(
            lambda ctx: _alltoallv_bytes(ctx, ctx.comm, nonblocking=False)
        )
        deferred = World(4, ranks_per_node=2).run(
            lambda ctx: _alltoallv_bytes(ctx, ctx.comm, nonblocking=True)
        )
        for a, b in zip(blocking, deferred):
            assert np.array_equal(a, b)

    def test_sends_posted_before_wait(self):
        """The split phase: posting happens at call time, not at Wait."""

        def program(ctx):
            size = ctx.size
            send = np.zeros(4 * size, dtype=np.uint8)
            recv = np.zeros(4 * size, dtype=np.uint8)
            counts = [4] * size
            displs = [4 * p for p in range(size)]
            request = ctx.comm.Ialltoallv(send, counts, displs, recv, counts, displs)
            posted = ctx.comm.router.messages_posted
            request.Wait()
            return posted

        posted = World(2, ranks_per_node=1).run(program)
        assert all(p >= 1 for p in posted)

    def test_validation_raises_at_call_time(self):
        def program(ctx):
            send = np.zeros(8, dtype=np.uint8)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Ialltoallv(send, [-1] * ctx.size, [0] * ctx.size, send, [8] * ctx.size, [0] * ctx.size)
            return True

        assert all(World(1).run(program))

    def test_half_specified_types_rejected(self):
        def program(ctx):
            send = np.zeros(8, dtype=np.uint8)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Ialltoallv(
                    send, [8], [0], send, [8], [0], sendtypes=BYTE
                )
            return True

        assert all(World(1).run(program))


class TestIalltoallvTyped:
    def _typed(self, ctx, comm, *, nonblocking):
        datatype = comm.Type_commit(Type_vector(8, 4, 16, BYTE))
        size = comm.Get_size()
        send = ctx.gpu.malloc(datatype.extent * size)
        recv = ctx.gpu.malloc(datatype.extent * size)
        send.data[:] = (ctx.rank + 1) % 251
        counts = [1] * size
        displs = [peer * datatype.extent for peer in range(size)]
        if nonblocking:
            comm.Ialltoallv(
                send, counts, displs, recv, counts, displs,
                sendtypes=datatype, recvtypes=datatype,
            ).Wait()
        else:
            comm.Alltoallv(
                send, counts, displs, recv, counts, displs,
                sendtypes=datatype, recvtypes=datatype,
            )
        return recv.data.copy()

    def test_matches_blocking(self):
        blocking = World(4, ranks_per_node=2).run(
            lambda ctx: self._typed(ctx, ctx.comm, nonblocking=False)
        )
        deferred = World(4, ranks_per_node=2).run(
            lambda ctx: self._typed(ctx, ctx.comm, nonblocking=True)
        )
        for a, b in zip(blocking, deferred):
            assert np.array_equal(a, b)


class TestIneighborAlltoallv:
    def test_matches_blocking_neighbor(self):
        def program(ctx, nonblocking):
            size = ctx.size
            neighbors = [(ctx.rank + 1) % size, (ctx.rank - 1) % size]
            if len(set(neighbors)) != len(neighbors):
                neighbors = [neighbors[0]]
            chunk = 32
            send = np.zeros(chunk * len(neighbors), dtype=np.uint8)
            recv = np.zeros(chunk * len(neighbors), dtype=np.uint8)
            send[:] = (ctx.rank + 1) % 251
            counts = [chunk] * len(neighbors)
            displs = [i * chunk for i in range(len(neighbors))]
            if nonblocking:
                ctx.comm.Ineighbor_alltoallv(
                    neighbors, send, counts, displs, recv, counts, displs
                ).Wait()
            else:
                ctx.comm.Neighbor_alltoallv(
                    neighbors, send, counts, displs, recv, counts, displs
                )
            return recv.copy()

        blocking = World(4, ranks_per_node=2).run(program, False)
        deferred = World(4, ranks_per_node=2).run(program, True)
        for a, b in zip(blocking, deferred):
            assert np.array_equal(a, b)


class TestVirtualArrivalGating:
    """``Test`` must answer in virtual time, not wall-clock mailbox state."""

    def test_posted_but_not_arrived_is_not_complete(self):
        def program(ctx):
            nbytes = 4 * 1024 * 1024  # big enough that wire time >> barrier time
            if ctx.rank == 0:
                ctx.comm.Isend(np.ones(nbytes, dtype=np.uint8), dest=1)
                ctx.comm.Barrier()
                ctx.comm.Barrier()
                return True
            buf = np.zeros(nbytes, dtype=np.uint8)
            request = ctx.comm.Irecv(buf, source=0)
            ctx.comm.Barrier()  # envelope is in the mailbox past this point
            done, _ = request.Test()
            assert not done, "Test completed before the message's virtual arrival"
            envelope = ctx.comm.router.probe(ctx.rank, 0, -1, ctx.comm.context)
            assert envelope is not None
            ctx.clock.advance_to(envelope.available_at)
            done, status = request.Test()
            assert done and status is not None
            ctx.comm.Barrier()
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_waitany_prefers_completable_over_blocking(self):
        """Waitany must return an already-arrived request even when it is
        listed after one that would block forever."""

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.Send(np.full(8, 3, dtype=np.uint8), dest=1, tag=7)
                ctx.comm.Barrier()
                return True
            never = ctx.comm.Irecv(np.zeros(8, dtype=np.uint8), source=0, tag=99)
            arrived_buf = np.zeros(8, dtype=np.uint8)
            arrived = ctx.comm.Irecv(arrived_buf, source=0, tag=7)
            ctx.comm.Barrier()  # tag-7 message posted and (post-barrier) arrived
            index, status = Request.Waitany([never, arrived])
            assert index == 1
            assert status.Get_tag() == 7
            assert (arrived_buf == 3).all()
            return True

        assert all(World(2, ranks_per_node=1).run(program))
