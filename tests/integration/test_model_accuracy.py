"""The performance model against the functional simulation.

Section 6.3's implicit claim is that the measured-and-interpolated model is a
good enough predictor of real send latency to pick the right method.  Here we
check it quantitatively against this reproduction's own functional path: for
a grid of object sizes and block lengths, the model's end-to-end estimate
must agree with the steady-state latency actually accumulated by the
interposed send/recv pair, within a factor that would never flip a method
decision whose margin exceeds that factor.
"""

import pytest

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import interpose

KIB = 1024
MIB = 1024 * 1024


def functional_latency(object_bytes: int, block_bytes: int, method: PackMethod, summit_model) -> float:
    """Steady-state one-way latency through the interposer (max of both ranks)."""

    def program(ctx):
        comm = interpose(ctx, TempiConfig(method=method), model=summit_model)
        nblocks = max(1, object_bytes // block_bytes)
        datatype = comm.Type_commit(Type_vector(nblocks, block_bytes, 2 * block_bytes, BYTE))
        buffer = ctx.gpu.malloc(datatype.extent)
        if ctx.rank == 0:
            comm.Send((buffer, 1, datatype), dest=1, tag=0)
            start = ctx.clock.now
            comm.Send((buffer, 1, datatype), dest=1, tag=1)
            return ctx.clock.now - start
        comm.Recv((buffer, 1, datatype), source=0, tag=0)
        start = ctx.clock.now
        comm.Recv((buffer, 1, datatype), source=0, tag=1)
        return ctx.clock.now - start

    return max(World(2, ranks_per_node=1).run(program))


GRID = [
    (KIB, 8),
    (64 * KIB, 8),
    (MIB, 8),
    (MIB, 64),
    (4 * MIB, 256),
]


class TestModelTracksFunctionalLatency:
    @pytest.mark.parametrize("object_bytes,block_bytes", GRID)
    def test_device_estimate_within_2x(self, summit_model, object_bytes, block_bytes):
        estimate = summit_model.estimate(object_bytes, block_bytes).device
        measured = functional_latency(object_bytes, block_bytes, PackMethod.DEVICE, summit_model)
        assert 0.4 < estimate / measured < 2.5

    @pytest.mark.parametrize("object_bytes,block_bytes", GRID)
    def test_oneshot_estimate_within_2x(self, summit_model, object_bytes, block_bytes):
        estimate = summit_model.estimate(object_bytes, block_bytes).oneshot
        measured = functional_latency(object_bytes, block_bytes, PackMethod.ONESHOT, summit_model)
        assert 0.4 < estimate / measured < 2.5

    def test_decisions_with_clear_margin_are_correct(self, summit_model):
        """Wherever the model sees a >=2x gap between methods, forcing the
        'wrong' method really is slower in the functional simulation."""
        checked = 0
        for object_bytes, block_bytes in GRID:
            estimate = summit_model.estimate(object_bytes, block_bytes)
            ratio = max(estimate.oneshot, estimate.device) / min(estimate.oneshot, estimate.device)
            if ratio < 2.0:
                continue
            faster = estimate.best()
            slower = (
                PackMethod.DEVICE if faster is PackMethod.ONESHOT else PackMethod.ONESHOT
            )
            fast_measured = functional_latency(object_bytes, block_bytes, faster, summit_model)
            slow_measured = functional_latency(object_bytes, block_bytes, slower, summit_model)
            assert fast_measured < slow_measured
            checked += 1
        assert checked >= 1
