"""Plan-cache and selection-memo invalidation: every key change must miss.

The fast path may only ever reuse a compiled plan for the *exact* same
call: same counts, same displacements, same committed datatype object,
same blocking mode.  Each test mutates one of those and asserts — through
the ``InterposerStats`` hit/miss counters — that the cache missed.  A hit
on a changed shape would replay the wrong transcript and silently corrupt
the simulation, so these are correctness tests, not performance tests.

Config and machine changes invalidate structurally: the cache lives on the
communicator, and a different ``TempiConfig`` or machine spec means a
different interposed communicator with its own empty cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.plan import PlanCache, PlanError

NRANKS = 2


def _world(config=None, summit_model=None):
    """An interposed 2-rank world: per-rank (ctx, comm, datatype, buffers)."""
    world = World(NRANKS, ranks_per_node=2)
    setup = []
    for ctx in world.contexts:
        comm = interpose(ctx, config or TempiConfig(), model=summit_model)
        datatype = comm.Type_commit(Type_vector(4, 8, 24, BYTE))
        send = ctx.gpu.malloc(datatype.extent * 4 * NRANKS)
        recv = ctx.gpu.malloc(datatype.extent * 4 * NRANKS)
        send.data[:] = np.arange(send.nbytes, dtype=np.uint64).astype(np.uint8)
        setup.append((ctx, comm, datatype, send, recv))
    return setup


def _exchange(setup, counts=None, displs=None, datatypes=None):
    """One inline nonblocking round: all ranks post, then all ranks wait."""
    requests = []
    for index, (ctx, comm, datatype, send, recv) in enumerate(setup):
        dt = datatypes[index] if datatypes is not None else datatype
        row = counts if counts is not None else [1] * NRANKS
        dis = displs if displs is not None else [peer * dt.extent * 2 for peer in range(NRANKS)]
        requests.append(comm.Ialltoallv(
            send, row, dis, recv, row, dis, sendtypes=dt, recvtypes=dt,
        ))
    for request in requests:
        request.Wait()


def _stats(setup):
    hits = sum(comm.tempi.stats.plan_cache_hits for _, comm, *_ in setup)
    misses = sum(comm.tempi.stats.plan_cache_misses for _, comm, *_ in setup)
    return hits, misses


class TestPlanCacheKeying:
    def test_repeated_shape_hits(self, summit_model):
        setup = _world(summit_model=summit_model)
        _exchange(setup)
        assert _stats(setup) == (0, NRANKS)  # cold compile per rank
        _exchange(setup)
        _exchange(setup)
        assert _stats(setup) == (2 * NRANKS, NRANKS)

    def test_mutated_counts_miss(self, summit_model):
        setup = _world(summit_model=summit_model)
        _exchange(setup, counts=[1] * NRANKS)
        _exchange(setup, counts=[2] * NRANKS)
        hits, misses = _stats(setup)
        assert hits == 0
        assert misses == 2 * NRANKS

    def test_mutated_displs_miss(self, summit_model):
        setup = _world(summit_model=summit_model)
        extent = setup[0][2].extent
        _exchange(setup, displs=[peer * extent * 2 for peer in range(NRANKS)])
        _exchange(setup, displs=[peer * extent * 3 for peer in range(NRANKS)])
        hits, misses = _stats(setup)
        assert hits == 0
        assert misses == 2 * NRANKS

    def test_recommitted_datatype_misses(self, summit_model):
        """An identical shape under a *new* commit is a new key (id-keyed)."""
        setup = _world(summit_model=summit_model)
        _exchange(setup)
        recommitted = [comm.Type_commit(Type_vector(4, 8, 24, BYTE))
                       for _, comm, *_ in setup]
        _exchange(setup, datatypes=recommitted)
        hits, misses = _stats(setup)
        assert hits == 0
        assert misses == 2 * NRANKS

    def test_blocking_and_nonblocking_are_distinct_keys(self, summit_model):
        """Same shape, blocking vs nonblocking: the flag is part of the key."""
        world = World(1, ranks_per_node=1)
        ctx = world.contexts[0]
        comm = interpose(ctx, TempiConfig(), model=summit_model)
        datatype = comm.Type_commit(Type_vector(4, 8, 24, BYTE))
        send = ctx.gpu.malloc(datatype.extent * 4)
        recv = ctx.gpu.malloc(datatype.extent * 4)
        args = (send, [1], [0], recv, [1], [0])
        comm.Ialltoallv(*args, sendtypes=datatype, recvtypes=datatype).Wait()
        comm.Alltoallv(*args, sendtypes=datatype, recvtypes=datatype)
        stats = comm.tempi.stats
        assert (stats.plan_cache_hits, stats.plan_cache_misses) == (0, 2)
        comm.Ialltoallv(*args, sendtypes=datatype, recvtypes=datatype).Wait()
        comm.Alltoallv(*args, sendtypes=datatype, recvtypes=datatype)
        assert (stats.plan_cache_hits, stats.plan_cache_misses) == (2, 2)

    def test_config_change_means_cold_cache(self, summit_model):
        """A new TempiConfig interposes a new communicator: structurally cold."""
        warm = _world(summit_model=summit_model)
        _exchange(warm)
        _exchange(warm)
        assert _stats(warm)[0] == NRANKS
        variant = _world(config=TempiConfig(batch_eager_sends=False),
                         summit_model=summit_model)
        _exchange(variant)
        hits, misses = _stats(variant)
        assert hits == 0
        assert misses == NRANKS
        assert all(len(comm.plan_cache) == 1 for _, comm, *_ in variant)


class TestPlanCacheBounds:
    def test_disabled_cache_never_consulted(self, summit_model):
        setup = _world(config=TempiConfig(plan_cache=False), summit_model=summit_model)
        _exchange(setup)
        _exchange(setup)
        assert _stats(setup) == (0, 0)
        assert all(len(comm.plan_cache) == 0 for _, comm, *_ in setup)

    def test_bounded_cache_evicts(self, summit_model):
        setup = _world(config=TempiConfig(plan_cache_size=1), summit_model=summit_model)
        for _ in range(2):
            _exchange(setup, counts=[1] * NRANKS)
            _exchange(setup, counts=[2] * NRANKS)  # evicts the previous entry
        hits, misses = _stats(setup)
        assert hits == 0
        assert misses == 4 * NRANKS
        assert all(len(comm.plan_cache) == 1 for _, comm, *_ in setup)

    def test_clear_forces_recompile(self, summit_model):
        setup = _world(summit_model=summit_model)
        _exchange(setup)
        _exchange(setup)
        assert _stats(setup)[0] == NRANKS
        for _, comm, *_ in setup:
            comm.plan_cache.clear()
        _exchange(setup)
        hits, misses = _stats(setup)
        assert hits == NRANKS
        assert misses == 2 * NRANKS

    def test_cache_rejects_degenerate_capacity(self):
        with pytest.raises(PlanError):
            PlanCache(0)


class TestSelectionMemoCounters:
    def test_memo_on_hits_repeats(self, summit_model):
        setup = _world(summit_model=summit_model)
        _exchange(setup)
        _exchange(setup)
        stats = setup[0][1].tempi.stats
        assert stats.selection_memo_hits > 0

    def test_memo_off_never_hits_but_still_counts(self, summit_model):
        setup = _world(config=TempiConfig(selection_memo=False), summit_model=summit_model)
        _exchange(setup)
        _exchange(setup)
        stats = setup[0][1].tempi.stats
        assert stats.selection_memo_hits == 0
        assert stats.selection_memo_misses > 0

    def test_contended_memo_stays_bounded(self, summit_model, free_runtime):
        """Distinct message sizes are distinct memo keys; the LRU must evict."""
        from repro.machine.nic import NicTimeline
        from repro.tempi.cache import ResourceCache
        from repro.tempi.packer import Packer
        from repro.tempi.selection import ContendedSelector
        from repro.tempi.strided_block import StridedBlock

        config = TempiConfig(selection="contended", selection_memo_size=2)
        nic = NicTimeline()
        nic.reserve(0, 1, 0.0, 200e-6, 4096)  # backlog: leave the idle fast path
        selector = ContendedSelector(
            summit_model, nic, 0, config=config, cache=ResourceCache(free_runtime)
        )
        shape = StridedBlock(start=0, counts=(8, 64), strides=(1, 16))
        packer = Packer(shape, object_extent=shape.extent)
        for nbytes in (1024, 2048, 4096, 8192):
            selector(packer, nbytes)
        assert len(selector._memo) == 2
