"""Kernel selection (Sec. 3.3).

Once a datatype has been lowered to a :class:`~repro.tempi.strided_block.StridedBlock`,
TEMPI chooses how to move it:

* 1-D (contiguous) blocks use a single ``cudaMemcpyAsync`` plus a stream
  synchronisation, like the MPI implementations it interposes on;
* 2-D and 3-D blocks use a parameterised kernel whose X/Y/Z thread-block
  dimensions are filled with the smallest powers of two that cover the
  corresponding counts, limited to 1024 threads per block, with the grid
  sized to cover the whole object;
* each kernel is specialised to a word size ``W`` — the widest GPU-native
  type that divides the contiguous run and respects the object's alignment —
  so the X dimension loads each run with as few transactions as possible.

Higher-dimensional objects reuse the 3-D kernel with outer loops; the dynamic
MPI ``count`` argument is absorbed by the grid's Z dimension (2-D) or by
applying the grid to each object in turn (3-D and above).

No metadata lands in device memory: ``W`` is baked into the kernel and the
remaining parameters are scalar kernel arguments — mirrored here by the
:class:`KernelSpec` being a plain host-side dataclass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.device import DeviceProperties
from repro.tempi.strided_block import StridedBlock

#: Word sizes the kernels can be specialised to, widest first (bytes):
#: char, short, int/float, long/double, float4.
WORD_SIZES = (16, 8, 4, 2, 1)


def select_word_size(block: StridedBlock) -> int:
    """Widest word that divides the contiguous run and all dimension strides.

    Alignment of every element of the object is guaranteed when both the
    start offset and every stride are multiples of the word, which is the
    "aligned to the object" condition of the paper.
    """
    for word in WORD_SIZES:
        if block.block_length % word:
            continue
        if block.start % word:
            continue
        if any(stride % word for stride in block.strides[1:]):
            continue
        return word
    return 1


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


@dataclass(frozen=True)
class KernelSpec:
    """Everything needed to launch one pack/unpack kernel."""

    dimensions: int
    word_size: int
    block_dim: tuple[int, int, int]
    grid_dim: tuple[int, int, int]
    #: How the dynamic object count is absorbed: "memcpy" (1-D), "grid-z"
    #: (2-D), or "loop" (3-D and higher).
    count_strategy: str

    @property
    def threads_per_block(self) -> int:
        x, y, z = self.block_dim
        return x * y * z

    @property
    def uses_kernel(self) -> bool:
        """False for the contiguous case, which is a plain memcpy."""
        return self.count_strategy != "memcpy"


def select_kernel(
    block: StridedBlock,
    properties: DeviceProperties = DeviceProperties(),
    *,
    count: int = 1,
) -> KernelSpec:
    """Choose the kernel configuration for a strided block (Sec. 3.3)."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    word = select_word_size(block)

    if block.is_contiguous:
        return KernelSpec(
            dimensions=1,
            word_size=word,
            block_dim=(1, 1, 1),
            grid_dim=(1, 1, 1),
            count_strategy="memcpy",
        )

    # Elements the X dimension must cover: contiguous bytes divided by the word.
    x_elements = max(1, block.block_length // word)
    y_elements = block.counts[1]
    z_elements = block.counts[2] if block.ndims >= 3 else 1

    max_threads = properties.max_threads_per_block
    max_dim = properties.max_block_dim

    x = min(_next_power_of_two(x_elements), max_dim[0], max_threads)
    y = min(_next_power_of_two(y_elements), max_dim[1], max(1, max_threads // x))
    z = min(_next_power_of_two(z_elements), max_dim[2], max(1, max_threads // (x * y)))

    grid_x = math.ceil(x_elements / x)
    grid_y = math.ceil(y_elements / y)
    grid_z = math.ceil(z_elements / z)

    if block.ndims == 2:
        # The dynamic object count rides on the grid's Z dimension.
        grid_z = max(grid_z, count)
        strategy = "grid-z"
        dimensions = 2
    else:
        strategy = "loop"
        dimensions = 3

    grid_x = min(grid_x, properties.max_grid_dim[0])
    grid_y = min(grid_y, properties.max_grid_dim[1])
    grid_z = min(grid_z, properties.max_grid_dim[2])

    return KernelSpec(
        dimensions=dimensions,
        word_size=word,
        block_dim=(x, y, z),
        grid_dim=(grid_x, grid_y, grid_z),
        count_strategy=strategy,
    )
