"""The interposer (Sec. 5).

On a real system TEMPI is a shared library inserted ahead of the system MPI
in the link order (or via ``LD_PRELOAD``): it exports a *partial* MPI
implementation, so the dynamic linker resolves the overridden symbols to
TEMPI and everything else to the system MPI.  The reproduction mirrors that
structure with plain object composition:

* :class:`TempiCommunicator` exposes the same call surface as
  :class:`repro.mpi.communicator.Communicator`;
* the calls TEMPI accelerates (``Type_commit``, ``Pack``, ``Unpack``,
  ``Send``/``Isend``, ``Recv``/``Irecv``, ``Sendrecv``, ``Bcast``, and the
  datatype-carrying ``Alltoallv`` / ``Neighbor_alltoallv`` /
  ``Allgather`` / ``Allgatherv`` with their nonblocking forms) are
  overridden here;
* every other attribute falls through to the underlying communicator via
  ``__getattr__`` — the analogue of unresolved symbols binding to the system
  MPI.

Every accelerated operation is **compiled to a**
:class:`~repro.tempi.plan.MessagePlan` — typed pack/post/unpack stages
carrying method selection and staging keys — and run by the per-rank
:class:`~repro.tempi.executor.PlanExecutor`, which issues pack kernels on
per-peer streams and posts each peer's wire transfer as soon as its pack
completes.  The blocking calls are plan → execute → wait one-liners; the
nonblocking calls return the executor's :class:`~repro.mpi.request.Request`
directly, deferring the receive-side unpack to ``Wait``/``Test``.  All wire
state lives in the per-rank :class:`~repro.tempi.progress.ProgressEngine`
(cross-plan NIC accounting on the world's shared
:class:`~repro.machine.nic.NicTimeline`, small-plan send batching,
``Test``-driven progress), configured by ``TempiConfig.progress`` and
``TempiConfig.batch_eager_sends``.

Applications written against the system MPI therefore run unmodified against
either object, which is how the examples and benchmarks switch between the
baseline and TEMPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from typing import Sequence

from repro.gpu.memory import Buffer
from repro.machine.topology import Topology
from repro.mpi import collectives as _collectives
from repro.mpi.collectives import _next_collective_tag
from repro.mpi.communicator import Communicator, as_buffer
from repro.mpi.datatype import Datatype
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.tempi import methods
from repro.tempi import plan as _plan
from repro.tempi.cache import ResourceCache
from repro.tempi.canonicalize import simplify
from repro.tempi.config import TempiConfig
from repro.tempi.executor import PlanExecutor
from repro.tempi.measurement import SystemMeasurement, host_timer
from repro.tempi.packer import Packer
from repro.tempi.progress import ProgressEngine
from repro.tempi.perf_model import PerformanceModel
from repro.tempi.plan import MessagePlan, PlanSection
from repro.tempi.selection import (
    CalibrationRegistry,
    choose_allreduce_algorithm,
    default_registry,
    make_selector,
)
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import TranslationError, translate


def default_model(machine) -> PerformanceModel:
    """The lazily measured, process-wide performance model for a machine.

    A thin veneer over :func:`repro.tempi.selection.default_registry` — the
    per-:class:`~repro.machine.spec.MachineSpec` calibration cache that lets
    several machines' models coexist in one process.
    """
    return default_registry().model_for(machine)


@dataclass
class TypeHandler:
    """What TEMPI attaches to a datatype at commit time."""

    packer: Optional[Packer]
    #: Why there is no packer, when there is none (fallback reporting).
    fallback_reason: Optional[str] = None
    #: Wall-clock seconds spent in translation/canonicalisation/kernel
    #: selection (the "commit" overhead of Fig. 7).
    commit_seconds: float = 0.0
    uses: int = 0

    @property
    def accelerated(self) -> bool:
        return self.packer is not None


@dataclass
class InterposerStats:
    """Counters for tests and the ablation benchmarks."""

    commits: int = 0
    accelerated_commits: int = 0
    packs: int = 0
    sends: int = 0
    recvs: int = 0
    fallbacks: int = 0
    #: Typed collectives taken over by the interposer vs handed back to the
    #: system MPI (one count per collective call, not per message).
    collective_hits: int = 0
    collective_fallbacks: int = 0
    #: Plans run by the executor (one per accelerated operation).
    plans_built: int = 0
    #: Pack/unpack stages issued on per-peer streams without blocking the
    #: host — the stages whose device time overlapped wire time.
    stages_overlapped: int = 0
    #: Receive-side unpacks deferred from a nonblocking call to ``Wait``.
    deferred_unpacks: int = 0
    #: Sub-eager send plans the progress engine coalesced into shared wire
    #: messages (counted per constituent plan, batches of two or more).
    batched_plans: int = 0
    #: Messages whose injection the shared NIC timeline delayed because the
    #: port or link was still occupied by earlier (cross-plan) traffic.
    contention_stalls: int = 0
    #: Messages whose landing this rank's ingestion port delayed because
    #: earlier arrivals were still draining (duplex accounting only).
    ingest_stalls: int = 0
    #: Typed collectives answered from / compiled into the plan cache
    #: (counted only when ``TempiConfig.plan_cache`` consults it).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Method selections whose *value* came from the selection memo (with
    #: ``selection_memo`` off every selection counts as a miss, even though
    #: the charge schedule is unchanged).
    selection_memo_hits: int = 0
    selection_memo_misses: int = 0
    method_counts: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        methods_repr = ",".join(
            f"{name}={count}" for name, count in sorted(self.method_counts.items())
        )
        return (
            "InterposerStats("
            f"commits={self.commits}/{self.accelerated_commits} "
            f"packs={self.packs} sends={self.sends} recvs={self.recvs} "
            f"fallbacks={self.fallbacks} "
            f"collectives={self.collective_hits}+{self.collective_fallbacks}fb "
            f"plans={self.plans_built} overlapped={self.stages_overlapped} "
            f"deferred_unpacks={self.deferred_unpacks} "
            f"batched={self.batched_plans} stalls={self.contention_stalls} "
            f"ingest_stalls={self.ingest_stalls} "
            f"plan_cache={self.plan_cache_hits}+{self.plan_cache_misses}miss "
            f"selection_memo={self.selection_memo_hits}+{self.selection_memo_misses}miss "
            f"methods=[{methods_repr}])"
        )


class Tempi:
    """Per-rank library state shared by all interposed communicators."""

    def __init__(
        self,
        runtime,
        machine,
        config: TempiConfig = TempiConfig(),
        model: Optional[PerformanceModel] = None,
        registry: Optional[CalibrationRegistry] = None,
    ) -> None:
        self.config = config
        self.cache = ResourceCache(runtime, enabled=config.use_cache)
        self.stats = InterposerStats()
        self._machine = machine
        self._model = model
        #: Per-machine calibrations; the process-wide registry by default so
        #: every rank of a world shares one measurement sweep per machine.
        self.registry = registry if registry is not None else default_registry()

    @property
    def machine(self):
        """The machine this library instance is calibrated for."""
        return self._machine

    @property
    def model(self) -> PerformanceModel:
        """The performance model (lazily measured or loaded via the registry)."""
        if self._model is None:
            if self.config.measurement_path is not None:
                measurement = SystemMeasurement.load(self.config.measurement_path)
                self._model = PerformanceModel(measurement)
            else:
                self._model = self.registry.model_for(self._machine)
        return self._model


class TempiCommunicator:
    """The interposed MPI surface for one rank."""

    def __init__(
        self,
        comm: Communicator,
        config: TempiConfig = TempiConfig(),
        *,
        library: Optional[Tempi] = None,
        model: Optional[PerformanceModel] = None,
        registry: Optional[CalibrationRegistry] = None,
    ) -> None:
        self._comm = comm
        self.config = config
        #: The clock sanitizer's recording proxy (``config.sanitize`` only):
        #: handed to the progress engine as its NIC, so every reservation,
        #: ingest commit and backlog read this rank issues is audited.  The
        #: selector inherits it through ``self._engine.nic``.
        self._sanitizer_view = None
        if config.sanitize:
            from repro.machine.nic import NicTimeline
            from repro.tempi.sanitizer import sanitized_view

            base = getattr(getattr(comm, "world", None), "nic", None)
            if base is None:
                base = NicTimeline()
            self._sanitizer_view = sanitized_view(base, comm.rank)
        self.tempi = library if library is not None else Tempi(
            comm.gpu, comm.network.machine, config, model, registry
        )
        #: Topology the engine routes against.  An explicit ``config.topology``
        #: spec builds one over this communicator's size (repricing without
        #: rebuilding the world); otherwise a hierarchical *world* topology is
        #: adopted as-is; otherwise ``None`` — the flat pre-topology books,
        #: with no path resolution on the hot path at all.
        topology = None
        if config.topology is not None:
            topology = Topology(
                comm.size, machine=comm.network.machine, spec=config.topology
            )
        else:
            world_topology = getattr(comm, "topology", None)
            if world_topology is not None and world_topology.hierarchical:
                topology = world_topology
        self._topology = topology
        self._engine = ProgressEngine(
            comm,
            self.tempi.cache,
            self.tempi.stats,
            mode=config.progress,
            nic_mode=config.nic,
            batching=config.batch_eager_sends and config.overlap,
            batch_max_messages=config.batch_max_messages,
            batch_booking=config.batch_booking,
            batch_min_messages=config.batch_min_messages,
            nic=self._sanitizer_view,
            topology=topology,
        )
        self._executor = PlanExecutor(
            comm,
            self.tempi.cache,
            self.tempi.stats,
            overlap=config.overlap,
            engine=self._engine,
        )
        #: The unified method-selection policy (Sec. 4 / selection.py): every
        #: AUTO decision — p2p, bcast, typed collectives — goes through this
        #: one object, which owns memoisation, query-overhead charging and
        #: (for ``selection="contended"``) the live NIC-backlog pricing.
        self._selector = make_selector(
            config,
            lambda: self.tempi.model,
            cache=self.tempi.cache,
            clock=comm.clock,
            nic=self._engine.nic,
            rank=comm.rank,
            stats=self.tempi.stats,
            topology=topology,
        )
        #: Compiled-plan templates for repeated typed-collective shapes,
        #: owned per communicator (so keys never need to name the selector,
        #: config or communicator — all three are fixed here) and consulted
        #: only under ``config.plan_cache``.  ``plan_cache.clear()`` is the
        #: explicit invalidation hook.
        self.plan_cache = _plan.PlanCache(config.plan_cache_size)
        #: Hoisted off the per-hit replay path: the selector is fixed for the
        #: interposer's lifetime, so its batched-replay capability is too,
        #: and the communicator's clock never changes identity.
        self._selector_batchable = bool(
            getattr(self._selector, "peer_invariant", False)
            and hasattr(self._selector, "select_many")
        )
        self._clock = comm.clock
        #: Single-slot compile memo: the last plan-cache hit's raw arguments
        #: (by identity), built cache key, buffers and template, pinned to
        #: the cache generation that proved the entry present.  A steady
        #: workload re-issuing the same collective revalidates by identity
        #: instead of rebuilding the key — see :meth:`_compile_collective`.
        self._compile_memo: Optional[tuple] = None

    #: Fall-through operations that can block on (or observe) other ranks'
    #: traffic.  They must flush the engine's deferred sends first: a system
    #: ``Barrier`` reached with a batched sub-eager message still pending
    #: would park this rank while the receiver blocks on the unposted message
    #: — the deadlock MPI's eager-delivery guarantee forbids.
    _PROGRESS_FALLTHROUGHS = frozenset(
        {"Barrier", "Allreduce_scalar", "Allgather_object", "Probe"}
    )

    #: Fall-throughs that are collective join points: no rank returns before
    #: every rank entered, so under the sanitizer they merge all ranks'
    #: vector clocks (the happens-before edge a barrier establishes).
    #: ``Probe`` is a fall-through but *not* a join — it observes one peer.
    _SANITIZER_JOINS = frozenset({"Barrier", "Allreduce_scalar", "Allgather_object"})

    # ------------------------------------------------------------ passthrough
    def __getattr__(self, name: str):
        # Anything TEMPI does not override resolves in the "system MPI",
        # exactly like unresolved symbols at link time.  Blocking fall-through
        # calls are additionally progress points (see _PROGRESS_FALLTHROUGHS).
        attr = getattr(self._comm, name)
        if name in self._PROGRESS_FALLTHROUGHS:
            def passthrough(*args, **kwargs):
                self._engine.progress()
                view = self._sanitizer_view
                if view is not None and name in self._SANITIZER_JOINS:
                    # Before the real collective: the last arriver merges the
                    # clocks while every rank is still blocked inside it.
                    view.barrier_enter(self._comm.size)
                return attr(*args, **kwargs)

            return passthrough
        return attr

    @property
    def system(self) -> Communicator:
        """The underlying system MPI communicator."""
        return self._comm

    @property
    def stats(self) -> InterposerStats:
        return self.tempi.stats

    @property
    def executor(self) -> PlanExecutor:
        """The plan executor running this rank's accelerated operations."""
        return self._executor

    @property
    def progress_engine(self) -> ProgressEngine:
        """The progress engine owning this rank's deferred wire state."""
        return self._engine

    # ----------------------------------------------------------------- commit
    def Type_commit(self, datatype: Datatype) -> Datatype:
        """``MPI_Type_commit`` with TEMPI's translation pipeline attached.

        The system MPI's commit is always performed; when interposition is
        enabled the datatype is additionally translated, canonicalised and
        bound to a packer, and the handler is cached on the datatype for
        every later communication call (Sec. 3).
        """
        datatype.Commit()
        self.tempi.stats.commits += 1
        if not (self.config.enabled and self.config.datatype_handling):
            return datatype
        # Wall-clock (diagnostic, never priced): how long the simulator's own
        # translation pipeline took, read through the measurement seam.
        started = host_timer()
        handler = self._build_handler(datatype)
        handler.commit_seconds = host_timer() - started
        datatype.attachment = handler
        if handler.accelerated:
            self.tempi.stats.accelerated_commits += 1
        return datatype

    def _build_handler(self, datatype: Datatype) -> TypeHandler:
        try:
            ir = translate(datatype)
        except TranslationError as exc:
            return TypeHandler(packer=None, fallback_reason=str(exc))
        canonical = simplify(ir)
        block = to_strided_block(canonical)
        if block is None:
            return TypeHandler(packer=None, fallback_reason="not a strided block")
        packer = Packer(block, object_extent=datatype.extent, properties=self._comm.gpu.device.properties)
        return TypeHandler(packer=packer)

    @staticmethod
    def handler_of(datatype: Datatype) -> Optional[TypeHandler]:
        """The TEMPI handler attached at commit time, if any."""
        attachment = datatype.attachment
        return attachment if isinstance(attachment, TypeHandler) else None

    # ------------------------------------------------------------- accounting
    def _charge_interposition_overhead(self) -> None:
        cfg = self.config
        self._comm.clock.advance(cfg.handler_lookup_s + cfg.pointer_check_s)

    @property
    def selector(self):
        """The method-selection policy every AUTO decision goes through."""
        return self._selector

    def _can_accelerate(self, datatype: Datatype, *buffers: Buffer) -> Optional[TypeHandler]:
        if not self.config.enabled:
            return None
        handler = self.handler_of(datatype)
        if handler is None or not handler.accelerated:
            if handler is not None:
                self.tempi.stats.fallbacks += 1
            return None
        if not all(buffer.is_device for buffer in buffers):
            return None
        return handler

    # -------------------------------------------------------------------- pack
    def Pack(self, in_spec, outbuf, position: int = 0) -> int:
        """``MPI_Pack``: one kernel launch instead of one memcpy per block."""
        buffer, count, datatype = self._comm._resolve(in_spec)
        out = as_buffer(outbuf)
        handler = (
            self._can_accelerate(datatype, buffer, out)
            if self.config.datatype_handling
            else None
        )
        if handler is None:
            return self._comm.Pack(in_spec, outbuf, position)
        self._charge_interposition_overhead()
        handler.uses += 1
        self.tempi.stats.packs += 1
        return methods.pack_to_user_buffer(self._comm, handler.packer, buffer, count, out, position)

    def Unpack(self, inbuf, position: int, out_spec) -> int:
        """``MPI_Unpack`` accelerated symmetrically to :meth:`Pack`."""
        buffer, count, datatype = self._comm._resolve(out_spec)
        source = as_buffer(inbuf)
        handler = (
            self._can_accelerate(datatype, buffer, source)
            if self.config.datatype_handling
            else None
        )
        if handler is None:
            return self._comm.Unpack(inbuf, position, out_spec)
        self._charge_interposition_overhead()
        handler.uses += 1
        self.tempi.stats.packs += 1
        return methods.unpack_from_user_buffer(
            self._comm, handler.packer, source, position, buffer, count
        )

    # ------------------------------------------------------- p2p plan compilers
    def _compile_p2p_send(self, spec, dest: int, tag: int, *, nonblocking: bool):
        """Compile a send to a plan, or return None for the system path."""
        buffer, count, datatype = self._comm._resolve(spec)
        handler = (
            self._can_accelerate(datatype, buffer)
            if self.config.send_handling
            else None
        )
        if handler is None or handler.packer.block.is_contiguous:
            return None
        self._comm._check_peer(dest)
        self._charge_interposition_overhead()
        nbytes = handler.packer.packed_size(count)
        # The destination peer rides along so a duplex-aware selector can
        # price the link to — and the ingestion backlog of — that rank.
        method = self._selector(handler.packer, nbytes, peer=dest)
        self.tempi.stats.sends += 1
        self.tempi.stats.method_counts[method.value] = (
            self.tempi.stats.method_counts.get(method.value, 0) + 1
        )
        handler.uses += 1
        return _plan.compile_send(
            handler.packer, buffer, count, dest, tag, method, nonblocking=nonblocking
        )

    def _compile_p2p_recv(self, spec, source: int, tag: int, *, nonblocking: bool):
        """Compile a receive to a plan, or return None for the system path."""
        buffer, count, datatype = self._comm._resolve(spec)
        handler = (
            self._can_accelerate(datatype, buffer)
            if self.config.send_handling
            else None
        )
        if handler is None or handler.packer.block.is_contiguous:
            return None
        self._comm._check_peer(source, allow_any=True)
        self._charge_interposition_overhead()
        nbytes = handler.packer.packed_size(count)
        method = self._selector(handler.packer, nbytes)
        self.tempi.stats.recvs += 1
        self.tempi.stats.method_counts[method.value] = (
            self.tempi.stats.method_counts.get(method.value, 0) + 1
        )
        handler.uses += 1
        return _plan.compile_recv(
            handler.packer, buffer, count, source, tag, method, nonblocking=nonblocking
        )

    @staticmethod
    def _into_status(result: Status, status: Optional[Status]) -> Status:
        return result if status is None else status.copy_from(result)

    # -------------------------------------------------------------------- send
    def Send(self, spec, dest: int, tag: int = 0) -> None:
        """``MPI_Send``: compile to a plan, execute, wait."""
        plan = self._compile_p2p_send(spec, dest, tag, nonblocking=False)
        if plan is None:
            self._engine.progress()  # deferred posts must not be overtaken
            self._comm.Send(spec, dest, tag)
            return
        self._executor.execute(plan).Wait()

    def Isend(self, spec, dest: int, tag: int = 0) -> Request:
        """``MPI_Isend``: the plan's pack runs on its own stream; the request
        completes when the user buffer is reusable (pack done + injection)."""
        plan = self._compile_p2p_send(spec, dest, tag, nonblocking=True)
        if plan is None:
            self._engine.progress()  # deferred posts must not be overtaken
            return self._comm.Isend(spec, dest, tag)
        return self._executor.execute(plan)

    def Recv(
        self,
        spec,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Status:
        """``MPI_Recv``: compile to a plan, execute, wait."""
        plan = self._compile_p2p_recv(spec, source, tag, nonblocking=False)
        if plan is None:
            self._engine.progress()  # a system receive is a progress point too
            return self._comm.Recv(spec, source, tag, status)
        return self._into_status(self._executor.execute(plan).Wait(), status)

    def Irecv(self, spec, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """``MPI_Irecv``: matching and unpacking deferred to ``Wait``/``Test``."""
        plan = self._compile_p2p_recv(spec, source, tag, nonblocking=True)
        if plan is None:
            self._engine.progress()
            return self._comm.Irecv(spec, source, tag)
        return self._executor.execute(plan)

    def Sendrecv(
        self,
        send_spec,
        dest: int,
        sendtag: int,
        recv_spec,
        source: int,
        recvtag: int,
        status: Optional[Status] = None,
    ) -> Status:
        """``MPI_Sendrecv`` as a nonblocking send plan overlapping a receive.

        Both halves compile to plans when their datatypes are accelerable, so
        a strided exchange rides the progress engine (NIC accounting, batcher)
        exactly like an ``Isend``/``Recv`` pair; either half independently
        falls back to the system path.
        """
        send_plan = self._compile_p2p_send(send_spec, dest, sendtag, nonblocking=True)
        if send_plan is not None:
            request = self._executor.execute(send_plan)
        else:
            self._engine.progress()  # deferred posts must not be overtaken
            request = self._comm.Isend(send_spec, dest, sendtag)
        result = self.Recv(recv_spec, source, recvtag, status)
        request.Wait()
        return result

    # ------------------------------------------------------------------- bcast
    def _compile_bcast(self, spec, root: int) -> Optional[MessagePlan]:
        """Compile a broadcast to a plan, or return ``None`` for the system path.

        Acceleration requires the datatype-handler family the kernels cover
        (committed, non-contiguous, device buffer) and at least two ranks; as
        with the typed collectives, every rank of the communicator must reach
        the same decision, which holds for SPMD programs because the buffer
        residency and datatype are part of the collective's signature.  The
        collective tag is consumed only on the accelerated path (the system
        broadcast draws its own), keeping the sequence aligned either way.
        """
        comm = self._comm
        if comm.size < 2 or not 0 <= root < comm.size:
            return None
        if not (self.config.enabled and self.config.datatype_handling):
            return None
        buffer, count, datatype = comm._resolve(spec)
        handler = self._can_accelerate(datatype, buffer)
        if handler is None or handler.packer.block.is_contiguous:
            return None
        self._charge_interposition_overhead()
        nbytes = handler.packer.packed_size(count)
        method = self._selector(handler.packer, nbytes)
        handler.uses += 1
        self.tempi.stats.collective_hits += 1
        plan = _plan.compile_bcast(
            handler.packer,
            buffer,
            count,
            root,
            comm.rank,
            comm.size,
            method,
            tag=_next_collective_tag(comm),
        )
        for name, hits in plan.method_counts().items():
            self.tempi.stats.method_counts[name] = (
                self.tempi.stats.method_counts.get(name, 0) + hits
            )
        return plan

    def Bcast(self, spec, root: int = 0) -> None:
        """``MPI_Bcast`` with datatype acceleration.

        The root packs its strided elements once and fans the payload out
        through the plan executor (one wire reservation per peer on the
        progress engine); receivers unpack through the same packer, so
        derived datatypes broadcast element-wise instead of as a raw byte
        prefix.  Contiguous or uncommitted datatypes and host buffers fall
        through to the system broadcast.
        """
        plan = self._compile_bcast(spec, root)
        if plan is None:
            self._engine.progress()  # a system collective is a progress point
            self._comm.Bcast(spec, root)
            return
        self._executor.execute(plan).Wait()

    # --------------------------------------------------------------- allgather
    def _allgather_request(
        self,
        sendbuf,
        sendcount,
        recvbuf,
        recvcounts,
        recvdispls,
        *,
        sendtype,
        recvtypes,
        nonblocking: bool,
    ) -> Optional[Request]:
        """Compile a typed all-gather-v to a root-less fan-out plan and start it.

        Returns ``None`` for the byte signature, disabled interposition, host
        buffers or unhandled datatypes — the caller then runs the system
        path, exactly like the typed all-to-all-v.
        """
        if sendtype is None or recvtypes is None:
            return None
        if not (self.config.enabled and self.config.datatype_handling):
            return None
        comm = self._comm
        if comm.size < 2:
            return None
        send = as_buffer(sendbuf)
        recv = as_buffer(recvbuf)
        key = retained = None
        if self.config.plan_cache:
            key, retained = self._plan_cache_key(
                "allgather", range(comm.size), send, [sendcount], [0], sendtype,
                recv, recvcounts, recvdispls, recvtypes, nonblocking,
            )
        if key is not None:
            try:
                template = self.plan_cache.get(key)
            except TypeError:
                key, retained, template = None, (), None
            if template is not None:
                self.tempi.stats.plan_cache_hits += 1
                return self._executor.execute(self._plan_from_template(template, send, recv))
            if key is not None:
                self.tempi.stats.plan_cache_misses += 1
        send_plan = self._collective_sections(
            send, [comm.rank], [sendcount], [0], sendtype, "send"
        )
        recv_plan = (
            self._collective_sections(
                recv, list(range(comm.size)), recvcounts, recvdispls, recvtypes, "recv"
            )
            if send_plan is not None
            else None
        )
        if send_plan is None or recv_plan is None:
            self.tempi.stats.collective_fallbacks += 1
            return None
        send_sections, send_handlers = send_plan
        recv_sections, recv_handlers = recv_plan
        if not (send_sections or recv_sections):
            self.tempi.stats.collective_fallbacks += 1
            return None
        send_section = (
            send_sections[0]
            if send_sections
            else PlanSection(comm.rank, 0, 0, None)
        )
        local_bytes = sum(s.packed_bytes for s in recv_sections if s.peer == comm.rank)
        if local_bytes != send_section.packed_bytes:
            # The system path's own consistency check, raised before any bytes
            # move so both paths reject the call identically.
            raise _collectives.MpiArgumentError(
                "this rank's contribution disagrees with its recv section"
            )
        for handler in send_handlers + recv_handlers:
            handler.uses += 1
        self._charge_interposition_overhead()
        self.tempi.stats.collective_hits += 1
        recording = _plan.RecordingSelector(self._selector) if key is not None else None
        plan: MessagePlan = _plan.compile_allgather(
            comm.rank,
            comm.size,
            send,
            send_section,
            recv,
            recv_sections,
            recording if recording is not None else self._selector,
            nonblocking=nonblocking,
        )
        if recording is not None:
            self.plan_cache.put(key, _plan.PlanTemplate.from_plan(
                plan, recording,
                handlers=send_handlers + recv_handlers,
                retained=retained,
            ))
        self._count_methods(plan)
        return self._executor.execute(plan)

    def Allgather(
        self,
        sendbuf,
        sendcount: int,
        recvbuf,
        *,
        sendtype=None,
        recvtype=None,
    ) -> None:
        """``MPI_Allgather`` with datatype acceleration (uniform contribution)."""
        if (sendtype is None) != (recvtype is None):
            raise _collectives.MpiArgumentError("sendtype and recvtype must be given together")
        counts, displs = self._comm._allgather_uniform(sendcount, recvtype)
        self.Allgatherv(
            sendbuf, sendcount, recvbuf, counts, displs, sendtype=sendtype, recvtypes=recvtype
        )

    def Iallgather(
        self,
        sendbuf,
        sendcount: int,
        recvbuf,
        *,
        sendtype=None,
        recvtype=None,
    ) -> Request:
        """Nonblocking ``MPI_Iallgather`` over the same plan engine."""
        if (sendtype is None) != (recvtype is None):
            raise _collectives.MpiArgumentError("sendtype and recvtype must be given together")
        counts, displs = self._comm._allgather_uniform(sendcount, recvtype)
        return self.Iallgatherv(
            sendbuf, sendcount, recvbuf, counts, displs, sendtype=sendtype, recvtypes=recvtype
        )

    def Allgatherv(
        self,
        sendbuf,
        sendcount: int,
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtype=None,
        recvtypes=None,
    ) -> None:
        """``MPI_Allgatherv`` with datatype acceleration.

        The datatype-carrying form compiles to a root-less fan-out
        :class:`MessagePlan`: this rank's contribution is packed **once**
        (one kernel pipeline, method selected per message) and every peer's
        post stage shares that payload, while incoming contributions unpack
        per peer — selection, pack/wire overlap and the progress engine's
        NIC accounting exactly as ``Alltoallv`` gets them.  The byte form,
        contiguous or uncommitted datatypes, and host buffers fall through
        to the system MPI.
        """
        request = self._allgather_request(
            sendbuf,
            sendcount,
            recvbuf,
            recvcounts,
            recvdispls,
            sendtype=sendtype,
            recvtypes=recvtypes,
            nonblocking=False,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            self._comm.Allgatherv(
                sendbuf,
                sendcount,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtype=sendtype,
                recvtypes=recvtypes,
            )
            return
        request.Wait()

    def Iallgatherv(
        self,
        sendbuf,
        sendcount: int,
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtype=None,
        recvtypes=None,
    ) -> Request:
        """Nonblocking ``MPI_Iallgatherv``: packs and posts now, receives and
        unpacks at ``Wait``/``Test`` (the deferred-unpack side of the plan)."""
        request = self._allgather_request(
            sendbuf,
            sendcount,
            recvbuf,
            recvcounts,
            recvdispls,
            sendtype=sendtype,
            recvtypes=recvtypes,
            nonblocking=True,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            return self._comm.Iallgatherv(
                sendbuf,
                sendcount,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtype=sendtype,
                recvtypes=recvtypes,
            )
        return request

    # ------------------------------------------------------------- collectives
    def _collective_sections(
        self,
        buffer: Buffer,
        peers: Sequence[int],
        counts: Sequence[int],
        displs: Sequence[int],
        types,
        what: str,
    ) -> Optional[tuple[list[PlanSection], list[TypeHandler]]]:
        """Build the plan-section list of one typed-collective side.

        Arguments are validated with the system path's own checks first, so
        invalid calls raise the same MPI errors whichever path runs.  Returns
        ``None`` (fall back to the system path) unless every nonzero section
        carries a committed datatype whose handler holds a non-contiguous
        packer — the family the kernels accelerate — and the user buffer is
        device resident.
        """
        if not buffer.is_device:
            return None
        validated = _collectives.build_sections(
            self._comm, buffer, peers, counts, displs, types, what
        )
        sections = []
        handlers = []
        for section in validated:
            if section.count == 0:
                continue
            handler = self.handler_of(section.datatype)
            if handler is None or not handler.accelerated or handler.packer.block.is_contiguous:
                return None
            handlers.append(handler)
            sections.append(
                PlanSection(section.peer, section.count, section.displ, handler.packer)
            )
        return sections, handlers

    # ------------------------------------------------------------- plan cache
    @staticmethod
    def _type_signature(types):
        """Identity signature of one side's datatype argument, plus pins.

        Datatypes are named by ``id(datatype), id(datatype.attachment)`` —
        the attachment is replaced at every ``Type_commit``, so re-committing
        a datatype (new handler, new packer) changes the signature and misses
        the cache.  Returns ``(signature, retained)`` where ``retained``
        strongly references every object the signature names, or
        ``(None, ())`` for arguments the cache should not describe.
        """
        if isinstance(types, Datatype):
            # Cache the signature on the datatype: both tuples are rebuilt
            # only when a re-commit swaps the attachment (the identity the
            # signature names), which is exactly when they must change.
            attachment = types.attachment
            cached = getattr(types, "_tempi_type_sig", None)
            if cached is not None and cached[0] is attachment:
                return cached[1], cached[2]
            signature = ("uniform", id(types), id(attachment))
            retained = (types, attachment)
            types._tempi_type_sig = (attachment, signature, retained)
            return signature, retained
        try:
            seq = list(types)
        except TypeError:
            return None, ()
        if not all(isinstance(t, Datatype) for t in seq):
            return None, ()
        signature = tuple((id(t), id(t.attachment)) for t in seq)
        retained = tuple(seq) + tuple(t.attachment for t in seq)
        return signature, retained

    def _plan_cache_key(
        self, op, peers, send, sendcounts, senddispls, sendtypes,
        recv, recvcounts, recvdispls, recvtypes, nonblocking,
    ):
        """The canonical cache key of a typed collective, or ``None``.

        Captures every input the fallback decision, validation and compile
        depend on (the communicator, config and selector are fixed per
        cache): operation, peer list, buffer size/residency, count and
        displacement signatures, and datatype identities.  Anything read
        *live* on a hit — resource-cache state, NIC backlog, the clock —
        deliberately stays out.  ``None`` (unhashable or non-datatype
        arguments) sends the call down the uncached path.
        """
        send_sig, send_retained = self._type_signature(sendtypes)
        recv_sig, recv_retained = self._type_signature(recvtypes)
        if send_sig is None or recv_sig is None:
            return None, ()
        try:
            key = (
                op,
                bool(nonblocking),
                tuple(peers),
                send.nbytes, send.is_device,
                recv.nbytes, recv.is_device,
                tuple(sendcounts), tuple(senddispls), send_sig,
                tuple(recvcounts), tuple(recvdispls), recv_sig,
            )
        except TypeError:
            return None, ()
        # Unhashable components (exotic count objects) surface as TypeError
        # at the first cache access — the call sites catch it and fall back
        # to the uncached path, so the key is not pre-hashed here (hashing a
        # nested tuple twice per hit is measurable on the fast path).
        return key, send_retained + recv_retained

    def _count_methods(self, plan: MessagePlan) -> None:
        """Fold one plan's per-method message counts into the stats."""
        for name, hits in plan.method_counts().items():
            self.tempi.stats.method_counts[name] = (
                self.tempi.stats.method_counts.get(name, 0) + hits
            )

    def _plan_from_template(self, template: _plan.PlanTemplate, send, recv) -> MessagePlan:
        """Materialize a cached collective: same charges as a fresh compile.

        Mirrors the uncached path step for step — handler-use accounting,
        interposition overhead, then the selection transcript replayed
        through the live selector (so every model-query charge lands on the
        clock exactly as a recompile would charge it) — and materializes a
        fresh plan around the retained stages.
        """
        for handler in template.handlers:
            handler.uses += 1
        cfg = self.config
        # Inlined _charge_interposition_overhead: this is the hottest call
        # site and the method body is a single clock advance.
        cost = cfg.handler_lookup_s + cfg.pointer_check_s
        clock = self._clock
        if cost < 0:
            clock.advance(cost)  # raises ClockError, as the method would
        clock.now += cost
        clock._events += 1
        stats = self.tempi.stats
        stats.collective_hits += 1
        selector = self._selector
        methods: Optional[tuple] = None
        if cfg.batch_booking and self._selector_batchable:
            # Batched replay prices one representative per equivalence class
            # and replays the per-member charges — bit-identical clocks,
            # fewer calls.  Single-class templates (every homogeneous halo
            # exchange) skip the generic replay/materialize walk entirely:
            # one select_many carries all charges, and when it confirms the
            # recorded transcript the plan is rebuilt straight from the
            # template's steady-state caches.
            # The steady caches are plain attributes, filled eagerly by
            # PlanTemplate.from_plan (the only constructor of cached
            # templates) — read them directly rather than through the lazy
            # accessor methods.
            runs = template._class_runs
            if len(runs) == 1:
                packer, nbytes, peer, count = runs[0]
                method = selector.select_many(packer, nbytes, peer, count=count)
                methods = (method,) * count
                if methods == template.methods:
                    counts = stats.method_counts
                    for name, hits in template._steady_counts.items():
                        counts[name] = counts.get(name, 0) + hits
                    return MessagePlan(
                        op=template.op,
                        send_buffer=send,
                        recv_buffer=recv,
                        pack_stages=list(template.pack_stages),
                        post_stages=list(template._steady_posts),
                        unpack_stages=list(template.unpack_stages),
                        local=template.local,
                        nonblocking=template.nonblocking,
                    )
        if methods is None:
            methods = tuple(template.replay(selector, batched=cfg.batch_booking))
        plan = template.materialize(methods, send, recv)
        if methods == template.methods:
            # Steady state: the replay confirmed the recorded transcript, so
            # the per-method counts are the template's cached ones.
            counts = stats.method_counts
            for name, hits in template.steady_method_counts().items():
                counts[name] = counts.get(name, 0) + hits
        else:
            self._count_methods(plan)
        return plan

    def _memoize_compile(
        self, op, peers, sendbuf, sendcounts, senddispls, sendtypes,
        recvbuf, recvcounts, recvdispls, recvtypes, nonblocking,
        key, send, recv, template,
    ) -> None:
        """Pin one cached compile's raw arguments for identity revalidation.

        Only argument shapes whose identity *implies* key equality are
        memoized: tuples (immutable, so `is` means equal contents) and
        uniform :class:`Datatype` arguments (whose signature names exactly
        the ``(datatype, attachment)`` identities the probe re-checks).
        Lists or exotic count objects could mutate under an unchanged
        identity, so they always take the full key-building path.
        """
        if (
            type(peers) is tuple
            and type(sendcounts) is tuple and type(senddispls) is tuple
            and type(recvcounts) is tuple and type(recvdispls) is tuple
            and isinstance(sendtypes, Datatype)
            and isinstance(recvtypes, Datatype)
        ):
            self._compile_memo = (
                op, nonblocking, peers, sendbuf, sendcounts, senddispls,
                sendtypes, sendtypes.attachment, recvbuf, recvcounts,
                recvdispls, recvtypes, recvtypes.attachment, key,
                send, recv, template, self.plan_cache.generation,
            )

    def _compile_collective(
        self,
        op: str,
        peers: Sequence[int],
        sendbuf,
        sendcounts,
        senddispls,
        sendtypes,
        recvbuf,
        recvcounts,
        recvdispls,
        recvtypes,
        *,
        nonblocking: bool,
    ) -> Optional[MessagePlan]:
        """Compile (or cache-hit) a typed collective to a plan, fully charged.

        The front half of :meth:`_collective_request` — everything up to the
        executable plan, with every clock charge and stats count applied —
        split out so ``bench_sim_throughput.py`` can drive the compile/cache
        pipeline without the executor.  Returns ``None`` when the call is not
        TEMPI's business or must fall back (the caller then runs the system
        path).  Under ``config.plan_cache`` a repeated shape skips validation
        and compilation entirely (see :meth:`_plan_from_template`).
        """
        if sendtypes is None or recvtypes is None:
            # The byte signature (or a half-specified typed one, which the
            # system path rejects) is not TEMPI's business.
            return None
        if not (self.config.enabled and self.config.datatype_handling):
            return None
        memo = self._compile_memo
        if (
            memo is not None
            # The generation pin proves no put/evict/clear touched the cache
            # since the memo was taken, so the memoized template is still the
            # entry the rebuilt key would find; the identity checks prove the
            # rebuilt key would be equal (every component is either immutable
            # and identical, or — for the datatype signatures — named by
            # exactly the (datatype, attachment) identities compared here).
            and memo[17] == self.plan_cache.generation
            and memo[0] == op
            and memo[1] == nonblocking
            and memo[2] is peers
            and memo[3] is sendbuf
            and memo[4] is sendcounts
            and memo[5] is senddispls
            and memo[6] is sendtypes
            and memo[7] is sendtypes.attachment
            and memo[8] is recvbuf
            and memo[9] is recvcounts
            and memo[10] is recvdispls
            and memo[11] is recvtypes
            and memo[12] is recvtypes.attachment
            and self.config.plan_cache
        ):
            # Same bookkeeping as the full hit path below: the hit count,
            # the key's LRU refresh, then the fully charged materialization.
            self.plan_cache.touch(memo[13])
            self.tempi.stats.plan_cache_hits += 1
            return self._plan_from_template(memo[16], memo[14], memo[15])
        send = as_buffer(sendbuf)
        recv = as_buffer(recvbuf)
        key = retained = None
        if self.config.plan_cache:
            key, retained = self._plan_cache_key(
                op, peers, send, sendcounts, senddispls, sendtypes,
                recv, recvcounts, recvdispls, recvtypes, nonblocking,
            )
        if key is not None:
            try:
                template = self.plan_cache.get(key)
            except TypeError:
                key, retained, template = None, (), None
            if template is not None:
                self.tempi.stats.plan_cache_hits += 1
                self._memoize_compile(
                    op, peers, sendbuf, sendcounts, senddispls, sendtypes,
                    recvbuf, recvcounts, recvdispls, recvtypes, nonblocking,
                    key, send, recv, template,
                )
                return self._plan_from_template(template, send, recv)
            if key is not None:
                self.tempi.stats.plan_cache_misses += 1
        send_plan = self._collective_sections(
            send, peers, sendcounts, senddispls, sendtypes, "send"
        )
        recv_plan = (
            self._collective_sections(recv, peers, recvcounts, recvdispls, recvtypes, "recv")
            if send_plan is not None
            else None
        )
        if send_plan is None or recv_plan is None:
            self.tempi.stats.collective_fallbacks += 1
            return None
        send_sections, send_handlers = send_plan
        recv_sections, recv_handlers = recv_plan
        if not (send_sections or recv_sections):
            self.tempi.stats.collective_fallbacks += 1
            return None
        # Both sides confirmed accelerable: only now count the handler uses.
        for handler in send_handlers + recv_handlers:
            handler.uses += 1
        self._charge_interposition_overhead()
        self.tempi.stats.collective_hits += 1
        recording = _plan.RecordingSelector(self._selector) if key is not None else None
        plan: MessagePlan = _plan.compile_exchange(
            self._comm.rank,
            send,
            send_sections,
            recv,
            recv_sections,
            recording if recording is not None else self._selector,
            op=op,
            nonblocking=nonblocking,
        )
        if recording is not None:
            template = _plan.PlanTemplate.from_plan(
                plan, recording,
                handlers=send_handlers + recv_handlers,
                retained=retained,
            )
            self.plan_cache.put(key, template)
            # The put bumped the generation; memoize against the new one so
            # the very next repeat of this shape hits the identity lane.
            self._memoize_compile(
                op, peers, sendbuf, sendcounts, senddispls, sendtypes,
                recvbuf, recvcounts, recvdispls, recvtypes, nonblocking,
                key, send, recv, template,
            )
        self._count_methods(plan)
        return plan

    def _collective_request(
        self,
        op: str,
        peers: Sequence[int],
        sendbuf,
        sendcounts,
        senddispls,
        sendtypes,
        recvbuf,
        recvcounts,
        recvdispls,
        recvtypes,
        *,
        nonblocking: bool,
    ) -> Optional[Request]:
        """Compile a typed collective to a plan and start it.

        Returns the request driving the deferred receive side, or ``None``
        when the call is not TEMPI's business (byte or half-specified
        signature, interposition disabled) or must fall back (host buffers,
        unhandled datatypes) — the caller then runs the system path.
        """
        plan = self._compile_collective(
            op, peers, sendbuf, sendcounts, senddispls, sendtypes,
            recvbuf, recvcounts, recvdispls, recvtypes, nonblocking=nonblocking,
        )
        if plan is None:
            return None
        return self._executor.execute(plan)

    def Alltoallv(
        self,
        sendbuf,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes=None,
        recvtypes=None,
    ) -> None:
        """``MPI_Alltoallv`` with datatype acceleration (Sec. 5, extended).

        The datatype-carrying form compiles to a :class:`MessagePlan` — one
        pack kernel per destination, per-message method selection, per-peer
        persistent staging — executed with pack/wire overlap; the byte form,
        contiguous or uncommitted datatypes, and host buffers all fall
        through to the system MPI.
        """
        request = self._collective_request(
            "alltoallv",
            list(range(self._comm.size)),
            sendbuf,
            sendcounts,
            senddispls,
            sendtypes,
            recvbuf,
            recvcounts,
            recvdispls,
            recvtypes,
            nonblocking=False,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            self._comm.Alltoallv(
                sendbuf,
                sendcounts,
                senddispls,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtypes=sendtypes,
                recvtypes=recvtypes,
            )
            return
        request.Wait()

    def Ialltoallv(
        self,
        sendbuf,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes=None,
        recvtypes=None,
    ) -> Request:
        """Nonblocking ``MPI_Ialltoallv``: packs and posts now, receives and
        unpacks at ``Wait``/``Test`` (the deferred-unpack side of the plan)."""
        request = self._collective_request(
            "alltoallv",
            list(range(self._comm.size)),
            sendbuf,
            sendcounts,
            senddispls,
            sendtypes,
            recvbuf,
            recvcounts,
            recvdispls,
            recvtypes,
            nonblocking=True,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            return self._comm.Ialltoallv(
                sendbuf,
                sendcounts,
                senddispls,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtypes=sendtypes,
                recvtypes=recvtypes,
            )
        return request

    # --------------------------------------------------------------- allreduce
    def _allreduce_islands(self) -> Optional[list[list[int]]]:
        """Rank groups sharing an NVLink island, for the hierarchical schedule.

        ``None`` under a flat (or absent) topology — the singleton-island
        default of :func:`repro.tempi.plan.compile_allreduce` then degrades
        the hierarchical schedule to a pure leader ring.
        """
        topology = self._topology
        if topology is None or not topology.hierarchical:
            return None
        groups: dict[tuple[int, int], list[int]] = {}
        for rank in range(self._comm.size):
            groups.setdefault(topology.island_of(rank), []).append(rank)
        return [groups[key] for key in sorted(groups)]

    def _allreduce_request(
        self, sendbuf, recvbuf, op: str, *, nonblocking: bool
    ) -> Optional[Request]:
        """Compile an allreduce to a :class:`MessagePlan` and start it.

        Returns ``None`` when the call is not TEMPI's business (host buffers,
        non-elementary or mismatched datatypes, interposition disabled) — the
        caller then runs the naive system fan-in.  Reduction plans never
        consult the plan cache: the schedule is a pure function of
        ``(rank, size, count, algorithm)`` and compiles in microseconds, so
        the priced clocks stay trivially bit-identical across ``plan_cache``
        configs (the property wall pins this).
        """
        cfg = self.config
        if not (cfg.enabled and cfg.send_handling):
            return None
        comm = self._comm
        send_buffer, send_count, send_type = comm._resolve(sendbuf)
        recv_buffer, recv_count, recv_type = comm._resolve(recvbuf)
        if send_type.numpy_dtype is None or recv_type.numpy_dtype is None:
            self.tempi.stats.collective_fallbacks += 1
            return None
        if np.dtype(send_type.numpy_dtype) != np.dtype(recv_type.numpy_dtype):
            self.tempi.stats.collective_fallbacks += 1
            return None
        if not (send_buffer.is_device and recv_buffer.is_device):
            self.tempi.stats.collective_fallbacks += 1
            return None
        nbytes = recv_type.size * recv_count
        if send_type.size * send_count != nbytes:
            self.tempi.stats.collective_fallbacks += 1
            return None
        algorithm = choose_allreduce_algorithm(
            comm.size, nbytes,
            topology=self._topology,
            algorithm=cfg.allreduce_algorithm,
        )
        islands = self._allreduce_islands() if algorithm == "hierarchical" else None
        self._charge_interposition_overhead()
        self.tempi.stats.collective_hits += 1
        plan = _plan.compile_allreduce(
            comm.rank,
            comm.size,
            send_buffer,
            recv_buffer,
            recv_count,
            recv_type.size,
            np.dtype(recv_type.numpy_dtype).name,
            op=op,
            algorithm=algorithm,
            islands=islands,
            nonblocking=nonblocking,
        )
        return self._executor.execute(plan)

    def _allreduce_fallback(self, sendbuf, recvbuf, op: str) -> None:
        """The system path: flush deferred sends, then the naive fan-in."""
        self._engine.progress()  # a system collective is a progress point
        view = self._sanitizer_view
        if view is not None:
            # A collective join: the last arriver merges the vector clocks.
            view.barrier_enter(self._comm.size)
        self._comm.Allreduce(sendbuf, recvbuf, op)

    def Allreduce(self, sendbuf, recvbuf, op: str = "sum") -> None:
        """``MPI_Allreduce`` compiled to a reduction plan (ring/tree/hierarchical).

        Device buffers of one elementary datatype compile to a
        :class:`MessagePlan` of :class:`~repro.tempi.plan.ReduceStage` rounds —
        the schedule picked per call by
        :func:`~repro.tempi.selection.choose_allreduce_algorithm` (or pinned
        by ``config.allreduce_algorithm``) — and execute with combines priced
        like unpack kernels.  Everything else falls through to the naive
        system fan-in, byte-identically.
        """
        request = self._allreduce_request(sendbuf, recvbuf, op, nonblocking=False)
        if request is None:
            self._allreduce_fallback(sendbuf, recvbuf, op)
            return
        request.Wait()

    def Iallreduce(self, sendbuf, recvbuf, op: str = "sum") -> Request:
        """Nonblocking ``MPI_Iallreduce``: the whole reduction schedule —
        every round's post, receive and combine — runs at ``Wait``/``Test``.

        Because rounds are deferred end-to-end, interleaving *other blocking
        traffic against the same peers* between ``Iallreduce`` and ``Wait``
        can deadlock, exactly as unmatched eager traffic would in MPI; the
        apps drive ``Wait`` before any such traffic.  The fallback runs the
        naive fan-in immediately and returns an already-complete request.
        """
        request = self._allreduce_request(sendbuf, recvbuf, op, nonblocking=True)
        if request is None:
            self._allreduce_fallback(sendbuf, recvbuf, op)
            return Request("null")
        return request

    def Neighbor_alltoallv(
        self,
        neighbors: Sequence[int],
        sendbuf,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes=None,
        recvtypes=None,
    ) -> None:
        """``MPI_Neighbor_alltoallv`` accelerated symmetrically to :meth:`Alltoallv`."""
        request = self._collective_request(
            "neighbor_alltoallv",
            list(neighbors),
            sendbuf,
            sendcounts,
            senddispls,
            sendtypes,
            recvbuf,
            recvcounts,
            recvdispls,
            recvtypes,
            nonblocking=False,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            self._comm.Neighbor_alltoallv(
                neighbors,
                sendbuf,
                sendcounts,
                senddispls,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtypes=sendtypes,
                recvtypes=recvtypes,
            )
            return
        request.Wait()

    def Ineighbor_alltoallv(
        self,
        neighbors: Sequence[int],
        sendbuf,
        sendcounts: Sequence[int],
        senddispls: Sequence[int],
        recvbuf,
        recvcounts: Sequence[int],
        recvdispls: Sequence[int],
        *,
        sendtypes=None,
        recvtypes=None,
    ) -> Request:
        """Nonblocking neighbour collective over the same plan engine."""
        request = self._collective_request(
            "neighbor_alltoallv",
            list(neighbors),
            sendbuf,
            sendcounts,
            senddispls,
            sendtypes,
            recvbuf,
            recvcounts,
            recvdispls,
            recvtypes,
            nonblocking=True,
        )
        if request is None:
            self._engine.progress()  # a system collective is a progress point
            return self._comm.Ineighbor_alltoallv(
                neighbors,
                sendbuf,
                sendcounts,
                senddispls,
                recvbuf,
                recvcounts,
                recvdispls,
                sendtypes=sendtypes,
                recvtypes=recvtypes,
            )
        return request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TempiCommunicator over {self._comm!r} method={self.config.method.value}>"


def interpose(ctx, config: Optional[TempiConfig] = None, **kwargs) -> TempiCommunicator:
    """Wrap a :class:`~repro.mpi.world.ProcessContext`'s communicator with TEMPI.

    This is the one-liner applications use instead of changing their code:
    the returned object is a drop-in replacement for ``ctx.comm``.  ``config``
    defaults to a ``TempiConfig()`` built *at call time*, so ambient defaults
    (:func:`repro.tempi.config.sanitize_default`) apply to it.
    """
    if config is None:
        config = TempiConfig()
    return TempiCommunicator(ctx.comm, config, **kwargs)
