"""Property-based tests of the MPI type-map flattener.

These are the invariants every downstream consumer (baseline engine, TEMPI
translation, halo datatypes) relies on:

* blocks never overlap and are maximal (no two adjacent blocks remain);
* the summed block length equals the datatype's size, for any element count;
* every block lies inside ``lb + count * extent`` worth of storage;
* the analytic ``block_count`` used for baseline cost accounting is exact for
  a single element of the strided family and never undercounts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mpi import typemap

from tests.property.test_property_canonicalize import strided_datatypes


@settings(max_examples=80, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=4))
def test_blocks_are_disjoint_and_maximal(datatype, count):
    blocks = list(typemap.flatten_many(datatype, count))
    for (offset_a, length_a), (offset_b, _length_b) in zip(blocks, blocks[1:]):
        # strictly increasing starts, no touching (touching blocks must merge)
        assert offset_a + length_a < offset_b


@settings(max_examples=80, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=4))
def test_total_length_equals_size(datatype, count):
    blocks = list(typemap.flatten_many(datatype, count))
    assert sum(length for _, length in blocks) == datatype.size * count


@settings(max_examples=80, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=4))
def test_blocks_inside_extent(datatype, count):
    blocks = list(typemap.flatten_many(datatype, count))
    upper_bound = datatype.lb + (count - 1) * datatype.extent + datatype.ub - datatype.lb
    for offset, length in blocks:
        assert offset >= 0
        assert offset + length <= upper_bound


@settings(max_examples=80, deadline=None)
@given(strided_datatypes())
def test_analytic_block_count_matches_flatten_for_one_element(datatype):
    assert datatype.block_count() >= len(list(typemap.flatten(datatype)))


@settings(max_examples=80, deadline=None)
@given(strided_datatypes())
def test_dominant_block_length_is_a_real_block_length(datatype):
    lengths = {length for _, length in typemap.flatten(datatype)}
    assert typemap.dominant_block_length(datatype) in lengths


@settings(max_examples=60, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=3))
def test_offsets_and_lengths_agree_with_flatten(datatype, count):
    offsets, lengths = typemap.offsets_and_lengths(datatype, count)
    assert list(zip(offsets.tolist(), lengths.tolist())) == list(
        typemap.flatten_many(datatype, count)
    )
