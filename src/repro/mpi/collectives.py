"""Collective operations.

Only a small set is needed by the paper's evaluation: ``Barrier`` for phase
timing, ``Bcast``/``Allgather``/``Allreduce`` for bookkeeping in the examples,
and ``Alltoallv`` / ``Neighbor_alltoallv`` for the 3-D stencil halo exchange
(Sec. 6.4).  All of them are composed from the point-to-point router; their
virtual-time cost is charged analytically from the network model so that the
functional data movement (which is interleaved arbitrarily by the thread
scheduler) does not distort the reported latencies.

Collective calls must be made by every rank of the communicator in the same
order, as in MPI; a per-communicator sequence number keeps successive
collectives from matching each other's messages.
"""

from __future__ import annotations

import pickle
from typing import Sequence

import numpy as np

from repro.mpi.errors import MpiArgumentError
from repro.mpi.p2p import Envelope

#: Tag space reserved for collectives, far above what applications use.
_COLLECTIVE_TAG_BASE = 1_000_000_000


def _next_collective_tag(comm) -> int:
    sequence = getattr(comm, "_collective_sequence", 0)
    comm._collective_sequence = sequence + 1
    return _COLLECTIVE_TAG_BASE + sequence


def _post_raw(comm, dest: int, tag: int, payload: np.ndarray, available_at: float) -> None:
    comm.router.post(
        Envelope(
            source=comm.rank,
            dest=dest,
            tag=tag,
            context=comm.context,
            payload=np.ascontiguousarray(payload, dtype=np.uint8),
            available_at=available_at,
            device=False,
        )
    )


def _receive_raw(comm, source: int, tag: int) -> Envelope:
    return comm.router.receive(comm.rank, source, tag, comm.context)


# --------------------------------------------------------------------------- #
# Barrier
# --------------------------------------------------------------------------- #

def barrier(comm) -> None:
    """Synchronise all ranks: clocks advance to the global maximum plus a
    logarithmic latency term (a dissemination barrier's critical path)."""
    import math

    latency = comm.network.machine.inter_cpu.latency_s
    rounds = max(1, math.ceil(math.log2(max(2, comm.size))))
    if comm.world is not None and comm.size > 1:
        latest = comm.world.barrier_wait(comm.rank, comm.clock.now)
        comm.clock.advance_to(latest)
    comm.clock.advance(rounds * latency)


# --------------------------------------------------------------------------- #
# Broadcast and object collectives
# --------------------------------------------------------------------------- #

def bcast(comm, spec, root: int = 0) -> None:
    """Broadcast the buffer contents of ``root`` to every rank (linear tree)."""
    if not 0 <= root < comm.size:
        raise MpiArgumentError(f"root {root} outside communicator of size {comm.size}")
    tag = _next_collective_tag(comm)
    buffer, count, datatype = comm._resolve(spec)
    nbytes = datatype.size * count
    if comm.rank == root:
        payload = buffer.data[:nbytes].copy()
        for peer in range(comm.size):
            if peer == root:
                continue
            duration = comm._message_time(nbytes, peer, buffer.is_device)
            _post_raw(comm, peer, tag, payload, comm.clock.now + duration)
        comm.clock.advance(comm._message_time(nbytes, (root + 1) % comm.size, buffer.is_device))
    else:
        envelope = _receive_raw(comm, root, tag)
        comm.clock.advance_to(envelope.available_at)
        buffer.data[: envelope.nbytes] = envelope.payload


def allgather_object(comm, value) -> list:
    """Gather one picklable object from every rank onto every rank."""
    gather_tag = _next_collective_tag(comm)
    reply_tag = _next_collective_tag(comm)
    blob = np.frombuffer(pickle.dumps(value), dtype=np.uint8)
    if comm.rank == 0:
        gathered = [None] * comm.size
        gathered[0] = value
        for _ in range(comm.size - 1):
            envelope = _receive_raw(comm, -1, gather_tag)
            comm.clock.advance_to(envelope.available_at)
            gathered[envelope.source] = pickle.loads(envelope.payload.tobytes())
        result_blob = np.frombuffer(pickle.dumps(gathered), dtype=np.uint8)
        for peer in range(1, comm.size):
            _post_raw(comm, peer, reply_tag, result_blob, comm.clock.now)
        return gathered
    _post_raw(comm, 0, gather_tag, blob, comm.clock.now)
    envelope = _receive_raw(comm, 0, reply_tag)
    comm.clock.advance_to(envelope.available_at)
    return pickle.loads(envelope.payload.tobytes())


def allreduce_scalar(comm, value: float, op: str = "sum") -> float:
    """Allreduce of one scalar with ``sum``, ``max`` or ``min``."""
    if op not in ("sum", "max", "min"):
        raise MpiArgumentError(f"unsupported reduction {op!r}")
    values = allgather_object(comm, float(value))
    if op == "sum":
        return float(sum(values))
    if op == "max":
        return float(max(values))
    return float(min(values))


# --------------------------------------------------------------------------- #
# All-to-all-v
# --------------------------------------------------------------------------- #

def _validate_vector_args(comm, counts: Sequence[int], displs: Sequence[int], what: str) -> None:
    if len(counts) != comm.size or len(displs) != comm.size:
        raise MpiArgumentError(
            f"{what} counts/displacements must have one entry per rank ({comm.size})"
        )
    if any(c < 0 for c in counts) or any(d < 0 for d in displs):
        raise MpiArgumentError(f"{what} counts and displacements must be non-negative")


def alltoallv(
    comm,
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
) -> None:
    """Exchange byte ranges with every rank (``MPI_Alltoallv``).

    Counts and displacements are in bytes; this matches the halo-exchange
    implementation the paper describes, which packs every halo into one byte
    buffer and exchanges it with a single all-to-all-v.
    """
    from repro.mpi.communicator import as_buffer

    _validate_vector_args(comm, sendcounts, senddispls, "send")
    _validate_vector_args(comm, recvcounts, recvdispls, "recv")
    send = as_buffer(sendbuf)
    recv = as_buffer(recvbuf)
    tag = _next_collective_tag(comm)
    now = comm.clock.now

    # Post every outgoing section.
    for peer in range(comm.size):
        count = int(sendcounts[peer])
        if count == 0 or peer == comm.rank:
            continue
        offset = int(senddispls[peer])
        if offset + count > send.nbytes:
            raise MpiArgumentError("send section escapes the send buffer")
        _post_raw(comm, peer, tag, send.data[offset : offset + count].copy(), now)

    # Local section copies directly.
    local = int(sendcounts[comm.rank])
    if local:
        src = int(senddispls[comm.rank])
        dst = int(recvdispls[comm.rank])
        if local != int(recvcounts[comm.rank]):
            raise MpiArgumentError("self send/recv counts disagree")
        recv.data[dst : dst + local] = send.data[src : src + local]

    # Receive every incoming section.
    latest = now
    for peer in range(comm.size):
        count = int(recvcounts[peer])
        if count == 0 or peer == comm.rank:
            continue
        envelope = _receive_raw(comm, peer, tag)
        offset = int(recvdispls[envelope.source])
        expected = int(recvcounts[envelope.source])
        if envelope.nbytes != expected:
            raise MpiArgumentError(
                f"rank {comm.rank} expected {expected} bytes from {envelope.source}, "
                f"got {envelope.nbytes}"
            )
        if offset + envelope.nbytes > recv.nbytes:
            raise MpiArgumentError("receive section escapes the receive buffer")
        recv.data[offset : offset + envelope.nbytes] = envelope.payload
        latest = max(latest, envelope.available_at)

    # Charge the analytic per-rank cost once.
    comm.clock.advance_to(latest)
    per_pair = [max(int(s), int(r)) for s, r in zip(sendcounts, recvcounts)]
    device = send.is_device or recv.is_device
    comm.clock.advance(
        comm.network.alltoallv_time(per_pair, comm.topology, comm.rank, device_buffers=device)
    )


def neighbor_alltoallv(
    comm,
    neighbors: Sequence[int],
    sendbuf,
    sendcounts: Sequence[int],
    senddispls: Sequence[int],
    recvbuf,
    recvcounts: Sequence[int],
    recvdispls: Sequence[int],
) -> None:
    """``MPI_Neighbor_alltoallv`` over an explicit neighbour list.

    Equivalent to an :func:`alltoallv` whose counts are zero for every rank
    not in ``neighbors``; implemented exactly that way so the two share
    semantics and cost accounting.
    """
    if not (len(neighbors) == len(sendcounts) == len(senddispls) == len(recvcounts) == len(recvdispls)):
        raise MpiArgumentError("neighbour argument lists must have equal lengths")
    if len(set(neighbors)) != len(neighbors):
        raise MpiArgumentError(
            "neighbour list contains duplicates; aggregate per-destination sections "
            "and use Alltoallv instead (as the halo-exchange application does)"
        )
    full_sendcounts = [0] * comm.size
    full_senddispls = [0] * comm.size
    full_recvcounts = [0] * comm.size
    full_recvdispls = [0] * comm.size
    for index, peer in enumerate(neighbors):
        if not 0 <= peer < comm.size:
            raise MpiArgumentError(f"neighbour {peer} outside communicator of size {comm.size}")
        full_sendcounts[peer] = int(sendcounts[index])
        full_senddispls[peer] = int(senddispls[index])
        full_recvcounts[peer] = int(recvcounts[index])
        full_recvdispls[peer] = int(recvdispls[index])
    alltoallv(
        comm,
        sendbuf,
        full_sendcounts,
        full_senddispls,
        recvbuf,
        full_recvcounts,
        full_recvdispls,
    )
