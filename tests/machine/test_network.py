"""Tests for the network model."""

import pytest

from repro.machine.network import NetworkModel, TransferPath
from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology


@pytest.fixture
def network() -> NetworkModel:
    return NetworkModel(SUMMIT)


class TestPathSelection:
    def test_inter_node_device(self, network):
        assert network.path(same_node=False, device_buffers=True) is TransferPath.INTER_GPU

    def test_inter_node_host(self, network):
        assert network.path(same_node=False, device_buffers=False) is TransferPath.INTER_CPU

    def test_intra_node_device(self, network):
        assert network.path(same_node=True, device_buffers=True) is TransferPath.INTRA_GPU

    def test_intra_node_host(self, network):
        assert network.path(same_node=True, device_buffers=False) is TransferPath.INTRA_CPU


class TestMessageCost:
    def test_latency_floor_cpu(self, network):
        cost = network.message_cost(1, same_node=False, device_buffers=False)
        assert cost.total_s == pytest.approx(
            SUMMIT.inter_cpu.latency_s + 1 / SUMMIT.inter_cpu.bandwidth_Bps
        )

    def test_gpu_floor_higher_than_cpu_floor(self, network):
        """The Fig. 9a crossover driver: CUDA-aware sends have a higher floor."""
        cpu = network.message_time(1, device_buffers=False)
        gpu = network.message_time(1, device_buffers=True)
        assert gpu > cpu
        assert gpu >= 6e-6

    def test_bandwidth_dominates_large_messages(self, network):
        small = network.message_time(1 << 10, device_buffers=False)
        large = network.message_time(1 << 24, device_buffers=False)
        assert large > 10 * small

    def test_rendezvous_kicks_in_above_threshold(self, network):
        below = network.message_cost(SUMMIT.eager_threshold, device_buffers=False)
        above = network.message_cost(SUMMIT.eager_threshold + 1, device_buffers=False)
        assert below.rendezvous_s == 0.0
        assert above.rendezvous_s > 0.0

    def test_monotonic_in_size(self, network):
        sizes = [1 << p for p in range(0, 22)]
        times = [network.message_time(s, device_buffers=True) for s in sizes]
        assert times == sorted(times)

    def test_intra_node_faster_than_inter_node(self, network):
        intra = network.message_time(1 << 16, same_node=True, device_buffers=True)
        inter = network.message_time(1 << 16, same_node=False, device_buffers=True)
        assert intra < inter

    def test_negative_size_rejected(self, network):
        with pytest.raises(ValueError):
            network.message_time(-1)

    def test_between_ranks_uses_topology(self, network):
        topo = Topology(4, ranks_per_node=2)
        same = network.message_time_between(0, 1, 1024, topo)
        cross = network.message_time_between(1, 2, 1024, topo)
        assert same < cross


class TestCollectiveCost:
    def test_self_and_zero_entries_ignored(self, network):
        topo = Topology(4, ranks_per_node=1)
        time = network.alltoallv_time([0, 100, 0, 0], topo, rank=0)
        only = network.message_time(100, same_node=False) * 0.65
        assert time == pytest.approx(only)

    def test_more_peers_cost_more(self, network):
        topo = Topology(8, ranks_per_node=1)
        few = network.alltoallv_time([0, 1000, 0, 0, 0, 0, 0, 0], topo, rank=0)
        many = network.alltoallv_time([0] + [1000] * 7, topo, rank=0)
        assert many > few

    def test_wrong_length_rejected(self, network):
        topo = Topology(4, ranks_per_node=1)
        with pytest.raises(ValueError):
            network.alltoallv_time([1, 2, 3], topo, rank=0)

    def test_invalid_overlap_rejected(self, network):
        topo = Topology(2, ranks_per_node=1)
        with pytest.raises(ValueError):
            network.alltoallv_time([0, 1], topo, rank=0, overlap=0.0)

    def test_d2h_and_h2d_times(self, network):
        assert network.d2h_time(0) == pytest.approx(SUMMIT.node.cpu_gpu.latency_s)
        assert network.h2d_time(1 << 20) > network.h2d_time(1)
