"""Allreduce schedules on a hierarchical fabric: ring vs tree vs hierarchical.

Data-parallel training is bounded by gradient ``Allreduce``; which schedule
wins depends on the fabric.  The flat chunked ring moves ``2(N-1)`` chunk
hops per rank and is bandwidth-optimal on a crossbar, but on an
oversubscribed fat-tree every one of those hops crosses the uplink bundle.
The hierarchical schedule (intra-island gather → leader ring → broadcast)
concentrates cross-island traffic on one leader per island, so the uplinks
carry ``L-1`` messages per round instead of ``N-1`` — and TEMPI's
topology-aware chooser (:func:`repro.tempi.selection.choose_allreduce_algorithm`)
picks it automatically whenever the topology actually groups ranks.

The functional sweep runs every schedule on the committed fat-tree example
spec (``examples/topology_fattree.json``) and pins three claims:

* every schedule's reduction is **byte-identical** to every other's (the
  Hypothesis wall extends this to the naive reference);
* the hierarchical schedule prices **strictly cheaper** than the flat ring
  at every node count ≥ 2, and ``allreduce_algorithm="auto"`` reproduces
  its clocks bit-for-bit;
* the analytic twin (:func:`repro.apps.exchange_model.model_allreduce`)
  agrees on the ordering — its ring/hierarchical speedup is > 1 wherever
  the simulated one is.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_allreduce.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_allreduce.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.apps.exchange_model import allreduce_hierarchy_speedup, model_allreduce
from repro.bench.harness import format_table
from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology, TopologySpec
from repro.mpi.datatype import FLOAT
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: The committed fat-tree example the acceptance claims price against.
FATTREE_SPEC_PATH = Path(__file__).resolve().parents[1] / "examples" / "topology_fattree.json"

#: Gradient shard: 4096 float32 elements (16 KiB) — big enough that wire
#: dominates the combine kernels, small enough for CI.
COUNT = 4096

ALGORITHMS = ("ring", "tree", "hierarchical")

NODE_SWEEP_SUBSET = (2, 3)
NODE_SWEEP_FULL = (2, 3, 4, 6)


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def fattree_spec() -> TopologySpec:
    """The committed example spec (island pairs, oversubscribed uplinks)."""
    return TopologySpec(**json.loads(FATTREE_SPEC_PATH.read_text()))


def measure_allreduce(nranks: int, algorithm: str, model, spec: TopologySpec):
    """One interposed allreduce on the fat-tree world.

    Every rank contributes a deterministic integer-valued float vector and
    reduces with ``sum``; returns ``(clocks, digest)`` where ``digest``
    hashes every rank's reduced bytes (identical across schedules when the
    reductions agree byte-for-byte).
    """

    def program(ctx):
        config = TempiConfig(allreduce_algorithm=algorithm, topology=spec)
        comm = interpose(ctx, config, model=model)
        nbytes = COUNT * FLOAT.size
        send = ctx.gpu.malloc(nbytes)
        recv = ctx.gpu.malloc(nbytes)
        rng = np.random.default_rng(11 + ctx.rank)
        values = rng.integers(-1000, 1000, COUNT).astype(np.float32)
        send.data[:nbytes] = values.view(np.uint8)
        comm.Allreduce((send, COUNT, FLOAT), (recv, COUNT, FLOAT))
        return ctx.clock.now, recv.data[:nbytes].tobytes()

    rows = World(nranks, ranks_per_node=spec.ranks_per_node, topology=spec).run(program)
    digest = hashlib.sha256(b"".join(row[1] for row in rows)).hexdigest()
    return [row[0] for row in rows], digest


def run_allreduces(node_counts, model):
    """The schedule sweep on the fat-tree example, plus the analytic twins."""
    spec = fattree_spec()
    topology_for = {
        nodes: Topology(nodes * spec.ranks_per_node, machine=SUMMIT, spec=spec)
        for nodes in node_counts
    }
    table = {}
    for nodes in node_counts:
        nranks = nodes * spec.ranks_per_node
        row = {}
        for algorithm in ALGORITHMS + ("auto",):
            clocks, digest = measure_allreduce(nranks, algorithm, model, spec)
            row[algorithm] = dict(clocks=clocks, completion=max(clocks), digest=digest)
        row["analytic"] = {
            algorithm: model_allreduce(
                nranks, COUNT, FLOAT.size,
                algorithm=algorithm, topology=topology_for[nodes],
            )
            for algorithm in ALGORITHMS
        }
        row["analytic_speedup"] = allreduce_hierarchy_speedup(
            nranks, COUNT, FLOAT.size, topology=topology_for[nodes]
        )
        table[nodes] = row
    return table


def check_allreduces(results) -> None:
    """The acceptance claims, shared by pytest and the CLI."""
    for nodes, row in sorted(results.items()):
        digests = {algorithm: row[algorithm]["digest"] for algorithm in ALGORITHMS}
        assert len(set(digests.values())) == 1, (
            f"{nodes} nodes: schedules disagree on the reduced bytes: {digests}"
        )
        ring = row["ring"]["completion"]
        hierarchical = row["hierarchical"]["completion"]
        assert hierarchical < ring, (
            f"{nodes} nodes: hierarchical ({hierarchical:.3e}s) must price strictly "
            f"cheaper than the flat ring ({ring:.3e}s) on the fat-tree example"
        )
        assert row["auto"]["clocks"] == row["hierarchical"]["clocks"], (
            f"{nodes} nodes: auto must reproduce the hierarchical clocks bit-for-bit "
            "on a multi-island topology"
        )
        assert row["analytic_speedup"] > 1.0, (
            f"{nodes} nodes: the analytic twin must agree the hierarchy wins "
            f"(got {row['analytic_speedup']:.3f}x)"
        )


def render_allreduces(results) -> str:
    rows = []
    for nodes, row in sorted(results.items()):
        rows.append(
            [
                nodes,
                f"{row['ring']['completion'] * 1e6:10.1f}",
                f"{row['tree']['completion'] * 1e6:10.1f}",
                f"{row['hierarchical']['completion'] * 1e6:10.1f}",
                f"{row['ring']['completion'] / row['hierarchical']['completion']:.2f}x",
                f"{row['analytic_speedup']:.2f}x",
            ]
        )
    return format_table(
        ["nodes", "ring us", "tree us", "hier us", "sim speedup", "analytic"],
        rows,
    )


@pytest.mark.benchmark(group="allreduce")
def test_allreduce_schedules(benchmark, summit_model, report):
    nodes = NODE_SWEEP_FULL if full_sweep() else NODE_SWEEP_SUBSET

    def run():
        return run_allreduces(nodes, summit_model)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAllreduce — ring vs tree vs hierarchical on the fat-tree example")
    print(render_allreduces(results))
    check_allreduces(results)
    largest = max(results)
    report.add(
        "Allreduce schedules (beyond paper)",
        "ring vs tree vs hierarchical gradient allreduce on the oversubscribed fat-tree",
        "hierarchical < ring at every node count; auto picks it (no paper value)",
        f"{results[largest]['ring']['completion'] / results[largest]['hierarchical']['completion']:.2f}x "
        f"at {largest} nodes",
        matches_shape=all(
            row["hierarchical"]["completion"] < row["ring"]["completion"]
            for row in results.values()
        ),
        note="reductions byte-identical across schedules (Hypothesis-pinned vs naive)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): 2/3 nodes on the fat-tree example",
    )
    args = parser.parse_args(argv)
    nodes = (
        NODE_SWEEP_SUBSET
        if args.smoke
        else (NODE_SWEEP_FULL if full_sweep() else NODE_SWEEP_SUBSET)
    )

    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    results = run_allreduces(nodes, model)
    print("Allreduce — ring vs tree vs hierarchical on the fat-tree example")
    print(render_allreduces(results))
    check_allreduces(results)
    print(
        "OK: hierarchical beats the flat ring at every node count, auto reproduces "
        "it bit-for-bit, and every schedule reduces to identical bytes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
