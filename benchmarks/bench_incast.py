"""Incast (beyond the paper): N senders converge on one hot receiver.

The paper's contention figures (and our Fig. 15 extension) saturate the
*sender's* injection port.  This benchmark drives the opposite skew — the
many-senders-to-one-receiver pattern cluster all-to-alls degenerate into
(cf. the pairwise-correlation workloads of PAPERS.md) — where every sender's
port is idle and the bottleneck is the receiver's **ingestion port**, which
only the duplex NIC accounting (``TempiConfig(nic="duplex")``, PR 5) models.

Two harnesses share the acceptance claims:

* **completion pricing** — each of N sender ranks fires one large typed
  ``Isend`` at rank 0; under duplex accounting the receiver's landings
  serialise on its ingestion port, so its completion clock exceeds the
  ``nic="inject_only"`` ablation's by roughly ``(N-1) * overlap * wire`` and
  the world NIC counts one ingestion stall per extra sender, while the
  ablation reproduces the PR-3/PR-4 books exactly (zero ingestion state
  touched — the property suite pins it bit-for-bit).  The analytic companion
  is :func:`repro.apps.exchange_model.model_duplex_exchange`;
  :func:`repro.apps.exchange_model.incast_efficiency` is the degradation
  curve (1.0 at one sender, monotone down as senders pile on).

* **selection shift** — background senders park their incast on the hot
  receiver, a barrier makes the posts visible, and then an idle *probe* rank
  compiles one ``Isend`` to the same receiver under
  ``TempiConfig(selection="contended")``.  With ``nic="duplex"`` the
  selector reads the receiver's ingestion backlog
  (:meth:`~repro.machine.nic.NicTimeline.ingest_backlog`) and the
  one-shot/device decision flips for crossover-zone shapes — the fast
  device wire buys nothing when the receiver cannot drain it — while the
  ``nic="inject_only"`` ablation (the PR-4 pricing: the probe's own idle
  injection port) never flips.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_incast.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_incast.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.apps.exchange_model import incast_efficiency, model_duplex_exchange
from repro.bench.harness import format_table
from repro.machine.network import DEFAULT_WIRE_OVERLAP, NetworkModel
from repro.machine.spec import SUMMIT
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: The incast payload: 4 MiB packed per sender in 4 KiB runs — wire time
#: dwarfs pack and unpack, so the receiver's completion clock isolates the
#: ingestion-port serialisation.
INCAST = dict(nblocks=1024, block=4096, pitch=8192)
#: Wire-bound background traffic for the selection probe (256 KiB per
#: sender, the Fig. 15 shape): each parks ~65% of its wire time on the hot
#: receiver's ingestion ledger.
BACKGROUND = dict(nblocks=1024, block=256, pitch=512)
#: Crossover-zone probe shapes: the idle model picks *device* for the first
#: (4 KiB in single-byte runs) and sits near the boundary for the others, so
#: a hot receiver can flip at least one.
PROBES = (
    dict(nblocks=4096, block=1, pitch=2),
    dict(nblocks=4096, block=8, pitch=16),
    dict(nblocks=2048, block=64, pitch=128),
)

SENDER_SWEEP_SUBSET = (1, 2, 4)
SENDER_SWEEP_FULL = (1, 2, 4, 8, 16)
BACKGROUND_SWEEP_SUBSET = (0, 4)
BACKGROUND_SWEEP_FULL = (0, 1, 2, 4, 8)


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def incast_wire_s(machine=SUMMIT) -> float:
    """Serial wire seconds of one incast message (inter-node, device path)."""
    nbytes = INCAST["nblocks"] * INCAST["block"]
    return NetworkModel(machine).message_time(nbytes, same_node=False, device_buffers=True)


# --------------------------------------------------------------------------- #
# Completion pricing (functional incast vs the analytic duplex model)
# --------------------------------------------------------------------------- #

def measure_incast(senders: int, model, config: TempiConfig):
    """One functional incast burst; returns receiver-side timings.

    Ranks ``1..senders`` each fire one large typed ``Isend`` at rank 0; the
    receiver posts matching ``Irecv``s and waits for all.  Returns
    ``(completion_s, receiver_ingest_stalls, world_ingest_stalls)``.
    """

    def program(ctx):
        comm = interpose(ctx, config, model=model)
        t = comm.Type_commit(
            Type_vector(INCAST["nblocks"], INCAST["block"], INCAST["pitch"], BYTE)
        )
        buf = ctx.gpu.malloc(t.extent)
        if ctx.rank == 0:
            requests = [
                comm.Irecv((buf, 1, t), source=source, tag=source)
                for source in range(1, comm.Get_size())
            ]
            Request.Waitall(requests)
            return ctx.clock.now, comm.stats.ingest_stalls
        comm.Isend((buf, 1, t), dest=0, tag=ctx.rank).Wait()
        return None

    world = World(senders + 1, ranks_per_node=1)
    results = world.run(program)
    completion, stalls = results[0]
    return completion, stalls, world.nic.ingest_stalls


def run_incasts(sender_counts, model):
    """The completion sweep: duplex vs inject_only at each sender count."""
    nbytes = INCAST["nblocks"] * INCAST["block"]
    table = {}
    for senders in sender_counts:
        duplex, duplex_stalls, _ = measure_incast(senders, model, TempiConfig())
        inject, inject_stalls, inject_world = measure_incast(
            senders, model, TempiConfig(nic="inject_only")
        )
        table[senders] = dict(
            duplex=duplex,
            inject=inject,
            duplex_stalls=duplex_stalls,
            inject_stalls=inject_stalls,
            inject_world_stalls=inject_world,
            analytic=model_duplex_exchange(senders, nbytes),
            analytic_inject=model_duplex_exchange(senders, nbytes, nic="inject_only"),
            efficiency=incast_efficiency(senders, nbytes),
        )
    return table


def check_incasts(results) -> None:
    """The completion acceptance claims, shared by pytest and the CLI."""
    wire = incast_wire_s()
    previous_efficiency = 1.0 + 1e-12
    for senders, row in sorted(results.items()):
        # The ablation never touches ingestion state: the PR-3/PR-4 books.
        assert row["inject_stalls"] == 0, "inject_only counted an ingestion stall"
        assert row["inject_world_stalls"] == 0, "inject_only advanced the ingestion ledger"
        assert (
            row["analytic_inject"].ingest_stalled_s == 0.0
        ), "the analytic ablation queued at the receiver"
        if senders == 1:
            assert row["duplex"] == row["inject"], (
                "a single sender has no incast: duplex must price it identically"
            )
            assert row["efficiency"] == pytest.approx(1.0)
            continue
        # Duplex prices the hot receiver above the ablation: the landings
        # serialise, adding ~overlap*wire per extra sender minus whatever the
        # receive-side unpacks hide (hence the 0.25 safety factor).
        floor = 0.25 * (senders - 1) * DEFAULT_WIRE_OVERLAP * wire
        assert row["duplex"] - row["inject"] >= floor, (
            f"{senders} senders: duplex only {row['duplex'] - row['inject']:.2e}s above "
            f"the ablation (expected >= {floor:.2e}s)"
        )
        assert row["duplex_stalls"] == senders - 1, (
            f"expected one ingestion stall per extra sender, got {row['duplex_stalls']}"
        )
        assert row["efficiency"] < previous_efficiency, (
            "incast efficiency must degrade monotonically with senders"
        )
        previous_efficiency = row["efficiency"]


def render_incasts(results) -> str:
    rows = [
        [
            senders,
            f"{row['inject'] * 1e6:10.1f}",
            f"{row['duplex'] * 1e6:10.1f}",
            f"{row['analytic'].completion_s * 1e6:10.1f}",
            row["duplex_stalls"],
            f"{row['efficiency']:.3f}",
        ]
        for senders, row in sorted(results.items())
    ]
    return format_table(
        ["senders", "inject us", "duplex us", "analytic us", "stalls", "efficiency"],
        rows,
    )


# --------------------------------------------------------------------------- #
# Selection shift (the contended selector behind a hot receiver)
# --------------------------------------------------------------------------- #

def probe_selection(background: int, probe: dict, model, config: TempiConfig):
    """The probe rank's selected method behind ``background`` incast senders.

    Ranks ``2..background+1`` park one wire-bound message each on the hot
    receiver (rank 0); a barrier makes those posts visible; then rank 1 — its
    own injection port idle — compiles one probe ``Isend`` to rank 0.
    Returns the probe's per-method wire-message counts.
    """

    def program(ctx):
        comm = interpose(ctx, config, model=model)
        big = comm.Type_commit(
            Type_vector(BACKGROUND["nblocks"], BACKGROUND["block"], BACKGROUND["pitch"], BYTE)
        )
        small = comm.Type_commit(
            Type_vector(probe["nblocks"], probe["block"], probe["pitch"], BYTE)
        )
        big_buf = ctx.gpu.malloc(big.extent)
        small_buf = ctx.gpu.malloc(small.extent)
        requests = []
        if ctx.rank >= 2:
            requests.append(comm.Isend((big_buf, 1, big), dest=0, tag=ctx.rank))
        comm.Barrier()  # happens-before: every background post is now visible
        counts = None
        if ctx.rank == 1:
            before = dict(comm.stats.method_counts)
            requests.append(comm.Isend((small_buf, 1, small), dest=0, tag=1))
            counts = {
                name: hits - before.get(name, 0)
                for name, hits in comm.stats.method_counts.items()
                if hits - before.get(name, 0)
            }
        if ctx.rank == 0:
            for source in range(2, comm.Get_size()):
                comm.Recv((big_buf, 1, big), source=source, tag=source)
            comm.Recv((small_buf, 1, small), source=1, tag=1)
        Request.Waitall(requests)
        return counts

    return World(background + 2, ranks_per_node=1).run(program)[1]


def run_probes(background_counts, model):
    """The selection sweep: duplex vs inject_only contended at each load."""
    table = {}
    for background in background_counts:
        row = []
        for probe in PROBES:
            idle = probe_selection(0, probe, model, TempiConfig(selection="contended"))
            duplex = probe_selection(
                background, probe, model, TempiConfig(selection="contended")
            )
            inject = probe_selection(
                background,
                probe,
                model,
                TempiConfig(selection="contended", nic="inject_only"),
            )
            row.append(dict(probe=probe, idle=idle, duplex=duplex, inject=inject))
        table[background] = row
    return table


def check_probes(results) -> list[tuple[int, int]]:
    """The selection acceptance claims; returns the flipped (load, probe) pairs."""
    flips = []
    for background, row in sorted(results.items()):
        for index, cell in enumerate(row):
            # The ablation prices the probe's own (idle) injection port only:
            # it can never see the hot receiver, at any load.
            assert cell["inject"] == cell["idle"], (
                f"inject_only probe shifted behind {background} senders"
            )
            if background == 0:
                assert cell["duplex"] == cell["idle"], (
                    "an unloaded duplex probe must select contention-free"
                )
            elif cell["duplex"] != cell["idle"]:
                flips.append((background, index))
    heavy = [flip for flip in flips if flip[0] >= 4]
    assert heavy, "no probe shape flipped behind >=4 incast senders"
    return flips


def render_probes(results) -> str:
    def fmt(counts):
        return ",".join(f"{k}={v}" for k, v in sorted(counts.items())) or "-"

    rows = []
    for background, row in sorted(results.items()):
        for index, cell in enumerate(row):
            probe = cell["probe"]
            rows.append(
                [
                    background,
                    f"{probe['nblocks']}x{probe['block']}B",
                    fmt(cell["idle"]),
                    fmt(cell["duplex"]),
                    fmt(cell["inject"]),
                    "flip" if cell["duplex"] != cell["idle"] else "same",
                ]
            )
    return format_table(
        ["bg senders", "probe", "idle", "duplex", "inject_only", ""], rows
    )


# --------------------------------------------------------------------------- #
# Harnesses
# --------------------------------------------------------------------------- #

@pytest.mark.benchmark(group="incast")
def test_incast_duplex_accounting(benchmark, summit_model, report):
    senders = SENDER_SWEEP_FULL if full_sweep() else SENDER_SWEEP_SUBSET
    backgrounds = BACKGROUND_SWEEP_FULL if full_sweep() else BACKGROUND_SWEEP_SUBSET

    def run():
        return run_incasts(senders, summit_model), run_probes(backgrounds, summit_model)

    incasts, probes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nIncast — duplex (ingestion-port) accounting vs the inject-only ablation")
    print(render_incasts(incasts))
    print(render_probes(probes))
    check_incasts(incasts)
    flips = check_probes(probes)
    report.add(
        "Incast (beyond paper)",
        "N senders -> 1 receiver: ingestion-port serialisation and selection shift",
        "duplex prices the hot receiver above inject_only; selection flips (no paper value)",
        f"{len(flips)} probe flips; efficiency "
        f"{min(row['efficiency'] for row in incasts.values()):.2f} at "
        f"{max(incasts)} senders",
        matches_shape=bool(flips),
        note="nic='inject_only' bit-identical to the PR-4 books (property-pinned)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): 1/2/4 senders, 0/4 background",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        senders, backgrounds = (1, 2, 4), (0, 4)
    else:
        senders = SENDER_SWEEP_FULL if full_sweep() else SENDER_SWEEP_SUBSET
        backgrounds = BACKGROUND_SWEEP_FULL if full_sweep() else BACKGROUND_SWEEP_SUBSET

    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    incasts = run_incasts(senders, model)
    probes = run_probes(backgrounds, model)
    print("Incast — duplex (ingestion-port) accounting vs the inject-only ablation")
    print(render_incasts(incasts))
    print(render_probes(probes))
    check_incasts(incasts)
    flips = check_probes(probes)
    print(
        f"OK: duplex prices the hot receiver above the ablation at every sender count; "
        f"{len(flips)} probe selection(s) flipped; inject_only never flipped"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
