"""SIM002 — selection/pricing code must be a pure read of the timelines.

``ContendedSelector`` prices candidates against the live NIC state; the
determinism contract (see ``docs/ARCHITECTURE.md``) requires those reads to
be *pure*: a pricing call that reserved a slot, committed an ingest batch or
advanced a sequence counter would move priced state as a side effect of
*looking at it* — the class of bug the runtime sanitizer's ledger checksum
catches dynamically, flagged here statically.

The check walks the call graph from every function defined in
``repro.tempi.selection`` and, inside each reachable body, flags method
calls where both

* the method name is a known mutating ``NicTimeline``/``ProgressEngine``
  API (:data:`MUTATING_APIS`), and
* the receiver's terminal name marks it as a timeline/engine handle
  (:data:`TIMELINE_RECEIVERS` — ``self.nic``, ``engine``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from tools.analyze.callgraph import CallGraph, module_name
from tools.analyze.core import SourceFile, Violation

#: The module whose reachable set is the pricing path.
ENTRY_MODULE = "repro.tempi.selection"

#: State-advancing APIs of :class:`~repro.machine.nic.NicTimeline` and
#: :class:`~repro.tempi.progress.ProgressEngine`.  ``port_free_at`` /
#: ``link_free_at`` / ``ingest_backlog`` / ``ingest_preview`` are the pure
#: reads pricing is allowed.
MUTATING_APIS = frozenset(
    {
        # NicTimeline
        "reserve",
        "ingest",
        "next_seq",
        "reset",
        "_register_pending",
        # ProgressEngine
        "reserve_wire",
        "ingest_one",
        "ingest_batch",
        "arrival_commit",
        "offer_send",
        "flush",
        "progress",
        "bind",
    }
)

#: Terminal receiver names that denote a timeline or engine handle.
TIMELINE_RECEIVERS = frozenset(
    {"nic", "timeline", "engine", "_engine", "progress_engine"}
)


def _receiver_name(node: ast.expr) -> Optional[str]:
    """``self.nic.reserve`` → ``nic``; ``engine.flush`` → ``engine``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def check_selection_purity(files: Iterable[SourceFile]) -> list[Violation]:
    """Flag mutating timeline/engine calls reachable from the selection module."""
    file_list = list(files)
    graph = CallGraph.build(file_list)
    reachable = graph.reachable_from_module(ENTRY_MODULE)
    if not reachable:
        return []
    relpath_by_module: dict[str, str] = {}
    for source_file in file_list:
        name = module_name(source_file.relpath)
        if name is not None:
            relpath_by_module[name] = source_file.relpath
    findings: list[Violation] = []
    for key in sorted(reachable):
        function = graph.functions.get(key)
        if function is None:
            continue
        relpath = relpath_by_module.get(function.module)
        if relpath is None:
            continue
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in MUTATING_APIS:
                continue
            receiver = _receiver_name(func.value)
            if receiver not in TIMELINE_RECEIVERS:
                continue
            findings.append(
                Violation(
                    relpath,
                    node.lineno,
                    "SIM002",
                    f"pricing path calls mutating API `{receiver}.{func.attr}` "
                    f"(reachable from {ENTRY_MODULE}); selection must be a "
                    "pure read of the timelines",
                )
            )
    return findings
