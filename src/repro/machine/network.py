"""Network cost model.

The simulated MPI prices every message with this model.  It follows the
postal/alpha-beta family the paper cites (Bar-Noy & Kipnis; Bienz et al.):
a latency floor, a bandwidth term, an eager→rendezvous switch, and — because
CUDA-awareness matters enormously here — different constants for host-resident
and device-resident buffers, and for intra- versus inter-node endpoints.

Fig. 9a of the paper is, essentially, a direct measurement of four of this
model's curves (``T_cpu-cpu``, ``T_gpu-gpu``, ``T_d2h``, ``T_h2d``); the
benchmark ``bench_fig09_transfers.py`` regenerates them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.spec import SUMMIT, InterconnectSpec, MachineSpec
from repro.machine.topology import Topology


#: Fraction of a message's serial wire time that occupies the NIC when
#: transfers to distinct peers overlap.  Shared by the analytic
#: :meth:`NetworkModel.alltoallv_time` discount and the plan executor's
#: per-message NIC serialisation, so the serial and overlapped engines price
#: the wire consistently.
DEFAULT_WIRE_OVERLAP = 0.65


class TransferPath(enum.Enum):
    """Which physical path a message takes."""

    INTRA_CPU = "intra_cpu"
    INTRA_GPU = "intra_gpu"
    INTER_CPU = "inter_cpu"
    INTER_GPU = "inter_gpu"


@dataclass(frozen=True)
class MessageCost:
    """Breakdown of one message's cost."""

    path: TransferPath
    nbytes: int
    latency_s: float
    bandwidth_s: float
    rendezvous_s: float

    @property
    def total_s(self) -> float:
        return self.latency_s + self.bandwidth_s + self.rendezvous_s


class NetworkModel:
    """Prices point-to-point messages on a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec = SUMMIT) -> None:
        self.machine = machine

    # ----------------------------------------------------------------- paths
    def path(self, *, same_node: bool, device_buffers: bool) -> TransferPath:
        """Select the transfer path for a message."""
        if same_node:
            return TransferPath.INTRA_GPU if device_buffers else TransferPath.INTRA_CPU
        return TransferPath.INTER_GPU if device_buffers else TransferPath.INTER_CPU

    def _interconnect(self, path: TransferPath) -> InterconnectSpec:
        node = self.machine.node
        if path is TransferPath.INTRA_CPU:
            return node.intra_cpu
        if path is TransferPath.INTRA_GPU:
            return node.gpu_gpu
        if path is TransferPath.INTER_CPU:
            return self.machine.inter_cpu
        return self.machine.inter_gpu

    # -------------------------------------------------------------- messages
    def message_cost(
        self,
        nbytes: int,
        *,
        same_node: bool = False,
        device_buffers: bool = False,
    ) -> MessageCost:
        """Cost of one matched send/recv pair carrying ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        path = self.path(same_node=same_node, device_buffers=device_buffers)
        link = self._interconnect(path)
        rendezvous = (
            self.machine.rendezvous_overhead_s if nbytes > self.machine.eager_threshold else 0.0
        )
        return MessageCost(
            path=path,
            nbytes=nbytes,
            latency_s=link.latency_s + link.per_message_overhead_s,
            bandwidth_s=nbytes / link.bandwidth_Bps,
            rendezvous_s=rendezvous,
        )

    def message_time(
        self,
        nbytes: int,
        *,
        same_node: bool = False,
        device_buffers: bool = False,
    ) -> float:
        """Total time of one message; the quantity Fig. 9a plots."""
        return self.message_cost(
            nbytes, same_node=same_node, device_buffers=device_buffers
        ).total_s

    def message_time_between(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        topology: Topology,
        *,
        device_buffers: bool = False,
    ) -> float:
        """Message time between two placed ranks."""
        same = topology.same_node(src_rank, dst_rank)
        return self.message_time(nbytes, same_node=same, device_buffers=device_buffers)

    # ------------------------------------------------------------ collectives
    def alltoallv_time(
        self,
        per_pair_bytes: list[int],
        topology: Topology,
        rank: int,
        *,
        device_buffers: bool = False,
        overlap: float = DEFAULT_WIRE_OVERLAP,
    ) -> float:
        """Approximate time rank ``rank`` spends in an all-to-all-v.

        The exchanges to distinct peers partially overlap on the NIC; the
        ``overlap`` factor discounts the serial sum accordingly.  Fig. 12a's
        growth of the alltoallv phase with node count comes from the growing
        number of off-node peers priced by this function.
        """
        if len(per_pair_bytes) != topology.nranks:
            raise ValueError("per_pair_bytes must have one entry per rank")
        if not 0 < overlap <= 1:
            raise ValueError("overlap must be in (0, 1]")
        serial = 0.0
        for peer, nbytes in enumerate(per_pair_bytes):
            if peer == rank or nbytes == 0:
                continue
            serial += self.message_time(
                nbytes,
                same_node=topology.same_node(rank, peer),
                device_buffers=device_buffers,
            )
        return serial * overlap

    def d2h_time(self, nbytes: int) -> float:
        """Bulk device→host copy time (the ``T_d2h`` curve of Fig. 9a)."""
        link = self.machine.node.cpu_gpu
        return link.transfer_time(nbytes)

    def h2d_time(self, nbytes: int) -> float:
        """Bulk host→device copy time (the ``T_h2d`` curve of Fig. 9a)."""
        link = self.machine.node.cpu_gpu
        return link.transfer_time(nbytes)
