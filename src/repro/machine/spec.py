"""Machine specifications.

A :class:`MachineSpec` is a plain-data description of the cluster the
simulated MPI runs on: how many GPUs and ranks fit on a node, and the
latency/bandwidth of each communication path.  The :data:`SUMMIT` preset uses
the numbers published for OLCF Summit and the floors the paper itself reports
in Fig. 9a (≈1.3 µs CPU-CPU, ≈6 µs GPU-GPU small-message latency); everything
downstream (network model, performance model, benchmarks) reads this object
rather than hard-coding constants, so alternative machines are one dataclass
away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.cost_model import SUMMIT_GPU, GpuCostModel


@dataclass(frozen=True)
class InterconnectSpec:
    """One communication path: a latency floor plus a bandwidth.

    ``per_message_overhead`` models software costs charged per message on top
    of the wire latency (matching engine, CUDA-awareness checks, etc.).
    """

    name: str
    latency_s: float
    bandwidth_Bps: float
    per_message_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ValueError(f"{self.name}: latencies must be non-negative")
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Postal-model time for ``nbytes``: latency + size/bandwidth."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + self.per_message_overhead_s + nbytes / self.bandwidth_Bps


@dataclass(frozen=True)
class NodeSpec:
    """Resources of one node."""

    cpus: int = 2
    gpus: int = 6
    cores_per_cpu: int = 21
    gpu: GpuCostModel = SUMMIT_GPU
    #: CPU-GPU link used by cudaMemcpy and zero-copy traffic (NVLink 2 on Summit).
    cpu_gpu: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec("nvlink2-cpu-gpu", 8.0e-6, 45.0e9)
    )
    #: GPU-GPU link within a node (NVLink 2).
    gpu_gpu: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec("nvlink2-gpu-gpu", 7.0e-6, 47.0e9)
    )
    #: CPU shared-memory path between ranks on the same node.
    intra_cpu: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec("shared-memory", 0.9e-6, 30.0e9)
    )


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: identical nodes joined by an inter-node network."""

    name: str
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Inter-node CPU-to-CPU path (EDR InfiniBand via Spectrum MPI on Summit).
    inter_cpu: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec("edr-ib-cpu", 1.3e-6, 12.0e9)
    )
    #: Inter-node GPU-to-GPU path (CUDA-aware MPI, GPUDirect).  The latency
    #: floor is markedly higher than the CPU path (Fig. 9a).
    inter_gpu: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec("edr-ib-gpu", 6.0e-6, 10.5e9, 0.5e-6)
    )
    #: Message size at which the MPI switches from eager to rendezvous.
    eager_threshold: int = 64 * 1024
    #: Additional latency of the rendezvous handshake.
    rendezvous_overhead_s: float = 1.6e-6
    max_nodes: int = 4608

    def with_overrides(self, **kwargs: object) -> "MachineSpec":
        """Return a copy with fields replaced (for what-if studies)."""
        return replace(self, **kwargs)

    @property
    def ranks_per_node_max(self) -> int:
        """The evaluation uses at most one rank per GPU."""
        return self.node.gpus


def summit_like(
    *,
    gpu: GpuCostModel | None = None,
    inter_cpu: InterconnectSpec | None = None,
    inter_gpu: InterconnectSpec | None = None,
    eager_threshold: int | None = None,
) -> MachineSpec:
    """Build a Summit-like machine, optionally overriding selected paths."""
    node = NodeSpec(gpu=gpu if gpu is not None else SUMMIT_GPU)
    spec = MachineSpec(name="summit-like", node=node)
    overrides = {}
    if inter_cpu is not None:
        overrides["inter_cpu"] = inter_cpu
    if inter_gpu is not None:
        overrides["inter_gpu"] = inter_gpu
    if eager_threshold is not None:
        overrides["eager_threshold"] = eager_threshold
    return spec.with_overrides(**overrides) if overrides else spec


#: The default machine used throughout the benchmarks: OLCF-Summit-like.
SUMMIT = summit_like()
