"""Measurement and formatting helpers shared by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np


def trimean(values: Sequence[float]) -> float:
    """Tukey's trimean, the statistic Fig. 7 reports: (Q1 + 2·median + Q3) / 4."""
    if not len(values):
        raise ValueError("trimean of an empty sequence")
    q1, median, q3 = np.percentile(np.asarray(values, dtype=np.float64), [25, 50, 75])
    return float((q1 + 2.0 * median + q3) / 4.0)


@dataclass
class BenchResult:
    """One measured quantity with its repetitions."""

    label: str
    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def trimean(self) -> float:
        return trimean(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def best(self) -> float:
        return float(np.min(self.samples))


def measure_virtual(clock, fn: Callable[[], object], repetitions: int = 1) -> BenchResult:
    """Run ``fn`` ``repetitions`` times and record the virtual time of each run."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    result = BenchResult(label=getattr(fn, "__name__", "measurement"))
    for _ in range(repetitions):
        start = clock.now
        fn()
        result.add(clock.now - start)
    return result


def format_speedup(baseline_s: float, accelerated_s: float) -> str:
    """Human-readable speedup (``12,345x``); guards against zero denominators."""
    if accelerated_s <= 0:
        return "inf"
    return f"{baseline_s / accelerated_s:,.1f}x"


def format_us(seconds: float) -> str:
    """Seconds rendered as microseconds with thousands separators."""
    return f"{seconds * 1e6:,.1f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (what the benchmark harness prints).

    Every cell is rendered with ``str``; numeric alignment is the caller's
    responsibility (pre-format floats).
    """
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rendered
    ]
    return "\n".join([line, separator, *body])


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, used for aggregate speedup summaries."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
