"""Analytic halo-exchange model for paper-scale rank counts (Fig. 12).

The functional :class:`~repro.apps.stencil.HaloExchange` moves real bytes and
is limited to tens of ranks of modest grids on one machine.  Fig. 12 runs
256³ points per rank on up to 512 nodes × 6 GPUs = 3072 ranks; this module
evaluates the *same per-rank cost expressions* the functional path charges —
baseline per-block memcpys or TEMPI kernels for pack/unpack, the network
model for the all-to-all-v — without allocating gigabytes or spawning
thousands of threads.

Three engines are priced:

* :func:`model_halo_exchange` — the paper's pack / exchange / unpack phases
  (``mode="packed"``), with baseline or TEMPI datatype handling;
* :func:`model_fused_exchange` — the fused datatype-carrying collective
  (``mode="neighbor"`` under the serial PR-1 engine): one kernel per
  destination, but packs, wire and unpacks still add up;
* :func:`model_overlap_exchange` — the overlapped plan-executor pipeline:
  per-peer packs run concurrently, each message enters the NIC when its pack
  completes, and each peer's unpack starts at its arrival, so the exchange
  costs the slowest chain instead of the sum of phases.

Because every rank owns an identical sub-domain and the decomposition is
periodic, ranks are statistically identical; the model evaluates one
representative rank per node position and reports the maximum across the
distinct neighbour placements, which is what the paper's "maximum time across
all ranks" reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid
from repro.machine.network import DEFAULT_WIRE_OVERLAP, NetworkModel
from repro.machine.spec import SUMMIT, MachineSpec
from repro.machine.topology import Topology
from repro.tempi.config import TempiConfig


@dataclass(frozen=True)
class ExchangeBreakdown:
    """Modelled per-phase seconds of one halo exchange (max across ranks)."""

    nodes: int
    ranks_per_node: int
    nranks: int
    pack_s: float
    comm_s: float
    unpack_s: float

    @property
    def total_s(self) -> float:
        return self.pack_s + self.comm_s + self.unpack_s


def _pack_phase_time(
    spec: HaloSpec,
    machine: MachineSpec,
    *,
    tempi: bool,
    unpack: bool,
    config: TempiConfig,
) -> float:
    """Time one rank spends packing (or unpacking) its 26 halos."""
    gpu = machine.node.gpu
    total = 0.0
    for direction in DIRECTIONS:
        nbytes = spec.halo_bytes(direction)
        block = spec.halo_block_length(direction)
        if tempi:
            total += gpu.kernel_time(nbytes, block, target="device", unpack=unpack)
            total += config.handler_lookup_s + config.pointer_check_s
        else:
            blocks = spec.halo_block_count(direction)
            total += blocks * gpu.memcpy_call_s + nbytes / gpu.d2d_bandwidth
    return total


def _comm_phase_time(
    spec: HaloSpec,
    grid: RankGrid,
    topology: Topology,
    network: NetworkModel,
) -> float:
    """Time the slowest rank spends in the all-to-all-v.

    Every rank exchanges the same 26 sections; what differs is how many of its
    neighbours share its node.  The model evaluates every rank's aggregate
    per-peer byte counts through the same :meth:`NetworkModel.alltoallv_time`
    the functional path charges and returns the maximum — but since ranks on
    the same node position are identical it only needs to examine one node's
    worth of ranks.
    """
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    worst = 0.0
    for rank in representatives:
        per_pair = [0] * grid.nranks
        for direction, peer in grid.neighbors(rank):
            per_pair[peer] += spec.halo_bytes(direction)
        worst = max(
            worst,
            network.alltoallv_time(per_pair, topology, rank, device_buffers=True),
        )
    return worst


def model_halo_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    tempi: bool = True,
    config: TempiConfig | None = None,
) -> ExchangeBreakdown:
    """Model one halo exchange at ``nodes × ranks_per_node`` scale.

    ``tempi=False`` prices the pack/unpack phases with the Spectrum-like
    baseline (one memcpy per contiguous block); ``tempi=True`` prices them
    with TEMPI's kernels.  The communication phase is identical in both cases,
    which is why the paper's speedup shrinks as communication grows with the
    rank count.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    pack = _pack_phase_time(spec, machine, tempi=tempi, unpack=False, config=config)
    unpack = _pack_phase_time(spec, machine, tempi=tempi, unpack=True, config=config)
    comm = _comm_phase_time(spec, grid, topology, network)
    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=pack,
        comm_s=comm,
        unpack_s=unpack,
    )


# --------------------------------------------------------------------------- #
# Fused collective and overlapped pipeline (the plan-executor engines)
# --------------------------------------------------------------------------- #

def _send_groups(grid: RankGrid, rank: int) -> dict[int, list[tuple[int, int, int]]]:
    """Wire-peer groups of one rank's 26 directions, in ascending peer order.

    Matches the section order :func:`repro.apps.halo.neighbor_sections`
    produces (and therefore the post-stage order the plan executor runs).
    Self-directed sections are excluded — they bounce through staging without
    touching the wire.
    """
    groups: dict[int, list[tuple[int, int, int]]] = {}
    for direction, peer in grid.neighbors(rank):
        if peer != rank:
            groups.setdefault(peer, []).append(direction)
    return {peer: sorted(groups[peer]) for peer in sorted(groups)}


def _kernel_sum(spec: HaloSpec, machine: MachineSpec, directions, *, unpack: bool) -> float:
    gpu = machine.node.gpu
    return sum(
        gpu.kernel_time(
            spec.halo_bytes(d), spec.halo_block_length(d), target="device", unpack=unpack
        )
        for d in directions
    )


def model_fused_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    config: TempiConfig | None = None,
) -> ExchangeBreakdown:
    """Price the fused datatype-carrying collective under the serial engine.

    One pack kernel per section straight out of the user buffer (no
    ``MPI_Pack`` loop, handler overhead charged once per collective), then
    the analytic all-to-all-v wire, then one unpack kernel per section —
    packs, wire and unpacks still add up, which is exactly what the
    overlapped pipeline removes.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    overhead = config.handler_lookup_s + config.pointer_check_s
    pack = _kernel_sum(spec, machine, DIRECTIONS, unpack=False) + overhead
    unpack = _kernel_sum(spec, machine, DIRECTIONS, unpack=True)
    comm = _comm_phase_time(spec, grid, topology, network)
    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=pack,
        comm_s=comm,
        unpack_s=unpack,
    )


def model_overlap_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    config: TempiConfig | None = None,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> ExchangeBreakdown:
    """Price the overlapped plan-executor pipeline at paper scale.

    Per-peer pack kernels run concurrently on their own streams; each peer's
    message enters the NIC when its pack completes (transfers serialising at
    ``wire_overlap`` occupancy, the same discount the analytic all-to-all-v
    uses); by symmetry the incoming message from a peer arrives when the
    outgoing one would, and its unpack is issued at arrival on its own
    stream.  The exchange therefore costs the makespan of the slowest
    pack → wire → unpack chain, not the sum of phases.

    The reported phases partition that makespan: ``pack_s`` is the time until
    the last pack kernel completes (launches serialise on the host, kernels
    run concurrently on per-peer streams, plus the off-wire self-exchange),
    ``comm_s`` the additional time until the last arrival, ``unpack_s`` the
    tail (unpack launches and the final per-stream synchronisations).
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    launch_s = gpu.kernel_launch_s
    sync_s = gpu.kernel_sync_s
    overhead = config.handler_lookup_s + config.pointer_check_s

    def kernel_device_s(direction, *, unpack: bool) -> float:
        # Stream-resident duration: the launch overhead is charged to the
        # host clock separately, exactly as the simulated runtime does.
        return (
            gpu.kernel_time(
                spec.halo_bytes(direction),
                spec.halo_block_length(direction),
                target="device",
                unpack=unpack,
                include_sync=False,
            )
            - launch_s
        )

    worst = (0.0, 0.0, 0.0)
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    for rank in representatives:
        groups = _send_groups(grid, rank)
        host = overhead  # handler lookup + pointer check, once per exchange
        nic_free = host
        arrivals: list[tuple[list, float]] = []
        last_pack = host
        for peer, directions in groups.items():
            ready = host
            for direction in directions:
                host += launch_s
                ready = max(ready, host) + kernel_device_s(direction, unpack=False)
            nbytes = sum(spec.halo_bytes(d) for d in directions)
            wire = network.message_time(
                nbytes,
                same_node=topology.same_node(rank, peer),
                device_buffers=True,
            )
            start = max(ready, nic_free)
            nic_free = start + wire_overlap * wire
            arrivals.append((directions, start + wire))
            last_pack = max(last_pack, ready)
        # Off-wire self-exchange: packed and unpacked synchronously on the
        # host while the per-peer streams work.
        local_dirs = [d for d, peer in grid.neighbors(rank) if peer == rank]
        for direction in local_dirs:
            host += launch_s + kernel_device_s(direction, unpack=False) + sync_s
        for direction in local_dirs:
            host += launch_s + kernel_device_s(direction, unpack=True) + sync_s
        last_pack = max(last_pack, host)
        # Receive side: advance to each arrival, issue that peer's unpacks on
        # its stream, synchronise every stream at the end.
        finishes = []
        last_arrival = host
        for directions, arrival in arrivals:
            host = max(host, arrival)
            last_arrival = max(last_arrival, arrival)
            ready = host
            for direction in directions:
                host += launch_s
                ready = max(ready, host) + kernel_device_s(direction, unpack=True)
            finishes.append(ready)
        makespan = max([host] + finishes) + sync_s * len(finishes)
        if makespan > sum(worst):
            pack_s = last_pack
            comm_s = max(0.0, last_arrival - last_pack)
            worst = (pack_s, comm_s, makespan - pack_s - comm_s)

    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=worst[0],
        comm_s=worst[1],
        unpack_s=worst[2],
    )


def overlap_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Whole-exchange speedup of the overlapped pipeline over the fused serial
    collective — the quantity ``bench_fig14_overlap.py`` measures functionally."""
    fused = model_fused_exchange(nodes, ranks_per_node, spec=spec, machine=machine)
    overlapped = model_overlap_exchange(nodes, ranks_per_node, spec=spec, machine=machine)
    return fused.total_s / overlapped.total_s


def halo_exchange_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Whole-exchange speedup of TEMPI over the baseline (Fig. 12b)."""
    baseline = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=False
    )
    accelerated = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=True
    )
    return baseline.total_s / accelerated.total_s
