"""Tests for MPI datatype → Type IR translation (Sec. 3.1)."""

import pytest

from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_resized,
    Type_create_struct,
    Type_create_subarray,
    Type_indexed,
    Type_vector,
)
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT, ORDER_C, ORDER_FORTRAN
from repro.tempi.translate import TranslationError, translatable, translate


class TestNamed:
    def test_named_becomes_dense(self):
        ty = translate(FLOAT)
        assert ty.is_dense
        assert ty.data.extent == 4
        assert ty.data.offset == 0
        assert ty.child is None

    def test_byte_and_double_extents(self):
        assert translate(BYTE).data.extent == 1
        assert translate(DOUBLE).data.extent == 8


class TestContiguous:
    def test_stream_over_oldtype_extent(self):
        ty = translate(Type_contiguous(10, FLOAT))
        assert ty.is_stream
        assert ty.data.count == 10
        assert ty.data.stride == 4
        assert ty.child.is_dense

    def test_contiguous_of_strided_keeps_structure(self):
        inner = Type_vector(3, 1, 2, FLOAT)
        ty = translate(Type_contiguous(5, inner))
        assert ty.data.count == 5
        assert ty.data.stride == inner.extent
        assert ty.child.is_stream


class TestVectorAndHvector:
    def test_vector_becomes_two_streams(self):
        # The paper: parent is the blocks, child is the elements of a block.
        ty = translate(Type_vector(13, 100, 128, FLOAT))
        assert ty.is_stream
        assert ty.data.count == 13
        assert ty.data.stride == 128 * 4
        child = ty.child
        assert child.is_stream
        assert child.data.count == 100
        assert child.data.stride == 4
        assert child.child.is_dense

    def test_hvector_stride_taken_directly(self):
        ty = translate(Type_create_hvector(13, 100, 999, FLOAT))
        assert ty.data.stride == 999
        assert ty.child.data.count == 100

    def test_total_bytes_matches_size(self):
        t = Type_vector(7, 3, 5, DOUBLE)
        assert translate(t).total_bytes() == t.size


class TestSubarray:
    def test_2d_c_order_strides(self):
        t = Type_create_subarray([8, 64], [4, 16], [2, 8], ORDER_C, BYTE)
        ty = translate(t)
        # Slowest dimension on top: count 4, stride 64; then count 16, stride 1.
        assert ty.data.count == 4
        assert ty.data.stride == 64
        assert ty.data.offset == 2 * 64
        inner = ty.child
        assert inner.data.count == 16
        assert inner.data.stride == 1
        assert inner.data.offset == 8

    def test_fortran_order_swaps_fastest_dimension(self):
        t = Type_create_subarray([64, 8], [16, 4], [8, 2], ORDER_FORTRAN, BYTE)
        ty = translate(t)
        assert ty.data.count == 4
        assert ty.data.stride == 64
        assert ty.child.data.count == 16

    def test_element_type_scales_strides(self):
        t = Type_create_subarray([8, 64], [4, 16], [0, 0], ORDER_C, FLOAT)
        ty = translate(t)
        assert ty.data.stride == 64 * 4
        assert ty.child.data.stride == 4

    def test_3d_depth(self):
        t = Type_create_subarray([4, 8, 16], [2, 4, 8], [0, 0, 0], ORDER_C, BYTE)
        ty = translate(t)
        assert ty.depth() == 4  # three stream levels plus the dense leaf

    def test_total_bytes_matches_size(self):
        t = Type_create_subarray([4, 8, 16], [2, 4, 8], [1, 2, 4], ORDER_C, FLOAT)
        assert translate(t).total_bytes() == t.size


class TestResizedAndUnsupported:
    def test_resized_translates_inner_type(self):
        v = Type_vector(4, 2, 8, FLOAT)
        r = Type_create_resized(v, 0, 4096)
        assert translate(r).structure() == translate(v).structure()

    def test_indexed_rejected(self):
        with pytest.raises(TranslationError):
            translate(Type_indexed([1, 2], [0, 4], FLOAT))

    def test_struct_rejected(self):
        with pytest.raises(TranslationError):
            translate(Type_create_struct([1], [0], [FLOAT]))

    def test_translatable_predicate(self):
        assert translatable(Type_vector(2, 2, 4, FLOAT))
        assert not translatable(Type_indexed([1], [0], FLOAT))
