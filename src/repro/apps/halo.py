"""Halo-region geometry and datatypes for the 3-D stencil.

One rank owns an ``nx × ny × nz`` block of gridpoints surrounded by a ghost
shell of ``radius`` points.  Every gridpoint carries ``fields`` values of
``bytes_per_field`` bytes (the paper: eight 8-byte values), stored
point-major so one gridpoint is a contiguous ``fields × bytes_per_field``
run.  For each of the 26 directions the rank must send the interior slab of
thickness ``radius`` adjacent to that face/edge/corner and receive into the
corresponding ghost slab; both regions are described as byte subarrays of the
allocation, which is exactly the strided family TEMPI canonicalises.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.mpi.constructors import SubarrayDatatype, Type_create_subarray
from repro.mpi.datatype import BYTE, ORDER_C

#: The 26 neighbour directions of a 3-D stencil with corners, as (dx, dy, dz).
DIRECTIONS: tuple[tuple[int, int, int], ...] = tuple(
    d for d in product((-1, 0, 1), repeat=3) if d != (0, 0, 0)
)


def negate(direction: tuple[int, int, int]) -> tuple[int, int, int]:
    """The opposite stencil direction (the one a neighbour sends back along)."""
    return (-direction[0], -direction[1], -direction[2])


@dataclass(frozen=True)
class HaloSpec:
    """Geometry of one rank's sub-domain.

    The defaults correspond to the paper's configuration scaled down; the
    paper's own numbers (``nx = ny = nz = 256``, ``radius = 3``,
    ``fields = 8``, ``bytes_per_field = 8``) are provided by
    :meth:`HaloSpec.paper`.
    """

    nx: int = 16
    ny: int = 16
    nz: int = 16
    radius: int = 3
    fields: int = 8
    bytes_per_field: int = 8

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.radius <= 0:
            raise ValueError("stencil radius must be positive")
        if min(self.nx, self.ny, self.nz) < self.radius:
            raise ValueError("grid dimensions must be at least the stencil radius")
        if self.fields <= 0 or self.bytes_per_field <= 0:
            raise ValueError("fields and bytes_per_field must be positive")

    @classmethod
    def paper(cls) -> "HaloSpec":
        """The configuration of Sec. 6.4 (256³ points, radius 3, 8×8 B values)."""
        return cls(nx=256, ny=256, nz=256, radius=3, fields=8, bytes_per_field=8)

    # ------------------------------------------------------------------ sizes
    @property
    def point_bytes(self) -> int:
        """Bytes per gridpoint."""
        return self.fields * self.bytes_per_field

    @property
    def alloc_dims(self) -> tuple[int, int, int]:
        """Allocation extents including ghost shells, as (ax, ay, az) points."""
        pad = 2 * self.radius
        return (self.nx + pad, self.ny + pad, self.nz + pad)

    @property
    def alloc_bytes(self) -> int:
        """Bytes of one rank's allocation."""
        ax, ay, az = self.alloc_dims
        return ax * ay * az * self.point_bytes

    def halo_extents(self, direction: tuple[int, int, int]) -> tuple[int, int, int]:
        """Points of the halo slab in each axis for one direction."""
        dx, dy, dz = direction
        return (
            self.radius if dx else self.nx,
            self.radius if dy else self.ny,
            self.radius if dz else self.nz,
        )

    def halo_bytes(self, direction: tuple[int, int, int]) -> int:
        """Payload bytes of one halo region."""
        sx, sy, sz = self.halo_extents(direction)
        return sx * sy * sz * self.point_bytes

    def total_halo_bytes(self) -> int:
        """Payload bytes a rank sends per exchange (all 26 directions)."""
        return sum(self.halo_bytes(d) for d in DIRECTIONS)

    def halo_block_length(self, direction: tuple[int, int, int]) -> int:
        """Contiguous-run bytes of one halo region (the x-extent of the slab)."""
        sx, _, _ = self.halo_extents(direction)
        return sx * self.point_bytes

    def halo_block_count(self, direction: tuple[int, int, int]) -> int:
        """Number of contiguous runs in one halo region."""
        _, sy, sz = self.halo_extents(direction)
        return sy * sz

    # -------------------------------------------------------------- datatypes
    def _region_start(
        self, direction: tuple[int, int, int], *, interior: bool
    ) -> tuple[int, int, int]:
        """Starting point indices of the send (interior) or recv (ghost) slab."""
        starts = []
        for axis, delta in enumerate(direction):
            n = (self.nx, self.ny, self.nz)[axis]
            if delta == 0:
                starts.append(self.radius)
            elif delta < 0:
                starts.append(self.radius if interior else 0)
            else:
                starts.append(n if interior else n + self.radius)
        return tuple(starts)

    def _subarray(
        self, direction: tuple[int, int, int], *, interior: bool
    ) -> SubarrayDatatype:
        ax, ay, az = self.alloc_dims
        sx, sy, sz = self.halo_extents(direction)
        startx, starty, startz = self._region_start(direction, interior=interior)
        elem = self.point_bytes
        # ORDER_C lists dimensions slowest first; x (× point bytes) is fastest.
        return Type_create_subarray(
            sizes=(az, ay, ax * elem),
            subsizes=(sz, sy, sx * elem),
            starts=(startz, starty, startx * elem),
            order=ORDER_C,
            oldtype=BYTE,
        )

    def send_datatype(self, direction: tuple[int, int, int]) -> SubarrayDatatype:
        """Datatype describing the interior slab sent toward ``direction``."""
        self._check_direction(direction)
        return self._subarray(direction, interior=True)

    def recv_datatype(self, direction: tuple[int, int, int]) -> SubarrayDatatype:
        """Datatype describing the ghost slab received from ``direction``."""
        self._check_direction(direction)
        return self._subarray(direction, interior=False)

    @staticmethod
    def _check_direction(direction: tuple[int, int, int]) -> None:
        if direction not in DIRECTIONS:
            raise ValueError(f"{direction!r} is not one of the 26 stencil directions")


@dataclass(frozen=True)
class RankGrid:
    """A periodic 3-D decomposition of ``nranks`` ranks."""

    dims: tuple[int, int, int]

    @classmethod
    def for_ranks(cls, nranks: int) -> "RankGrid":
        """A near-cubic factorisation of ``nranks`` into three grid dimensions."""
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        best = (nranks, 1, 1)
        best_score = None
        for px in range(1, nranks + 1):
            if nranks % px:
                continue
            rest = nranks // px
            for py in range(1, rest + 1):
                if rest % py:
                    continue
                pz = rest // py
                dims = tuple(sorted((px, py, pz), reverse=True))
                score = max(dims) - min(dims)
                if best_score is None or score < best_score:
                    best, best_score = dims, score
        return cls(dims=best)

    @property
    def nranks(self) -> int:
        px, py, pz = self.dims
        return px * py * pz

    def coords(self, rank: int) -> tuple[int, int, int]:
        """3-D coordinates of a rank (x fastest)."""
        self._check_rank(rank)
        px, py, _ = self.dims
        return (rank % px, (rank // px) % py, rank // (px * py))

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        """Rank at (periodic) coordinates."""
        px, py, pz = self.dims
        x, y, z = (coords[0] % px, coords[1] % py, coords[2] % pz)
        return x + px * (y + py * z)

    def neighbor(self, rank: int, direction: tuple[int, int, int]) -> int:
        """Rank of the periodic neighbour in ``direction``."""
        x, y, z = self.coords(rank)
        dx, dy, dz = direction
        return self.rank_of((x + dx, y + dy, z + dz))

    def neighbors(self, rank: int) -> Iterator[tuple[tuple[int, int, int], int]]:
        """All 26 ``(direction, neighbour rank)`` pairs for a rank."""
        for direction in DIRECTIONS:
            yield direction, self.neighbor(rank, direction)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} outside grid of {self.nranks}")


def neighbor_sections(
    grid: RankGrid, rank: int
) -> tuple[list[tuple[tuple[int, int, int], int]], list[tuple[tuple[int, int, int], int]]]:
    """Ordered ``(direction, peer)`` section lists for the neighbour collective.

    The typed ``Neighbor_alltoallv`` concatenates the sections of one peer in
    list order, so the two endpoints of every pair must agree on that order
    even when several directions map to the same peer (periodic grids smaller
    than 3x3x3).  A section sent along ``d`` arrives as the receiver's ghost
    slab in direction ``-d``, so listing send sections by direction and
    receive sections by *negated* direction makes both sides enumerate each
    pair's sections identically — the same convention the packed layout of
    :class:`repro.apps.stencil.HaloExchange` uses for its displacements.
    """
    send_to: dict[int, list[tuple[int, int, int]]] = {}
    recv_from: dict[int, list[tuple[int, int, int]]] = {}
    for direction, peer in grid.neighbors(rank):
        send_to.setdefault(peer, []).append(direction)
        recv_from.setdefault(peer, []).append(direction)
    send_order = []
    recv_order = []
    for peer in sorted(send_to):
        for direction in sorted(send_to[peer]):
            send_order.append((direction, peer))
        for direction in sorted(recv_from[peer], key=negate):
            recv_order.append((direction, peer))
    return send_order, recv_order
