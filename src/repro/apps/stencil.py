"""Functional 3-D stencil halo exchange (Sec. 6.4).

This is the application exactly as the paper describes it, in three variants
selected by ``mode``:

* ``"packed"`` — every rank describes each of its 26 halo regions with a
  derived datatype, packs them with ``MPI_Pack`` into a single send buffer,
  exchanges that buffer with a byte all-to-all-v, and unpacks the 26 ghost
  regions with ``MPI_Unpack``;
* ``"neighbor"`` — the hand-rolled pack/unpack loops disappear: the rank
  hands the 26 datatypes straight to the datatype-carrying
  ``Neighbor_alltoallv``, and the communicator's collective does the packing
  — per-block baseline copies on the system MPI, one kernel per destination
  under TEMPI's interposer;
* ``"overlap"`` — the structure real halo codes use to hide pack latency:
  one typed ``Irecv``/``Isend`` pair per direction followed by ``Waitall``,
  so each direction's pack overlaps the previous directions' wire time.
  Under TEMPI's interposer every ``Isend`` compiles to a
  :class:`~repro.tempi.plan.MessagePlan` whose pack kernel runs on its own
  stream, and every ``Irecv`` defers its unpack to ``Waitall``.

Either way the communicator it runs against decides whether the datatype
handling is the system MPI's per-block baseline or TEMPI's kernels — the
application code is identical, which is the whole point of the interposer.

Run it on a :class:`~repro.mpi.world.World` with a modest grid for functional
verification; use :mod:`repro.apps.exchange_model` for the paper-scale
numbers of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid, negate, neighbor_sections
from repro.mpi import typemap
from repro.mpi.datatype import Datatype
from repro.mpi.request import Request

#: Tag space of the per-direction nonblocking exchange, far above application
#: tags and far below the collective tag range.
_DIRECTION_TAG_BASE = 2_000_000
_DIRECTION_INDEX = {direction: index for index, direction in enumerate(DIRECTIONS)}


def direction_tag(direction: tuple[int, int, int]) -> int:
    """The message tag of a halo section travelling along ``direction``."""
    return _DIRECTION_TAG_BASE + _DIRECTION_INDEX[direction]


@dataclass(frozen=True)
class HaloTiming:
    """Virtual seconds spent in each phase of one exchange (max across ranks
    when aggregated by :func:`aggregate_timings`)."""

    pack_s: float
    comm_s: float
    unpack_s: float

    @property
    def total_s(self) -> float:
        return self.pack_s + self.comm_s + self.unpack_s


def aggregate_timings(timings: list[HaloTiming]) -> HaloTiming:
    """Per-phase maxima across ranks, as the paper reports (Sec. 6.4)."""
    if not timings:
        raise ValueError("no timings to aggregate")
    return HaloTiming(
        pack_s=max(t.pack_s for t in timings),
        comm_s=max(t.comm_s for t in timings),
        unpack_s=max(t.unpack_s for t in timings),
    )


class HaloExchange:
    """One rank's state for the halo exchange."""

    MODES = ("packed", "neighbor", "overlap")

    def __init__(
        self,
        ctx,
        comm,
        spec: HaloSpec,
        *,
        grid: RankGrid | None = None,
        mode: str = "packed",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.ctx = ctx
        self.comm = comm
        self.spec = spec
        self.mode = mode
        self.grid = grid if grid is not None else RankGrid.for_ranks(comm.Get_size())
        if self.grid.nranks != comm.Get_size():
            raise ValueError(
                f"rank grid of {self.grid.nranks} does not match communicator of {comm.Get_size()}"
            )
        self.rank = comm.Get_rank()
        self.local = ctx.gpu.malloc(spec.alloc_bytes)

        # Commit one send and one receive datatype per direction.
        self.send_types: dict[tuple[int, int, int], Datatype] = {}
        self.recv_types: dict[tuple[int, int, int], Datatype] = {}
        for direction in DIRECTIONS:
            self.send_types[direction] = comm.Type_commit(spec.send_datatype(direction))
            self.recv_types[direction] = comm.Type_commit(spec.recv_datatype(direction))

        self._build_layout()
        self._build_neighbor_layout()
        if mode == "packed":
            total = sum(spec.halo_bytes(d) for d in DIRECTIONS)
            self.sendbuf = ctx.gpu.malloc(total)
            self.recvbuf = ctx.gpu.malloc(total)

    # ------------------------------------------------------------------ layout
    def _build_layout(self) -> None:
        """Group the 26 halo sections into per-destination-rank segments.

        Within the segment sent to a peer, sections are ordered by the send
        direction; within the segment received from a peer, by the *negated*
        receive direction — so both sides of every pair agree on the order of
        sections even when several directions map to the same peer (small
        periodic rank grids).
        """
        size = self.comm.Get_size()
        spec = self.spec
        send_dirs_to: dict[int, list[tuple[int, int, int]]] = {}
        recv_dirs_from: dict[int, list[tuple[int, int, int]]] = {}
        for direction, peer in self.grid.neighbors(self.rank):
            send_dirs_to.setdefault(peer, []).append(direction)
            recv_dirs_from.setdefault(peer, []).append(direction)
        for peer in send_dirs_to:
            send_dirs_to[peer].sort()
            recv_dirs_from[peer].sort(key=negate)

        self.sendcounts = [0] * size
        self.senddispls = [0] * size
        self.recvcounts = [0] * size
        self.recvdispls = [0] * size
        self.send_positions: dict[tuple[int, int, int], int] = {}
        self.recv_positions: dict[tuple[int, int, int], int] = {}

        cursor = 0
        for peer in range(size):
            self.senddispls[peer] = cursor
            for direction in send_dirs_to.get(peer, []):
                self.send_positions[direction] = cursor
                nbytes = spec.halo_bytes(direction)
                self.sendcounts[peer] += nbytes
                cursor += nbytes
        cursor = 0
        for peer in range(size):
            self.recvdispls[peer] = cursor
            for direction in recv_dirs_from.get(peer, []):
                self.recv_positions[direction] = cursor
                nbytes = spec.halo_bytes(direction)
                self.recvcounts[peer] += nbytes
                cursor += nbytes

    def _build_neighbor_layout(self) -> None:
        """Section lists for the datatype-carrying neighbour collective.

        Each of the 26 sections is one subarray datatype of the local
        allocation (count 1, displacement 0); the ordering convention that
        keeps both endpoints of a pair in agreement lives in
        :func:`repro.apps.halo.neighbor_sections`.
        """
        send_order, recv_order = neighbor_sections(self.grid, self.rank)
        self.neighbor_peers = [peer for _, peer in send_order]
        self.neighbor_sendtypes = [self.send_types[d] for d, _ in send_order]
        self.neighbor_recvtypes = [self.recv_types[d] for d, _ in recv_order]

    # ------------------------------------------------------------------- data
    def fill_interior(self, value: int | None = None) -> int:
        """Fill the rank's interior points with a rank-dependent byte value."""
        value = (self.rank + 1) % 251 if value is None else value
        # The interior region is every point not in a ghost shell; a subarray
        # covering the full interior locates its bytes.
        spec = self.spec
        from repro.mpi.constructors import Type_create_subarray
        from repro.mpi.datatype import BYTE, ORDER_C

        ax, ay, az = spec.alloc_dims
        elem = spec.point_bytes
        interior = Type_create_subarray(
            sizes=(az, ay, ax * elem),
            subsizes=(spec.nz, spec.ny, spec.nx * elem),
            starts=(spec.radius, spec.radius, spec.radius * elem),
            order=ORDER_C,
            oldtype=BYTE,
        )
        offsets, lengths = typemap.offsets_and_lengths(interior)
        data = self.local.data
        for offset, length in zip(offsets, lengths):
            data[int(offset) : int(offset) + int(length)] = value
        return value

    def ghost_values(self, direction: tuple[int, int, int]) -> np.ndarray:
        """The bytes currently in the ghost slab of ``direction``."""
        offsets, lengths = typemap.offsets_and_lengths(self.recv_types[direction])
        data = self.local.data
        chunks = [data[int(o) : int(o) + int(l)] for o, l in zip(offsets, lengths)]
        return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint8)

    def expected_ghost_value(self, direction: tuple[int, int, int]) -> int:
        """The fill value of the rank whose interior feeds this ghost slab."""
        return (self.grid.neighbor(self.rank, direction) + 1) % 251

    def verify_ghosts(self) -> None:
        """Assert every ghost slab holds its neighbour's fill value."""
        for direction in DIRECTIONS:
            values = self.ghost_values(direction)
            expected = self.expected_ghost_value(direction)
            if not np.all(values == expected):
                raise AssertionError(
                    f"rank {self.rank}: ghost {direction} expected {expected}, "
                    f"got values {np.unique(values)}"
                )

    # --------------------------------------------------------------- exchange
    def exchange(self) -> HaloTiming:
        """One halo exchange; returns this rank's per-phase virtual times.

        In ``"neighbor"`` and ``"overlap"`` modes packing happens inside the
        communication calls, so the whole exchange is reported as
        communication time.
        """
        if self.mode == "neighbor":
            return self._exchange_neighbor()
        if self.mode == "overlap":
            return self._exchange_overlap()
        comm = self.comm
        clock = self.ctx.clock

        comm.Barrier()
        start = clock.now
        for direction in DIRECTIONS:
            comm.Pack(
                (self.local, 1, self.send_types[direction]),
                self.sendbuf,
                self.send_positions[direction],
            )
        comm.Barrier()
        pack_end = clock.now

        comm.Alltoallv(
            self.sendbuf,
            self.sendcounts,
            self.senddispls,
            self.recvbuf,
            self.recvcounts,
            self.recvdispls,
        )
        comm.Barrier()
        comm_end = clock.now

        for direction in DIRECTIONS:
            comm.Unpack(
                self.recvbuf,
                self.recv_positions[direction],
                (self.local, 1, self.recv_types[direction]),
            )
        comm.Barrier()
        unpack_end = clock.now

        return HaloTiming(
            pack_s=pack_end - start,
            comm_s=comm_end - pack_end,
            unpack_s=unpack_end - comm_end,
        )

    def _exchange_neighbor(self) -> HaloTiming:
        """One exchange through the datatype-carrying neighbour collective."""
        comm = self.comm
        clock = self.ctx.clock
        ones = [1] * len(self.neighbor_peers)
        zeros = [0] * len(self.neighbor_peers)

        comm.Barrier()
        start = clock.now
        comm.Neighbor_alltoallv(
            self.neighbor_peers,
            self.local,
            ones,
            zeros,
            self.local,
            ones,
            zeros,
            sendtypes=self.neighbor_sendtypes,
            recvtypes=self.neighbor_recvtypes,
        )
        comm.Barrier()
        return HaloTiming(pack_s=0.0, comm_s=clock.now - start, unpack_s=0.0)

    def _exchange_overlap(self) -> HaloTiming:
        """One exchange through per-direction ``Irecv``/``Isend`` + ``Waitall``.

        A section sent along ``d`` arrives as the receiver's ghost slab in
        direction ``-d``, so the receive for ghost direction ``g`` matches
        tag ``direction_tag(-g)`` from neighbour ``g`` — the per-direction
        tags keep multiple sections between the same pair of ranks apart.
        """
        comm = self.comm
        clock = self.ctx.clock

        comm.Barrier()
        start = clock.now
        recv_requests = []
        for direction in DIRECTIONS:
            peer = self.grid.neighbor(self.rank, direction)
            recv_requests.append(
                comm.Irecv(
                    (self.local, 1, self.recv_types[direction]),
                    peer,
                    direction_tag(negate(direction)),
                )
            )
        send_requests = []
        for direction in DIRECTIONS:
            peer = self.grid.neighbor(self.rank, direction)
            send_requests.append(
                comm.Isend(
                    (self.local, 1, self.send_types[direction]),
                    peer,
                    direction_tag(direction),
                )
            )
        Request.Waitall(recv_requests)
        Request.Waitall(send_requests)
        comm.Barrier()
        return HaloTiming(pack_s=0.0, comm_s=clock.now - start, unpack_s=0.0)

    def run(self, iterations: int = 1, *, verify: bool = False) -> list[HaloTiming]:
        """Run several exchanges (optionally verifying ghost contents each time)."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if verify:
            self.fill_interior()
        timings = []
        for _ in range(iterations):
            timings.append(self.exchange())
            if verify:
                self.verify_ghosts()
        return timings
