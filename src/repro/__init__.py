"""repro: a Python reproduction of TEMPI (HPDC 2021).

TEMPI is an interposed MPI library that gives CUDA-aware MPI implementations
fast handling of derived datatypes by (1) canonicalising nested strided
datatypes into a compact representation backed by generic GPU pack kernels
and (2) choosing the packing method for ``MPI_Send``/``MPI_Recv`` at runtime
from empirical system measurements.

This package reimplements the whole stack in Python on top of simulated
substrates (see ``DESIGN.md``):

``repro.gpu``
    A functional simulated CUDA runtime with virtual-time cost accounting.
``repro.machine``
    Machine and network models (Summit-like preset).
``repro.mpi``
    A functional simulated MPI with the Spectrum-like baseline datatype path.
``repro.tempi``
    The paper's contribution: datatype canonicalisation, kernel selection,
    the packing-method performance model and the interposer.
``repro.apps``
    The 3-D stencil halo exchange used by the evaluation.
``repro.bench``
    Harness helpers shared by the figure/table benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
