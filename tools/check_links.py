"""Relative-link checker for the repository's Markdown documentation.

Scans the given Markdown files (and every ``*.md`` under the given
directories) for inline links and validates that each *relative* target —
optionally carrying a ``#fragment`` — exists on disk, resolved against the
linking file's directory.  External (``http(s)://``, ``mailto:``) and
pure-fragment links are ignored.  Exits non-zero listing every broken link,
so the CI docs step fails when a rename orphans a cross-reference.

Usage::

    python tools/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: ``[text](target)`` — images included.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not files on disk.
EXTERNAL = ("http://", "https://", "mailto:")


def collect(arguments: list[str]) -> list[Path]:
    """The Markdown files named by the arguments (directories recursed)."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def broken_links(files: list[Path]) -> list[str]:
    """Every relative link in ``files`` whose target does not exist."""
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            for target in LINK.findall(line):
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not (path.parent / relative).exists():
                    problems.append(f"{path}:{number}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point: check the given files/directories, report and exit."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: check_links.py <file-or-directory> [...]", file=sys.stderr)
        return 2
    files = collect(arguments)
    problems = broken_links(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"checked {len(files)} file(s): all relative links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
