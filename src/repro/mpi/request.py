"""Nonblocking-communication requests."""

from __future__ import annotations

from typing import Callable, Optional

from repro.mpi.errors import MpiError
from repro.mpi.status import Status


class Request:
    """Handle for a nonblocking operation (``MPI_Request``).

    The simulation keeps nonblocking semantics simple and deadlock-free:

    * ``Isend`` performs its local work (datatype packing, posting the
      envelope) immediately and records the virtual time at which the send
      buffer may be reused; ``Wait`` advances the caller's clock there.
    * ``Irecv`` defers matching to ``Wait``/``Test``; because sends never
      block on a thread level, deferring receives cannot deadlock.
    """

    def __init__(
        self,
        kind: str,
        *,
        complete: Optional[Callable[[], Status]] = None,
        completion_time: Optional[float] = None,
        clock=None,
    ) -> None:
        if kind not in ("send", "recv", "null"):
            raise MpiError(f"unknown request kind {kind!r}")
        self.kind = kind
        self._complete = complete
        self._completion_time = completion_time
        self._clock = clock
        self._done = False
        self._status = Status()

    # ------------------------------------------------------------------ waits
    def Wait(self) -> Status:
        """Block until the operation completes; returns its :class:`Status`."""
        if self._done:
            return self._status
        if self._complete is not None:
            self._status = self._complete()
        if self._completion_time is not None and self._clock is not None:
            self._clock.advance_to(self._completion_time)
        self._done = True
        return self._status

    def Test(self) -> tuple[bool, Optional[Status]]:
        """Nonblocking completion check.

        Receives only complete through :meth:`Wait` in this simulation, so
        ``Test`` reports False for them until ``Wait`` has been called; sends
        complete as soon as their completion time has passed on the clock.
        """
        if self._done:
            return True, self._status
        if self.kind == "send" and self._completion_time is not None and self._clock is not None:
            if self._clock.now >= self._completion_time:
                self._done = True
                return True, self._status
        return False, None

    @property
    def completed(self) -> bool:
        """True once :meth:`Wait` (or a successful :meth:`Test`) has run."""
        return self._done

    # ------------------------------------------------------------- aggregates
    @staticmethod
    def Waitall(requests: list["Request"]) -> list[Status]:
        """Wait for every request; returns their statuses in order."""
        return [request.Wait() for request in requests]

    @staticmethod
    def Waitany(requests: list["Request"]) -> tuple[int, Status]:
        """Wait for (at least) one request; returns ``(index, status)``.

        The simulation completes them in order, which satisfies the MPI
        contract (any completed request may be returned).
        """
        if not requests:
            raise MpiError("Waitany requires at least one request")
        for index, request in enumerate(requests):
            if not request.completed:
                return index, request.Wait()
        return 0, requests[0].Wait()


#: A request that is already complete (``MPI_REQUEST_NULL`` analogue).
def null_request() -> Request:
    request = Request("null")
    request._done = True  # noqa: SLF001 - factory for the null handle
    return request
