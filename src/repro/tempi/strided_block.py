"""StridedBlock: the compact canonical representation (Sec. 3.3, Alg. 5).

After canonicalisation the Type chain is a stack of ``StreamData`` levels over
one ``DenseData`` leaf.  Such a chain is semantically an MPI subarray, and
TEMPI lowers it to a :class:`StridedBlock`:

* ``start`` — byte offset of the first byte from the buffer origin
  (the accumulated per-level offsets);
* ``counts`` — elements per dimension, innermost (contiguous) first;
* ``strides`` — bytes between elements of each dimension, so ``strides[0]``
  is always 1 and ``counts[0]`` is the contiguous-run length in bytes.

The StridedBlock is the only thing the pack kernels need; it occupies a few
dozen host bytes and **no device memory**, which is the paper's answer to the
block-list representations of prior work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.tempi.ir import Type


@dataclass(frozen=True)
class StridedBlock:
    """An n-dimensional strided block of bytes."""

    start: int
    counts: tuple[int, ...]
    strides: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if len(self.counts) != len(self.strides):
            raise ValueError("counts and strides must have the same length")
        if not self.counts:
            raise ValueError("a StridedBlock needs at least one dimension")
        if any(c <= 0 for c in self.counts) or any(s <= 0 for s in self.strides):
            raise ValueError("counts and strides must be positive")
        if self.strides[0] != 1:
            raise ValueError("dimension 0 must be the contiguous run (stride 1)")

    # ------------------------------------------------------------------ shape
    @property
    def ndims(self) -> int:
        """Number of dimensions (1 = fully contiguous)."""
        return len(self.counts)

    @property
    def is_contiguous(self) -> bool:
        """True when the block is a single contiguous run."""
        return self.ndims == 1

    @property
    def block_length(self) -> int:
        """Bytes in each contiguous run (``counts[0]``)."""
        return self.counts[0]

    @property
    def packed_bytes(self) -> int:
        """Payload bytes of one object (product of counts)."""
        total = 1
        for count in self.counts:
            total *= count
        return total

    @property
    def num_blocks(self) -> int:
        """Number of contiguous runs in one object."""
        return self.packed_bytes // self.block_length

    @property
    def extent(self) -> int:
        """Bytes of underlying storage spanned by one object (from ``start``)."""
        last = 0
        for count, stride in zip(self.counts, self.strides):
            last += (count - 1) * stride
        return last + 1

    def footprint(self) -> int:
        """Host metadata bytes (8 per integer); the paper's Sec. 2 comparison."""
        return 8 * (1 + 2 * self.ndims)

    def __str__(self) -> str:
        dims = "x".join(str(c) for c in self.counts)
        return f"StridedBlock(start={self.start}, {dims}, strides={list(self.strides)})"


def to_strided_block(ty: Type) -> Optional[StridedBlock]:
    """Lower a canonicalised Type chain to a StridedBlock (Alg. 5).

    Returns ``None`` when the chain is not a stack of streams over a dense
    leaf — the "not strided" case of the paper, which falls back to the
    baseline path.
    """
    levels = list(ty.levels())
    leaf = levels[-1]
    if not leaf.is_dense:
        return None
    if not all(level.is_stream for level in levels[:-1]):
        return None

    start = leaf.data.offset
    counts = [leaf.data.extent]
    strides = [1]
    # Walk from the level directly above the leaf up to the root so that
    # dimension i+1 is the next-slower dimension, as the kernels expect.
    for level in reversed(levels[:-1]):
        start += level.data.offset
        counts.append(level.data.count)
        strides.append(level.data.stride)
    return StridedBlock(start=start, counts=tuple(counts), strides=tuple(strides))


@dataclass(frozen=True)
class ObjectShape:
    """A StridedBlock plus the dynamic ``count`` of objects an MPI call names.

    The object count is not known at commit time (Sec. 3.3), so it travels
    separately; ``object_extent`` is the spacing between consecutive objects
    in the user buffer (the MPI extent of the committed datatype).
    """

    block: StridedBlock
    count: int = 1
    object_extent: int = field(default=0)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"object count must be positive, got {self.count}")
        if self.object_extent < 0:
            raise ValueError("object_extent must be non-negative")

    @property
    def total_bytes(self) -> int:
        """Packed payload of all objects."""
        return self.block.packed_bytes * self.count
