"""Tests for type-map flattening."""

import numpy as np
import pytest

from repro.mpi import typemap
from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_subarray,
    Type_indexed,
    Type_vector,
)
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT, ORDER_C
from repro.mpi.errors import MpiTypeError


class TestMergeBlocks:
    def test_adjacent_blocks_merge(self):
        assert list(typemap.merge_blocks([(0, 4), (4, 4), (8, 4)])) == [(0, 12)]

    def test_gaps_preserved(self):
        assert list(typemap.merge_blocks([(0, 4), (8, 4)])) == [(0, 4), (8, 4)]

    def test_zero_length_blocks_skipped(self):
        assert list(typemap.merge_blocks([(0, 4), (4, 0), (4, 4)])) == [(0, 8)]

    def test_empty_input(self):
        assert list(typemap.merge_blocks([])) == []

    def test_negative_rejected(self):
        with pytest.raises(MpiTypeError):
            list(typemap.merge_blocks([(0, -1)]))


class TestFlatten:
    def test_named(self):
        assert list(typemap.flatten(DOUBLE)) == [(0, 8)]

    def test_base_offset(self):
        assert list(typemap.flatten(DOUBLE, base=16)) == [(16, 8)]

    def test_vector(self):
        t = Type_vector(3, 1, 2, FLOAT)
        assert list(typemap.flatten(t)) == [(0, 4), (8, 4), (16, 4)]

    def test_nested_hvector_of_contiguous(self):
        row = Type_contiguous(4, BYTE)
        t = Type_create_hvector(2, 1, 16, row)
        assert list(typemap.flatten(t)) == [(0, 4), (16, 4)]

    def test_total_bytes_equals_size(self):
        t = Type_create_subarray([8, 16], [3, 5], [2, 4], ORDER_C, FLOAT)
        assert sum(length for _, length in typemap.flatten(t)) == t.size


class TestFlattenMany:
    def test_elements_spaced_by_extent(self):
        # extent is ((2-1)*4 + 1)*4 = 20 bytes, so element 1 starts at 20 and
        # its first block (20, 4) merges with element 0's trailing (16, 4).
        t = Type_vector(2, 1, 4, FLOAT)
        result = list(typemap.flatten_many(t, 2))
        assert result == [(0, 4), (16, 8), (36, 4)]

    def test_contiguous_elements_merge_across_count(self):
        t = Type_contiguous(4, FLOAT)
        assert list(typemap.flatten_many(t, 3)) == [(0, 48)]

    def test_base_offset_applies(self):
        t = Type_contiguous(2, FLOAT)
        assert list(typemap.flatten_many(t, 1, base=100)) == [(100, 8)]

    def test_invalid_count(self):
        with pytest.raises(MpiTypeError):
            list(typemap.flatten_many(FLOAT, 0))


class TestBlockCount:
    def test_matches_flatten_for_strided_types(self):
        cases = [
            Type_vector(7, 3, 5, FLOAT),
            Type_create_hvector(4, 2, 64, DOUBLE),
            Type_create_subarray([8, 64], [4, 16], [1, 8], ORDER_C, BYTE),
            Type_indexed([2, 3, 1], [0, 10, 20], FLOAT),
        ]
        for t in cases:
            assert typemap.block_count(t) == len(list(typemap.flatten(t)))

    def test_count_scales_blocks(self):
        t = Type_vector(7, 3, 5, FLOAT)
        assert typemap.block_count(t, 3) == 21

    def test_contiguous_counts_as_one(self):
        t = Type_contiguous(64, BYTE)
        assert typemap.block_count(t, 10) == 1

    def test_invalid_count(self):
        with pytest.raises(MpiTypeError):
            typemap.block_count(FLOAT, 0)


class TestSizesAndHistograms:
    def test_packed_size(self):
        t = Type_vector(4, 2, 8, FLOAT)
        assert typemap.packed_size(t, 3) == 4 * 2 * 4 * 3

    def test_packed_size_invalid_count(self):
        with pytest.raises(MpiTypeError):
            typemap.packed_size(FLOAT, -1)

    def test_block_length_histogram(self):
        t = Type_indexed([2, 2, 1], [0, 10, 20], FLOAT)
        assert typemap.block_lengths_histogram(t) == {8: 2, 4: 1}

    def test_dominant_block_length(self):
        t = Type_indexed([2, 2, 1], [0, 10, 20], FLOAT)
        assert typemap.dominant_block_length(t) == 8

    def test_dominant_block_length_of_vector(self):
        assert typemap.dominant_block_length(Type_vector(16, 3, 8, FLOAT)) == 12

    def test_offsets_and_lengths_arrays(self):
        t = Type_vector(3, 1, 2, FLOAT)
        offsets, lengths = typemap.offsets_and_lengths(t)
        assert isinstance(offsets, np.ndarray)
        assert offsets.tolist() == [0, 8, 16]
        assert lengths.tolist() == [4, 4, 4]
