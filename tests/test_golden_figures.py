"""Golden replay: the figure benchmarks price bit-identically, forever.

``tests/fixtures/golden_figures.json`` freezes small sweeps of the Fig. 9
burst selection, the Fig. 14 overlap latencies, the Fig. 15 contention
efficiency, the incast receiver-side pricing, the allreduce schedule
clocks and the skewed MoE dispatch round (see
``tools/make_golden_fixtures.py``).  This tier-1 test
reruns the exact same sweeps and compares under **exact equality** — the
simulated figures are pure virtual-clock arithmetic, so even a one-ulp
drift means a change leaked into the priced model.  The fast-path caches
in particular must be invisible here.

If a figure value moved *deliberately*, regenerate the fixture with
``PYTHONPATH=src python tools/make_golden_fixtures.py`` and commit it with
the change that moved it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
FIXTURE = REPO / "tests" / "fixtures" / "golden_figures.json"


def _build_fixture(summit_model) -> dict:
    sys.path.insert(0, str(TOOLS))
    try:
        import make_golden_fixtures as golden
    finally:
        sys.path.remove(str(TOOLS))
    return golden.build_fixture(summit_model)


def test_golden_figures_replay_exactly(summit_model):
    committed = json.loads(FIXTURE.read_text())
    # The JSON round-trip canonicalizes types (tuples to lists, keys to
    # strings); float round-trip is exact, so equality stays bit-level.
    fresh = json.loads(json.dumps(_build_fixture(summit_model)))
    assert fresh == committed, (
        "figure benchmarks no longer replay the committed golden fixture; "
        "if the change is deliberate, regenerate with "
        "`PYTHONPATH=src python tools/make_golden_fixtures.py`"
    )
