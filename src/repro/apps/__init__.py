"""Applications used by the paper's evaluation.

The headline application is a 26-neighbour 3-D stencil halo exchange modelled
on the communication pattern of the Astaroth stellar-simulation code
(Sec. 6.4): every rank owns a cube of gridpoints with eight 8-byte values per
point, describes each of its 26 halo regions with a derived datatype, packs
them with ``MPI_Pack`` into one buffer, exchanges that buffer with an
all-to-all-v, and unpacks the ghost regions.

* :mod:`repro.apps.halo` builds the halo datatypes and the rank decomposition;
* :mod:`repro.apps.stencil` runs the exchange functionally on a
  :class:`~repro.mpi.world.World` (small grids, real bytes);
* :mod:`repro.apps.exchange_model` evaluates the same per-rank costs
  analytically for the paper's 256³-per-rank problem at up to 3072 ranks
  (Fig. 12).
"""

from repro.apps.exchange_model import ExchangeBreakdown, model_halo_exchange
from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid
from repro.apps.stencil import HaloExchange, HaloTiming

__all__ = [
    "DIRECTIONS",
    "ExchangeBreakdown",
    "HaloExchange",
    "HaloSpec",
    "HaloTiming",
    "RankGrid",
    "model_halo_exchange",
]
