"""Unit tests for the shared virtual NIC timeline."""

import threading

import pytest

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.nic import NicError, NicTimeline


class TestReserve:
    def test_free_port_starts_at_ready(self):
        nic = NicTimeline()
        reservation = nic.reserve(0, 1, ready=2.0, wire_s=1.0)
        assert reservation.start == 2.0
        assert reservation.arrival == 3.0
        assert not reservation.stalled
        assert reservation.stalled_s == 0.0

    def test_distinct_peers_serialise_at_wire_overlap(self):
        nic = NicTimeline()
        first = nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        second = nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        assert first.start == 0.0
        # The port frees after the overlap fraction, not the full wire time.
        assert second.start == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)
        assert second.stalled
        assert second.stalled_s == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)

    def test_same_peer_serialises_fully(self):
        nic = NicTimeline()
        first = nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        repeat = nic.reserve(0, 1, ready=0.0, wire_s=4.0)
        # The (0, 1) link is busy until the first arrival, beyond the port.
        assert repeat.start == pytest.approx(first.arrival)

    def test_sources_do_not_contend(self):
        nic = NicTimeline()
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        other = nic.reserve(1, 2, ready=0.0, wire_s=10.0)
        # Injection ports are per source rank; receive-side contention is
        # deliberately unmodelled (determinism).
        assert other.start == 0.0

    def test_ready_after_port_does_not_stall(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=1.0)
        late = nic.reserve(0, 2, ready=100.0, wire_s=1.0)
        assert late.start == 100.0
        assert not late.stalled

    def test_counters_and_accessors(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        assert nic.reservations == 2
        assert nic.stalls == 1
        assert nic.stalled_s > 0.0
        assert nic.port_free_at(0) == pytest.approx(
            DEFAULT_WIRE_OVERLAP * 10.0 + DEFAULT_WIRE_OVERLAP * 10.0
        )
        assert nic.link_free_at(0, 1) == pytest.approx(10.0)
        assert nic.port_free_at(5) == 0.0

    def test_negative_wire_rejected(self):
        nic = NicTimeline()
        with pytest.raises(NicError):
            nic.reserve(0, 1, ready=0.0, wire_s=-1.0)

    def test_bad_overlap_rejected(self):
        with pytest.raises(NicError):
            NicTimeline(wire_overlap=0.0)
        with pytest.raises(NicError):
            NicTimeline(wire_overlap=1.5)


class TestLedger:
    def test_in_flight_counts_occupancy(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0, nbytes=64)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0, nbytes=64)
        assert nic.in_flight(1.0) == 1  # second starts at 6.5
        assert nic.in_flight(7.0) == 2
        assert nic.in_flight(20.0) == 0
        assert nic.in_flight(7.0, source=0) == 2
        assert nic.in_flight(7.0, source=3) == 0

    def test_ledger_records_and_bounds(self):
        nic = NicTimeline(ledger_limit=2)
        for peer in (1, 2, 3):
            nic.reserve(0, peer, ready=0.0, wire_s=1.0, nbytes=peer)
        records = nic.ledger()
        assert len(records) == 2
        assert [r.dest for r in records] == [2, 3]
        assert nic.ledger(source=7) == []

    def test_reset_forgets_everything(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        nic.reset()
        assert nic.reservations == 0
        assert nic.stalls == 0
        assert nic.port_free_at(0) == 0.0
        assert nic.ledger() == []
        fresh = nic.reserve(0, 3, ready=0.0, wire_s=1.0)
        assert fresh.start == 0.0


class TestThreadSafety:
    def test_concurrent_sources_keep_consistent_ports(self):
        nic = NicTimeline()
        errors = []

        def inject(rank):
            try:
                for _ in range(200):
                    nic.reserve(rank, (rank + 1) % 8, ready=0.0, wire_s=0.01)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=inject, args=(rank,)) for rank in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert nic.reservations == 8 * 200
        # Every rank sent 200 messages to one peer: the link rule serialises
        # them end to end, so each start is 0.01 after the previous and the
        # port frees an overlap-fraction after the last start.
        expected = 199 * 0.01 + DEFAULT_WIRE_OVERLAP * 0.01
        for rank in range(8):
            assert nic.port_free_at(rank) == pytest.approx(expected)
