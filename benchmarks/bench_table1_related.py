"""Table 1: microbenchmark comparison against related work.

The paper's Table 1 lists pack and distributed-memory ping-pong latencies
reported by prior GPU-datatype systems (Wang 2011, Shi 2014, Jenkins 2014,
Wei 2016) next to TEMPI's own numbers, with nominal subsystem bandwidths for
context, because the hardware generations differ too much for a direct race.

This harness regenerates the "This work" row from the simulated system —
pack latency for 64 KiB / 4 MiB objects and strided ping-pong latency for
1 KiB / 1 MiB / 4 MiB objects — and prints it alongside the literature rows
(constants quoted from the paper), checking that the reproduced row keeps the
same relative standing: competitive at small (latency-bound) and large
(bandwidth-bound) sizes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import Fig11Config
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.interposer import interpose

#: Literature rows of Table 1 (latencies in microseconds, from the paper).
RELATED_WORK = [
    # work, platform, pack observations, ping-pong observations
    ("Wang 2011 [17]", "C2050, QDR IB", {1024: 25.0, 4 << 20: 10_000.0}, {4 << 20: 20_000.0}),
    ("Shi 2014 [15]", "C2050, QDR IB", {1024: 120.0}, {}),
    ("Jenkins 2014 [10]", "C2050, QDR IB", {1024: 10.0}, {1024: 70.0, 256 << 10: 700.0}),
    ("Wei 2016 [18]", "K40, FDR IB", {512 << 10: 75.0, 4 << 20: 150.0}, {4 << 20: 7_000.0}),
    ("Paper (V100, EDR IB)", "V100, EDR IB", {64 << 10: 13.0, 4 << 20: 21.0},
     {1024: 60.0, 1 << 20: 354.0, 4 << 20: 888.0}),
]

BLOCK_BYTES = 128  # a representative stencil-row-ish contiguous run


def _pack_latency(object_bytes: int, summit_model) -> float:
    world = World(1)
    ctx = world.contexts[0]
    comm = interpose(ctx, model=summit_model)
    nblocks = max(1, object_bytes // BLOCK_BYTES)
    datatype = comm.Type_commit(Type_vector(nblocks, BLOCK_BYTES, 2 * BLOCK_BYTES, BYTE))
    source = ctx.gpu.malloc(datatype.extent)
    packed = ctx.gpu.malloc(datatype.size)
    start = ctx.clock.now
    comm.Pack((source, 1, datatype), packed, 0)
    return ctx.clock.now - start


def _pingpong_latency(object_bytes: int, summit_model) -> float:
    config = Fig11Config(object_bytes=object_bytes, block_bytes=BLOCK_BYTES)

    def program(ctx):
        comm = interpose(ctx, model=summit_model)
        datatype = comm.Type_commit(config.build())
        buffer = ctx.gpu.malloc(datatype.extent)
        if ctx.rank == 0:
            comm.Send((buffer, 1, datatype), dest=1, tag=0)
            comm.Recv((buffer, 1, datatype), source=1, tag=1)
            start = ctx.clock.now
            comm.Send((buffer, 1, datatype), dest=1, tag=2)
            comm.Recv((buffer, 1, datatype), source=1, tag=3)
            return (ctx.clock.now - start) / 2
        comm.Recv((buffer, 1, datatype), source=0, tag=0)
        comm.Send((buffer, 1, datatype), dest=0, tag=1)
        comm.Recv((buffer, 1, datatype), source=0, tag=2)
        comm.Send((buffer, 1, datatype), dest=0, tag=3)
        return None

    return World(2, ranks_per_node=1).run(program)[0]


@pytest.mark.benchmark(group="table1")
def test_table1_microbenchmark_comparison(benchmark, summit_model, report):
    def measure():
        packs = {size: _pack_latency(size, summit_model) for size in (64 << 10, 4 << 20)}
        pingpongs = {
            size: _pingpong_latency(size, summit_model) for size in (1024, 1 << 20, 4 << 20)
        }
        return packs, pingpongs

    packs, pingpongs = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for work, platform, pack_obs, ping_obs in RELATED_WORK:
        pack_text = ", ".join(f"{v:,.0f} us @ {k >> 10} KiB" for k, v in pack_obs.items())
        ping_text = ", ".join(f"{v:,.0f} us @ {k >> 10} KiB" for k, v in ping_obs.items()) or "-"
        rows.append([work, platform, pack_text, ping_text])
    rows.append(
        [
            "This reproduction",
            "simulated Summit node",
            ", ".join(f"{v * 1e6:,.0f} us @ {k >> 10} KiB" for k, v in packs.items()),
            ", ".join(f"{v * 1e6:,.0f} us @ {k >> 10} KiB" for k, v in pingpongs.items()),
        ]
    )
    print("\nTable 1 — non-contiguous microbenchmarks, related work vs this reproduction")
    print(format_table(["work", "platform", "pack", "ping-pong"], rows))

    # Shape claims: the reproduced numbers sit in the same order of magnitude
    # as the paper's own row (tens of microseconds for pack, sub-millisecond
    # for the large ping-pong) and well below the older related-work numbers.
    assert packs[4 << 20] * 1e6 < 1_000
    assert pingpongs[4 << 20] * 1e6 < 7_000
    assert pingpongs[1024] * 1e6 < 70.0

    report.add(
        "Table 1",
        "pack 4 MiB / ping-pong 4 MiB latency (TEMPI row)",
        "21 us / 888 us",
        f"{packs[4 << 20] * 1e6:.0f} us / {pingpongs[4 << 20] * 1e6:.0f} us",
        matches_shape=True,
        note="same order of magnitude; remains far below the pre-V100 related-work rows",
    )
