"""Property-based tests of pack/unpack data movement.

Invariants:

* TEMPI's kernel pack produces exactly the same packed bytes as the baseline
  (per-block) engine for any strided datatype — pack order is the canonical
  order for both because the canonical form sorts dimensions the same way the
  MPI type map orders them for these constructions;
* unpack is the inverse of pack (gather∘scatter∘gather is gather);
* bytes outside the described region are never touched.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu.cost_model import FREE_GPU
from repro.gpu.runtime import CudaRuntime
from repro.mpi.baseline import BaselineDatatypeEngine
from repro.mpi import typemap
from repro.tempi.canonicalize import simplify
from repro.tempi.packer import Packer
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate

from tests.property.test_property_canonicalize import strided_datatypes


def build_packer(datatype):
    block = to_strided_block(simplify(translate(datatype)))
    assert block is not None
    return Packer(block, object_extent=max(1, datatype.extent))


@settings(max_examples=50, deadline=None)
@given(strided_datatypes(), st.integers(min_value=0, max_value=2**31))
def test_kernel_pack_matches_baseline_pack(datatype, seed):
    datatype.Commit()
    runtime = CudaRuntime(cost_model=FREE_GPU)
    packer = build_packer(datatype)
    rng = np.random.default_rng(seed)
    source = runtime.malloc(packer.required_input(1))
    source.data[:] = rng.integers(0, 256, source.nbytes, dtype=np.uint8)

    kernel_out = runtime.malloc(datatype.size)
    packer.pack(runtime, source, kernel_out)

    baseline_out = runtime.malloc(datatype.size)
    BaselineDatatypeEngine(runtime).pack(source, datatype, 1, baseline_out)

    assert np.array_equal(kernel_out.data, baseline_out.data)


@settings(max_examples=50, deadline=None)
@given(strided_datatypes(), st.integers(min_value=0, max_value=2**31))
def test_unpack_then_pack_is_identity_on_packed_bytes(datatype, seed):
    datatype.Commit()
    runtime = CudaRuntime(cost_model=FREE_GPU)
    packer = build_packer(datatype)
    rng = np.random.default_rng(seed)
    packed = runtime.malloc(datatype.size)
    packed.data[:] = rng.integers(0, 256, packed.nbytes, dtype=np.uint8)

    scattered = runtime.malloc(packer.required_input(1))
    packer.unpack(runtime, packed, scattered)
    repacked = runtime.malloc(datatype.size)
    packer.pack(runtime, scattered, repacked)

    assert np.array_equal(packed.data, repacked.data)


@settings(max_examples=50, deadline=None)
@given(strided_datatypes())
def test_unpack_only_touches_described_bytes(datatype):
    datatype.Commit()
    runtime = CudaRuntime(cost_model=FREE_GPU)
    packer = build_packer(datatype)
    packed = runtime.malloc(datatype.size)
    packed.data[:] = 255
    scattered = runtime.malloc(packer.required_input(1))
    packer.unpack(runtime, packed, scattered)

    described = np.zeros(scattered.nbytes, dtype=bool)
    for offset, length in typemap.flatten(datatype):
        described[offset : offset + length] = True
    assert (scattered.data[described] == 255).all()
    assert not scattered.data[~described].any()


@settings(max_examples=30, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**31))
def test_multi_object_pack_matches_baseline(datatype, count, seed):
    datatype.Commit()
    runtime = CudaRuntime(cost_model=FREE_GPU)
    packer = build_packer(datatype)
    rng = np.random.default_rng(seed)
    source = runtime.malloc(packer.required_input(count))
    source.data[:] = rng.integers(0, 256, source.nbytes, dtype=np.uint8)

    kernel_out = runtime.malloc(datatype.size * count)
    packer.pack(runtime, source, kernel_out, count=count)

    baseline_out = runtime.malloc(datatype.size * count)
    BaselineDatatypeEngine(runtime).pack(source, datatype, count, baseline_out)

    assert np.array_equal(kernel_out.data, baseline_out.data)


@settings(max_examples=50, deadline=None)
@given(strided_datatypes())
def test_packed_size_and_metadata_footprint(datatype):
    packer = build_packer(datatype)
    assert packer.packed_size(1) == datatype.size
    # The canonical representation never needs more than a few dozen bytes of
    # metadata (Sec. 2's argument against device-resident block lists).
    assert packer.block.footprint() <= 8 * (1 + 2 * 8)
