"""Ablation: what the canonicalisation passes buy (DESIGN.md §5).

The paper's argument for the middle ground between specialised kernels and
generic block lists is that canonicalisation turns *every* strided
construction into the same small StridedBlock, so one generic kernel family
covers them all with negligible metadata.  This ablation disables the
canonicalisation passes (lowering the *raw* translated Type instead) and
measures what is lost:

* how many of the Fig. 7 constructions still lower to a strided block at all;
* how many distinct kernel configurations are needed per object;
* the metadata footprint compared with a block-list representation.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import fig7_configurations
from repro.mpi import typemap
from repro.tempi.canonicalize import simplify
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate


def _lower(datatype, *, canonicalize: bool):
    ir = translate(datatype)
    if canonicalize:
        ir = simplify(ir)
    return to_strided_block(ir), ir


def _sweep():
    rows = []
    for config in fig7_configurations():
        datatype = config.build()
        with_passes, canonical_ir = _lower(datatype, canonicalize=True)
        without_passes, raw_ir = _lower(datatype, canonicalize=False)
        rows.append(
            {
                "config": config,
                "canonical_block": with_passes,
                "raw_block": without_passes,
                "canonical_depth": canonical_ir.depth(),
                "raw_depth": raw_ir.depth(),
                "blocklist_bytes": 16 * typemap.block_count(datatype),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_canonicalisation_coverage(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    canonical_forms = {}
    raw_forms = {}
    for row in rows:
        config = row["config"]
        canonical_forms.setdefault(config.geometry, set()).add(
            (row["canonical_block"].counts, row["canonical_block"].strides)
        )
        raw_key = (
            (row["raw_block"].counts, row["raw_block"].strides)
            if row["raw_block"] is not None
            else ("unloweable", config.index)
        )
        raw_forms.setdefault(config.geometry, set()).add(raw_key)
        table.append(
            [
                config.label,
                row["raw_depth"],
                row["canonical_depth"],
                "yes" if row["raw_block"] is not None else "NO",
                row["canonical_block"].footprint(),
                f"{row['blocklist_bytes']:,}",
            ]
        )
    print("\nAblation — canonicalisation passes on/off")
    print(
        format_table(
            ["construction", "raw depth", "canonical depth", "lowers without passes",
             "canonical metadata (B)", "block-list metadata (B)"],
            table,
        )
    )

    # With the passes, each geometry needs exactly one kernel configuration.
    assert all(len(forms) == 1 for forms in canonical_forms.values())
    # Without them, equivalent constructions fragment into several shapes
    # (or fail to lower at all), which is the specialised-kernel explosion the
    # paper avoids.
    fragmented = sum(1 for forms in raw_forms.values() if len(forms) > 1)
    assert fragmented == len(raw_forms)
    # And the canonical metadata is orders of magnitude below a block list.
    worst_ratio = max(
        row["blocklist_bytes"] / row["canonical_block"].footprint() for row in rows
    )
    assert worst_ratio > 10

    report.add(
        "Ablation (canonicalisation)",
        "distinct kernel shapes per object with/without the passes",
        "1 with (implied by Sec. 3); many without",
        f"1 with; {max(len(f) for f in raw_forms.values())} without (worst geometry)",
        matches_shape=True,
        note=f"canonical metadata is up to {worst_ratio:,.0f}x smaller than a block list",
    )
