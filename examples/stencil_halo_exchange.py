#!/usr/bin/env python
"""3-D stencil halo exchange: the paper's application case study (Sec. 6.4).

Two parts:

1. **Functional run** — an 8-rank world exchanges halos of a small grid with
   real byte movement, once against the system MPI baseline and once through
   the TEMPI interposer, verifying ghost-cell contents both times and
   printing the per-phase virtual times.
2. **Paper-scale model** — the same per-rank cost expressions evaluated for
   the paper's 256-cubed-per-rank problem from 1 to 3072 ranks, printing the
   Fig. 12 phase breakdown and the whole-exchange speedup.

Run with:  python examples/stencil_halo_exchange.py
"""

from __future__ import annotations

from repro.apps.exchange_model import model_halo_exchange
from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange, aggregate_timings
from repro.bench.harness import format_table
from repro.mpi.world import World
from repro.tempi.interposer import interpose


def functional_run(use_tempi: bool):
    """Run the real exchange on 8 ranks of a small grid; return phase maxima."""
    spec = HaloSpec(nx=8, ny=8, nz=8, radius=2, fields=4, bytes_per_field=8)

    def program(ctx):
        comm = interpose(ctx) if use_tempi else ctx.comm
        app = HaloExchange(ctx, comm, spec)
        timings = app.run(iterations=2, verify=True)
        return timings[-1]  # steady-state iteration

    world = World(8, ranks_per_node=4)
    per_rank = world.run(program)
    return aggregate_timings(per_rank)


def paper_scale_model():
    """Fig. 12's sweep of nodes x ranks-per-node at the paper's problem size."""
    rows = []
    for nodes in (1, 2, 8, 32, 128, 512):
        for ranks_per_node in (1, 6):
            baseline = model_halo_exchange(nodes, ranks_per_node, tempi=False)
            tempi = model_halo_exchange(nodes, ranks_per_node, tempi=True)
            rows.append(
                [
                    f"{nodes}x{ranks_per_node}",
                    baseline.nranks,
                    f"{tempi.pack_s * 1e3:8.2f}",
                    f"{tempi.comm_s * 1e3:8.2f}",
                    f"{tempi.unpack_s * 1e3:8.2f}",
                    f"{baseline.total_s * 1e3:10.1f}",
                    f"{baseline.total_s / tempi.total_s:8.0f}x",
                ]
            )
    return rows


def main() -> None:
    print("== Functional 8-rank exchange (small grid, real bytes, ghosts verified)")
    baseline = functional_run(use_tempi=False)
    accelerated = functional_run(use_tempi=True)
    print(
        format_table(
            ["phase", "baseline (us)", "TEMPI (us)", "speedup"],
            [
                ["MPI_Pack", f"{baseline.pack_s * 1e6:12.1f}", f"{accelerated.pack_s * 1e6:10.1f}",
                 f"{baseline.pack_s / accelerated.pack_s:6.0f}x"],
                ["Alltoallv", f"{baseline.comm_s * 1e6:12.1f}", f"{accelerated.comm_s * 1e6:10.1f}",
                 f"{baseline.comm_s / max(accelerated.comm_s, 1e-12):6.1f}x"],
                ["MPI_Unpack", f"{baseline.unpack_s * 1e6:12.1f}", f"{accelerated.unpack_s * 1e6:10.1f}",
                 f"{baseline.unpack_s / accelerated.unpack_s:6.0f}x"],
                ["total", f"{baseline.total_s * 1e6:12.1f}", f"{accelerated.total_s * 1e6:10.1f}",
                 f"{baseline.total_s / accelerated.total_s:6.0f}x"],
            ],
        )
    )

    print()
    print("== Paper-scale model (256^3 points/rank, radius 3, 8x8-byte fields)")
    print(
        format_table(
            ["nodes x rpn", "ranks", "pack (ms)", "alltoallv (ms)", "unpack (ms)",
             "baseline total (ms)", "speedup"],
            paper_scale_model(),
        )
    )
    print()
    print("Pack/unpack stay flat as ranks grow (per-rank data is constant) while the")
    print("all-to-all-v grows, so the whole-exchange speedup shrinks with scale —")
    print("the trend of Fig. 12.")


if __name__ == "__main__":
    main()
