"""Figure 12: 3-D stencil halo exchange on up to 3072 ranks.

Fig. 12a breaks one halo exchange into MPI_Pack, (neighbor) all-to-all-v and
MPI_Unpack across a sweep of nodes x ranks-per-node; Fig. 12b reports the
whole-exchange speedup of TEMPI over the baseline, which shrinks with scale
because the (unchanged) communication grows while the (accelerated)
pack/unpack stays constant.

Two harnesses:

* a functional 8-rank run with a reduced grid, moving real bytes through the
  interposed pack -> alltoallv -> unpack pipeline and verifying ghost cells;
* the analytic paper-scale model for the full node sweep (1-512 nodes x 1/2/6
  ranks per node, 256^3 points per rank), which evaluates exactly the same
  per-rank cost expressions the functional path charges.
"""

from __future__ import annotations

import pytest

from repro.apps.exchange_model import model_halo_exchange
from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange, aggregate_timings
from repro.bench.harness import format_table
from repro.mpi.world import World
from repro.tempi.interposer import interpose

#: The paper's node sweep (Fig. 12's x-axis), trimmed of repeats.
NODE_SWEEP = [(n, rpn) for n in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512) for rpn in (1, 2, 6)]
FUNCTIONAL_SPEC = HaloSpec(nx=8, ny=8, nz=8, radius=2, fields=4, bytes_per_field=8)


def _functional_exchange(summit_model, use_tempi: bool):
    def program(ctx):
        comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
        app = HaloExchange(ctx, comm, FUNCTIONAL_SPEC)
        timings = app.run(iterations=2, verify=True)
        return timings[-1]

    world = World(8, ranks_per_node=4)
    return aggregate_timings(world.run(program))


@pytest.mark.benchmark(group="fig12")
def test_fig12_functional_exchange(benchmark, summit_model, report):
    def run_both():
        return (
            _functional_exchange(summit_model, use_tempi=False),
            _functional_exchange(summit_model, use_tempi=True),
        )

    baseline, accelerated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nFigure 12 (functional, 8 ranks, reduced grid) — phase times (simulated us)")
    print(
        format_table(
            ["phase", "baseline", "TEMPI", "speedup"],
            [
                ["MPI_Pack", f"{baseline.pack_s * 1e6:10.1f}", f"{accelerated.pack_s * 1e6:10.1f}",
                 f"{baseline.pack_s / accelerated.pack_s:6.1f}x"],
                ["Alltoallv", f"{baseline.comm_s * 1e6:10.1f}", f"{accelerated.comm_s * 1e6:10.1f}",
                 f"{baseline.comm_s / max(accelerated.comm_s, 1e-12):6.1f}x"],
                ["MPI_Unpack", f"{baseline.unpack_s * 1e6:10.1f}", f"{accelerated.unpack_s * 1e6:10.1f}",
                 f"{baseline.unpack_s / accelerated.unpack_s:6.1f}x"],
            ],
        )
    )
    assert baseline.pack_s / accelerated.pack_s > 2
    assert accelerated.total_s < baseline.total_s
    report.add(
        "Fig. 12 (functional)",
        "halo-exchange phases with real byte movement and ghost verification",
        "pack/unpack dominate the baseline; TEMPI removes that cost",
        f"pack speedup {baseline.pack_s / accelerated.pack_s:.0f}x, "
        f"comm unchanged ({accelerated.comm_s * 1e6:.1f} us)",
        matches_shape=True,
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12a_phase_breakdown_at_scale(benchmark, report):
    def sweep():
        return {
            (nodes, rpn): model_halo_exchange(nodes, rpn, tempi=True)
            for nodes, rpn in NODE_SWEEP
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (nodes, rpn), breakdown in results.items():
        rows.append(
            [
                f"{nodes}/{rpn}",
                breakdown.nranks,
                f"{breakdown.pack_s * 1e3:8.2f}",
                f"{breakdown.comm_s * 1e3:8.2f}",
                f"{breakdown.unpack_s * 1e3:8.2f}",
                f"{breakdown.total_s * 1e3:8.2f}",
            ]
        )
    print("\nFigure 12a — TEMPI halo-exchange phases at paper scale (ms, modeled)")
    print(format_table(["nodes/rpn", "ranks", "pack", "alltoallv", "unpack", "total"], rows))

    # Shape claims: pack/unpack constant across the sweep; alltoallv larger
    # with more ranks per node and more nodes (until the neighbour set saturates).
    packs = {breakdown.pack_s for breakdown in results.values()}
    assert max(packs) / min(packs) < 1.01
    assert results[(512, 6)].comm_s >= results[(1, 6)].comm_s
    assert results[(8, 6)].comm_s >= results[(8, 1)].comm_s * 0.5

    report.add(
        "Fig. 12a",
        "phase behaviour across the node sweep",
        "pack/unpack constant; alltoallv grows with ranks",
        "pack/unpack constant; alltoallv grows then saturates",
        matches_shape=True,
        note="saturation is earlier than on Summit because the model has no network contention term",
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12b_speedup_at_scale(benchmark, report):
    def sweep():
        table = {}
        for nodes, rpn in NODE_SWEEP:
            baseline = model_halo_exchange(nodes, rpn, tempi=False)
            accelerated = model_halo_exchange(nodes, rpn, tempi=True)
            table[(nodes, rpn)] = baseline.total_s / accelerated.total_s
        return table

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{nodes}/{rpn}", nodes * rpn, f"{speedup:10.0f}x"]
        for (nodes, rpn), speedup in speedups.items()
    ]
    print("\nFigure 12b — whole-exchange speedup (modeled)")
    print(format_table(["nodes/rpn", "ranks", "speedup"], rows))

    at_3072 = speedups[(512, 6)]
    at_192 = speedups[(32, 6)]
    single = speedups[(1, 1)]
    # Shape claims: speedup is large everywhere, largest at small scale, and
    # remains in the hundreds at 3072 ranks (paper: 917x).
    assert single > at_192 >= at_3072
    assert at_3072 > 100

    report.add(
        "Fig. 12b",
        "halo-exchange speedup at 3072 ranks / 192 ranks",
        "~917x / ~1050x",
        f"{at_3072:.0f}x / {at_192:.0f}x",
        matches_shape=at_3072 > 100 and single > at_3072,
        note="speedup declines with scale exactly as in the paper; absolute factor depends on the network model",
    )
