"""MoE dispatch skew: the hot expert's incast onset under typed Alltoallv.

Expert-parallel Mixture-of-Experts dispatch routes every rank's tokens to
the experts that scored them.  With a uniform gate the exchange is a
balanced all-to-all; once one expert goes *hot* — its routing weight
``skew`` times the others' — the exchange degenerates into a
many-senders/one-receiver incast at the hot rank's ingestion port.  The
sweep drives :func:`repro.apps.moe.run_moe` (pitched token datatype, so the
traffic lands on TEMPI's plan path and the shared NIC ledgers) across the
skew axis and pins the onset:

* at ``skew=1`` the hot expert's ingest stalls sit at the uniform
  all-to-all background (``hot_excess_stalls`` < 2);
* at ``skew >= 4`` the hot port queues visibly deeper than that background
  (``hot_excess_stalls`` >= 2) — the CI leg the incast claim rides on;
* the analytic twin (:func:`repro.apps.exchange_model.model_moe_exchange`)
  agrees: its hot-port stalled-seconds overtake the cold ranks' at the same
  onset;
* the exchange itself stays on the accelerated path (zero collective
  fallbacks), delivers every token's stamp intact (``verify=True``), and
  replays bit-identically run to run.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_moe.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_moe.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.apps.exchange_model import model_moe_exchange
from repro.apps.moe import MoESpec, moe_counts, run_moe
from repro.bench.harness import format_table
from repro.machine.spec import SUMMIT

#: Eight experts, one per rank — small enough for CI, wide enough that the
#: hot port sees seven concurrent senders.
NRANKS = 8

#: Routing volume and payload chosen so the hot-expert signal separates
#: cleanly from the uniform background at this seed (see ``moe_seed``).
TOKENS_PER_RANK = 16
TOKEN_BYTES = 16384
SEED = 3

#: The onset assertion boundary: below-background at skew 1, queued beyond
#: it at skew >= 4.  Skew 2 is the unasserted transition zone.
EXCESS_STALL_ONSET = 2.0

SKEW_SWEEP_SUBSET = (1.0, 4.0, 16.0)
SKEW_SWEEP_FULL = (1.0, 2.0, 4.0, 8.0, 16.0)


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def moe_spec(skew: float) -> MoESpec:
    """The sweep's dispatch spec at one skew point."""
    return MoESpec(
        tokens_per_rank=TOKENS_PER_RANK,
        token_bytes=TOKEN_BYTES,
        skew=skew,
        hot_expert=0,
        seed=SEED,
    )


def measure_moe(skew: float, model):
    """One skew point: the simulated round plus its analytic twin."""
    spec = moe_spec(skew)
    result = run_moe(NRANKS, spec, model=model, verify=True)
    twin = model_moe_exchange(
        moe_counts(spec, NRANKS), spec.token_bytes, hot_expert=spec.hot_expert
    )
    return dict(
        skew=skew,
        result=result,
        twin=twin,
        excess=result.hot_excess_stalls(spec.hot_expert),
    )


def run_moes(skews, model):
    """The skew sweep, plus a second run at the first point (determinism)."""
    table = {skew: measure_moe(skew, model) for skew in skews}
    rerun = run_moe(NRANKS, moe_spec(skews[0]), model=model, verify=True)
    table[skews[0]]["rerun"] = rerun
    return table


def check_moes(results) -> None:
    """The incast-onset claims, shared by pytest and the CLI."""
    for skew, row in sorted(results.items()):
        result = row["result"]
        assert result.collective_fallbacks == 0, (
            f"skew {skew}: the typed exchange must stay on the accelerated path "
            f"(got {result.collective_fallbacks} fallbacks)"
        )
        twin = row["twin"]
        if skew == 1.0:
            assert row["excess"] < EXCESS_STALL_ONSET, (
                f"uniform gate: hot expert must sit at the all-to-all background "
                f"(excess {row['excess']:.2f} >= {EXCESS_STALL_ONSET})"
            )
            assert twin.hot_ingest_stalled_s <= twin.cold_ingest_stalled_s, (
                "uniform gate: the twin's hot port must not out-stall the cold ranks"
            )
        elif skew >= 4.0:
            assert row["excess"] >= EXCESS_STALL_ONSET, (
                f"skew {skew}: the hot expert's ingestion port must queue beyond the "
                f"background (excess {row['excess']:.2f} < {EXCESS_STALL_ONSET})"
            )
            assert twin.hot_ingest_stalled_s > twin.cold_ingest_stalled_s, (
                f"skew {skew}: the twin's hot port must out-stall the cold ranks"
            )
    first = min(results)
    row = results[first]
    if "rerun" in row:
        rerun = row["rerun"]
        result = row["result"]
        assert rerun.clocks == result.clocks, "MoE round must replay bit-identically"
        assert rerun.digests == result.digests, "MoE payloads must replay bit-identically"


def render_moes(results) -> str:
    rows = []
    for skew, row in sorted(results.items()):
        result = row["result"]
        hot_tokens = int(row["twin"].hot_tokens)
        rows.append(
            [
                f"{skew:.0f}x",
                hot_tokens,
                f"{result.completion_s * 1e3:8.3f}",
                result.ingest_stalls,
                f"{row['excess']:6.2f}",
                f"{row['twin'].hot_ingest_stalled_s * 1e6:8.1f}",
                f"{row['twin'].cold_ingest_stalled_s * 1e6:8.1f}",
            ]
        )
    return format_table(
        ["skew", "hot tok", "sim ms", "stalls", "hot excess", "twin hot us", "twin cold us"],
        rows,
    )


@pytest.mark.benchmark(group="moe")
def test_moe_skew(benchmark, summit_model, report):
    skews = SKEW_SWEEP_FULL if full_sweep() else SKEW_SWEEP_SUBSET

    def run():
        return run_moes(skews, summit_model)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nMoE dispatch — hot-expert incast onset across the skew axis")
    print(render_moes(results))
    check_moes(results)
    hottest = max(results)
    report.add(
        "MoE hot-expert incast (beyond paper)",
        "skewed expert-parallel Alltoallv through the interposer and NIC ledgers",
        "hot-port excess stalls < 2 at skew 1, >= 2 at skew >= 4 (no paper value)",
        f"excess {results[1.0]['excess']:.2f} at 1x, "
        f"{results[hottest]['excess']:.2f} at {hottest:.0f}x",
        matches_shape=results[hottest]["excess"] >= EXCESS_STALL_ONSET,
        note="twin's hot-port stalled-seconds overtake cold at the same onset",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): skew 1/4/16 at 8 ranks",
    )
    args = parser.parse_args(argv)
    skews = (
        SKEW_SWEEP_SUBSET
        if args.smoke
        else (SKEW_SWEEP_FULL if full_sweep() else SKEW_SWEEP_SUBSET)
    )

    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    results = run_moes(skews, model)
    print("MoE dispatch — hot-expert incast onset across the skew axis")
    print(render_moes(results))
    check_moes(results)
    print(
        "OK: hot-expert ingest stalls appear at skew >= 4x, the analytic twin "
        "agrees on the onset, and the round replays bit-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
