"""Analytic halo-exchange model for paper-scale rank counts (Fig. 12).

The functional :class:`~repro.apps.stencil.HaloExchange` moves real bytes and
is limited to tens of ranks of modest grids on one machine.  Fig. 12 runs
256³ points per rank on up to 512 nodes × 6 GPUs = 3072 ranks; this module
evaluates the *same per-rank cost expressions* the functional path charges —
baseline per-block memcpys or TEMPI kernels for pack/unpack, the network
model for the all-to-all-v — without allocating gigabytes or spawning
thousands of threads.

Three engines are priced:

* :func:`model_halo_exchange` — the paper's pack / exchange / unpack phases
  (``mode="packed"``), with baseline or TEMPI datatype handling;
* :func:`model_fused_exchange` — the fused datatype-carrying collective
  (``mode="neighbor"`` under the serial PR-1 engine): one kernel per
  destination, but packs, wire and unpacks still add up;
* :func:`model_overlap_exchange` — the overlapped plan-executor pipeline:
  per-peer packs run concurrently, each message enters the NIC when its pack
  completes, and each peer's unpack starts at its arrival, so the exchange
  costs the slowest chain instead of the sum of phases;
* :func:`model_contended_exchange` — the same pipeline with ``plans``
  concurrent exchanges sharing one rank's injection port and links (the
  :class:`~repro.machine.nic.NicTimeline` rules), with a per-plan ablation;
  :func:`overlap_efficiency` is the Fig. 15 degradation curve;
* :func:`model_duplex_exchange` — the receive-side companion: an
  N-senders→1-receiver **incast**, where every sender's port is idle and the
  whole burst converges on the hot receiver's ingestion port; the
  ``nic="inject_only"`` ablation prices the same burst the PR-3/PR-4 way
  (arrivals land whenever their senders computed) and
  :func:`incast_efficiency` is the ratio — how much of the advertised
  arrival schedule survives the receiver bottleneck;
* :func:`model_fabric_exchange` — the *fabric* companion: a hierarchical
  cross-leaf burst where every flow owns its injection port, NIC rail and
  destination, and the only shared resource is the source leaf's
  oversubscribed uplink bundle (the structural incast no endpoint queue can
  explain); the ``fabric="independent"`` ablation prices each flow on a
  private timeline and :func:`uplink_efficiency` is the degradation curve
  as the oversubscription factor (or flow count) grows.

Because every rank owns an identical sub-domain and the decomposition is
periodic, ranks are statistically identical; the model evaluates one
representative rank per node position and reports the maximum across the
distinct neighbour placements, which is what the paper's "maximum time across
all ranks" reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.halo import DIRECTIONS, HaloSpec, RankGrid
from repro.machine.network import DEFAULT_WIRE_OVERLAP, NetworkModel
from repro.machine.nic import IngestRecord, NicTimeline
from repro.machine.spec import SUMMIT, MachineSpec
from repro.machine.topology import Topology, TopologySpec
from repro.tempi.config import TempiConfig


@dataclass(frozen=True)
class ExchangeBreakdown:
    """Modelled per-phase seconds of one halo exchange (max across ranks)."""

    nodes: int
    ranks_per_node: int
    nranks: int
    pack_s: float
    comm_s: float
    unpack_s: float

    @property
    def total_s(self) -> float:
        return self.pack_s + self.comm_s + self.unpack_s


def _pack_phase_time(
    spec: HaloSpec,
    machine: MachineSpec,
    *,
    tempi: bool,
    unpack: bool,
    config: TempiConfig,
) -> float:
    """Time one rank spends packing (or unpacking) its 26 halos."""
    gpu = machine.node.gpu
    total = 0.0
    for direction in DIRECTIONS:
        nbytes = spec.halo_bytes(direction)
        block = spec.halo_block_length(direction)
        if tempi:
            total += gpu.kernel_time(nbytes, block, target="device", unpack=unpack)
            total += config.handler_lookup_s + config.pointer_check_s
        else:
            blocks = spec.halo_block_count(direction)
            total += blocks * gpu.memcpy_call_s + nbytes / gpu.d2d_bandwidth
    return total


def _comm_phase_time(
    spec: HaloSpec,
    grid: RankGrid,
    topology: Topology,
    network: NetworkModel,
) -> float:
    """Time the slowest rank spends in the all-to-all-v.

    Every rank exchanges the same 26 sections; what differs is how many of its
    neighbours share its node.  The model evaluates every rank's aggregate
    per-peer byte counts through the same :meth:`NetworkModel.alltoallv_time`
    the functional path charges and returns the maximum — but since ranks on
    the same node position are identical it only needs to examine one node's
    worth of ranks.
    """
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    worst = 0.0
    for rank in representatives:
        per_pair = [0] * grid.nranks
        for direction, peer in grid.neighbors(rank):
            per_pair[peer] += spec.halo_bytes(direction)
        worst = max(
            worst,
            network.alltoallv_time(per_pair, topology, rank, device_buffers=True),
        )
    return worst


def model_halo_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    tempi: bool = True,
    config: TempiConfig | None = None,
) -> ExchangeBreakdown:
    """Model one halo exchange at ``nodes × ranks_per_node`` scale.

    ``tempi=False`` prices the pack/unpack phases with the Spectrum-like
    baseline (one memcpy per contiguous block); ``tempi=True`` prices them
    with TEMPI's kernels.  The communication phase is identical in both cases,
    which is why the paper's speedup shrinks as communication grows with the
    rank count.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    pack = _pack_phase_time(spec, machine, tempi=tempi, unpack=False, config=config)
    unpack = _pack_phase_time(spec, machine, tempi=tempi, unpack=True, config=config)
    comm = _comm_phase_time(spec, grid, topology, network)
    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=pack,
        comm_s=comm,
        unpack_s=unpack,
    )


# --------------------------------------------------------------------------- #
# Fused collective and overlapped pipeline (the plan-executor engines)
# --------------------------------------------------------------------------- #

def _send_groups(grid: RankGrid, rank: int) -> dict[int, list[tuple[int, int, int]]]:
    """Wire-peer groups of one rank's 26 directions, in ascending peer order.

    Matches the section order :func:`repro.apps.halo.neighbor_sections`
    produces (and therefore the post-stage order the plan executor runs).
    Self-directed sections are excluded — they bounce through staging without
    touching the wire.
    """
    groups: dict[int, list[tuple[int, int, int]]] = {}
    for direction, peer in grid.neighbors(rank):
        if peer != rank:
            groups.setdefault(peer, []).append(direction)
    return {peer: sorted(groups[peer]) for peer in sorted(groups)}


def _kernel_sum(spec: HaloSpec, machine: MachineSpec, directions, *, unpack: bool) -> float:
    gpu = machine.node.gpu
    return sum(
        gpu.kernel_time(
            spec.halo_bytes(d), spec.halo_block_length(d), target="device", unpack=unpack
        )
        for d in directions
    )


def model_fused_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    config: TempiConfig | None = None,
) -> ExchangeBreakdown:
    """Price the fused datatype-carrying collective under the serial engine.

    One pack kernel per section straight out of the user buffer (no
    ``MPI_Pack`` loop, handler overhead charged once per collective), then
    the analytic all-to-all-v wire, then one unpack kernel per section —
    packs, wire and unpacks still add up, which is exactly what the
    overlapped pipeline removes.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    overhead = config.handler_lookup_s + config.pointer_check_s
    pack = _kernel_sum(spec, machine, DIRECTIONS, unpack=False) + overhead
    unpack = _kernel_sum(spec, machine, DIRECTIONS, unpack=True)
    comm = _comm_phase_time(spec, grid, topology, network)
    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=pack,
        comm_s=comm,
        unpack_s=unpack,
    )


def model_overlap_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    config: TempiConfig | None = None,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> ExchangeBreakdown:
    """Price the overlapped plan-executor pipeline at paper scale.

    Per-peer pack kernels run concurrently on their own streams; each peer's
    message enters the NIC when its pack completes (transfers serialising at
    ``wire_overlap`` occupancy, the same discount the analytic all-to-all-v
    uses); by symmetry the incoming message from a peer arrives when the
    outgoing one would, and its unpack is issued at arrival on its own
    stream.  The exchange therefore costs the makespan of the slowest
    pack → wire → unpack chain, not the sum of phases.

    The reported phases partition that makespan: ``pack_s`` is the time until
    the last pack kernel completes (launches serialise on the host, kernels
    run concurrently on per-peer streams, plus the off-wire self-exchange),
    ``comm_s`` the additional time until the last arrival, ``unpack_s`` the
    tail (unpack launches and the final per-stream synchronisations).

    A single plan never revisits a NIC cursor, so this is exactly
    :func:`model_contended_exchange` at ``plans=1``.
    """
    return model_contended_exchange(
        nodes,
        ranks_per_node,
        plans=1,
        spec=spec,
        machine=machine,
        config=config,
        wire_overlap=wire_overlap,
    )


def model_contended_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    plans: int = 1,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    config: TempiConfig | None = None,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
    shared_nic: bool = True,
    nic: str = "duplex",
) -> ExchangeBreakdown:
    """Price ``plans`` concurrent overlapped exchanges sharing one rank's NIC.

    The contention-aware companion of :func:`model_overlap_exchange`: every
    message of every plan reserves its slot against the *same* injection-port
    cursor (occupied for ``wire_overlap`` of each message's wire time, the
    :class:`~repro.machine.nic.NicTimeline` port rule) and against a per-peer
    link cursor on which repeat messages to one peer serialise fully (the
    timeline's link rule).  ``shared_nic=False`` gives each plan a private
    port cursor instead — the PR-2 ``progress="per_plan"`` accounting, which
    prices concurrent plans as if the NIC were infinitely wide.

    With ``plans=1`` the schedule reduces to :func:`model_overlap_exchange`'s
    exactly.  As ``plans`` grows the shared port saturates, so the **overlap
    efficiency** — the per-plan (uncontended) makespan over the shared
    (contended) one — degrades monotonically from 1.0 toward the injection
    bound; ``bench_fig15_contention.py`` measures the same ratio functionally.

    ``nic="duplex"`` (the default, matching the runtime) additionally
    serialises the mirror arrivals on the rank's ingestion port before the
    unpacks start.  For this *balanced* exchange the mirror arrivals are, by
    symmetry, the rank's own outgoing arrivals — already spaced by at least
    the injection-port occupancy of their predecessors — so the ingestion
    replay is provably a no-op: a balanced all-to-all has no receive-side
    skew to price, and duplex accounting leaves Fig. 15 untouched (a
    property the test suite pins).  The skewed case where the receive side
    *does* bite is :func:`model_duplex_exchange`.  ``nic="inject_only"``
    skips the replay outright (the PR-3/PR-4 books).

    The returned breakdown covers the whole ``plans``-wide burst: ``pack_s``
    until the last pack is wire-ready, ``comm_s`` until the last arrival,
    ``unpack_s`` the receive tail.
    """
    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    if plans <= 0:
        raise ValueError(f"plans must be positive, got {plans}")
    if nic not in ("duplex", "inject_only"):
        raise ValueError(f"nic must be 'duplex' or 'inject_only', got {nic!r}")
    spec = spec if spec is not None else HaloSpec.paper()
    config = config if config is not None else TempiConfig()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    launch_s = gpu.kernel_launch_s
    sync_s = gpu.kernel_sync_s
    overhead = config.handler_lookup_s + config.pointer_check_s

    def kernel_device_s(direction, *, unpack: bool) -> float:
        return (
            gpu.kernel_time(
                spec.halo_bytes(direction),
                spec.halo_block_length(direction),
                target="device",
                unpack=unpack,
                include_sync=False,
            )
            - launch_s
        )

    worst = (0.0, 0.0, 0.0)
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    for rank in representatives:
        groups = _send_groups(grid, rank)
        local_dirs = [d for d, peer in grid.neighbors(rank) if peer == rank]
        host = 0.0
        # The analytic walk reserves on a real NicTimeline, so the port and
        # link rules can never drift from what the simulator charges.
        timeline = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
        arrivals: list[tuple[list, float, float]] = []
        last_pack = 0.0
        for _ in range(plans):
            if not shared_nic:
                # PR-2 per-plan accounting: a fresh cursor per plan.
                timeline = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
            host += overhead  # handler lookup + pointer check, once per plan
            for peer, directions in groups.items():
                ready = host
                for direction in directions:
                    host += launch_s
                    ready = max(ready, host) + kernel_device_s(direction, unpack=False)
                nbytes = sum(spec.halo_bytes(d) for d in directions)
                wire = network.message_time(
                    nbytes,
                    same_node=topology.same_node(rank, peer),
                    device_buffers=True,
                )
                reservation = timeline.reserve(rank, peer, ready, wire, nbytes)
                arrivals.append((directions, reservation, wire))
                last_pack = max(last_pack, ready)
            # Each plan's off-wire self-exchange runs synchronously.
            for direction in local_dirs:
                host += launch_s + kernel_device_s(direction, unpack=False) + sync_s
            for direction in local_dirs:
                host += launch_s + kernel_device_s(direction, unpack=True) + sync_s
        last_pack = max(last_pack, host)
        if shared_nic and nic == "duplex":
            # Serialise the mirror arrivals on the rank's ingestion port (the
            # NicTimeline mirror rule) in reservation order — the key order of
            # this single-source walk.  Balanced mirror arrivals are already
            # spaced by the injection-port rule, so this is an exact no-op
            # here; it guards the walk against ever drifting from the
            # simulator's two-sided accounting.
            ingest_free = 0.0
            adjusted = []
            for directions, reservation, wire in arrivals:
                landing = max(reservation.arrival, ingest_free + wire)
                ingest_free = max(reservation.start, ingest_free) + wire_overlap * wire
                adjusted.append((directions, landing, wire))
            arrivals = adjusted
        else:
            arrivals = [
                (directions, reservation.arrival, wire)
                for directions, reservation, wire in arrivals
            ]
        finishes = []
        last_arrival = host
        for directions, arrival, _ in arrivals:
            host = max(host, arrival)
            last_arrival = max(last_arrival, arrival)
            ready = host
            for direction in directions:
                host += launch_s
                ready = max(ready, host) + kernel_device_s(direction, unpack=True)
            finishes.append(ready)
        makespan = max([host] + finishes) + sync_s * len(finishes)
        if makespan > sum(worst):
            pack_s = last_pack
            comm_s = max(0.0, last_arrival - last_pack)
            worst = (pack_s, comm_s, makespan - pack_s - comm_s)

    return ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=worst[0],
        comm_s=worst[1],
        unpack_s=worst[2],
    )


@dataclass(frozen=True)
class IncastBreakdown:
    """Modelled timeline of an N-senders→1-receiver incast burst."""

    senders: int
    nbytes: int
    #: Virtual time each sender's pack completes (all senders identical).
    pack_s: float
    #: First landing at the receiver (never delayed: the port was idle).
    first_landing_s: float
    #: Last landing at the receiver — the burst's completion.
    completion_s: float
    #: Total receive-side queueing across the burst (zero under the
    #: ``inject_only`` ablation, by construction).
    ingest_stalled_s: float


def model_duplex_exchange(
    senders: int,
    nbytes: int,
    *,
    block_length: int = 512,
    machine: MachineSpec = SUMMIT,
    nic: str = "duplex",
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> IncastBreakdown:
    """Price an N-senders→1-receiver incast on the duplex NIC rules.

    The skew the balanced-exchange models cannot exhibit: every sender packs
    one ``nbytes`` message (device kernels, ``block_length`` runs) and
    injects it on its **own, idle** port, so all N wire transfers start
    together and their last bytes would land at the hot receiver at the same
    instant.  Under ``nic="duplex"`` the landings serialise on the receiver's
    ingestion port (the :class:`~repro.machine.nic.NicTimeline` mirror rule,
    evaluated on a real timeline so this walk can never drift from the
    simulator): completion grows by ``wire_overlap * wire`` per extra sender.
    Under the ``nic="inject_only"`` ablation every landing stays at its
    sender-computed arrival and completion is flat in N — the PR-3/PR-4
    books, which is exactly what ``bench_incast.py`` measures functionally.
    """
    if senders <= 0:
        raise ValueError(f"senders must be positive, got {senders}")
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    if nic not in ("duplex", "inject_only"):
        raise ValueError(f"nic must be 'duplex' or 'inject_only', got {nic!r}")
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    pack = gpu.kernel_time(nbytes, min(block_length, nbytes), target="device", unpack=False)
    wire = network.message_time(nbytes, same_node=False, device_buffers=True)
    timeline = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
    reservations = [
        timeline.reserve(source, 0, pack, wire, nbytes)
        for source in range(1, senders + 1)
    ]
    arrivals = [r.arrival for r in reservations]
    if nic == "duplex":
        landings = timeline.ingest(
            0,
            [
                IngestRecord(
                    post_time=r.start,
                    source=source,
                    seq=r.seq,
                    wire_s=wire,
                    arrival=r.arrival,
                )
                for source, r in enumerate(reservations, start=1)
            ],
        )
    else:
        landings = arrivals
    return IncastBreakdown(
        senders=senders,
        nbytes=nbytes,
        pack_s=pack,
        first_landing_s=min(landings),
        completion_s=max(landings),
        ingest_stalled_s=sum(
            landing - arrival for landing, arrival in zip(landings, arrivals)
        ),
    )


def incast_efficiency(
    senders: int,
    nbytes: int,
    *,
    block_length: int = 512,
    machine: MachineSpec = SUMMIT,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> float:
    """How much of the advertised arrival schedule survives the hot receiver.

    The ratio of the incast's completion priced send-side only
    (``nic="inject_only"``: every landing at its sender-computed arrival) to
    the same burst priced on the duplex rules (landings serialised on the
    receiver's ingestion port).  1.0 for a single sender by construction;
    decreases monotonically toward the ingestion bound as senders pile on —
    the receive-side counterpart of :func:`overlap_efficiency`.
    """
    inject_only = model_duplex_exchange(
        senders,
        nbytes,
        block_length=block_length,
        machine=machine,
        nic="inject_only",
        wire_overlap=wire_overlap,
    )
    duplex = model_duplex_exchange(
        senders,
        nbytes,
        block_length=block_length,
        machine=machine,
        nic="duplex",
        wire_overlap=wire_overlap,
    )
    return inject_only.completion_s / duplex.completion_s


@dataclass(frozen=True)
class FabricBreakdown:
    """Modelled timeline of a cross-leaf burst on the fat-tree fabric."""

    flows: int
    nbytes: int
    #: Wire seconds of one cross-leaf message on the resolved spine path.
    wire_s: float
    #: Virtual time each flow's pack completes (all flows identical).
    pack_s: float
    #: Last landing of the burst — its completion.
    completion_s: float
    #: Reservations the shared uplink bundles lifted (zero under the
    #: ``fabric="independent"`` ablation, by construction).
    fabric_stalls: int
    #: Total seconds those reservations waited on the fabric cursors.
    fabric_stalled_s: float


def model_fabric_exchange(
    flows: int,
    nbytes: int,
    *,
    spec: TopologySpec,
    block_length: int = 512,
    machine: MachineSpec = SUMMIT,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
    fabric: str = "shared",
) -> FabricBreakdown:
    """Price ``flows`` simultaneous cross-leaf sends through one leaf's uplink.

    The *structural* incast no endpoint queue can explain: one sender per
    node on leaf 0 fires one ``nbytes`` message at its counterpart node on
    leaf 1, so every flow owns its injection port, its NIC rail and its
    destination — and the only shared resource is the source leaf's uplink
    bundle (and the destination leaf's down bundle), whose bandwidth the
    spec's ``oversubscription`` divides.  Every reservation goes through a
    real :class:`~repro.machine.nic.NicTimeline` with the resolved
    :class:`~repro.machine.topology.PathSpec` bound, so this walk can never
    drift from what the simulator charges; ``fabric="independent"`` prices
    each flow on a private timeline instead (the same resolved wire, no
    shared cursors) — completion flat in ``flows``, the full-bisection
    fiction.  ``bench_topology.py`` measures the same burst functionally.
    """
    if flows <= 0:
        raise ValueError(f"flows must be positive, got {flows}")
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    if fabric not in ("shared", "independent"):
        raise ValueError(f"fabric must be 'shared' or 'independent', got {fabric!r}")
    if spec.leaf_radix <= 0:
        raise ValueError("spec must define a fat-tree (leaf_radix > 0) to have uplinks")
    if flows > spec.leaf_radix:
        raise ValueError(
            f"flows={flows} exceeds the {spec.leaf_radix} nodes under one leaf "
            "(one flow per source node keeps ports and rails private)"
        )
    nranks = 2 * spec.leaf_radix * spec.ranks_per_node
    topology = Topology(nranks, machine=machine, spec=spec)
    gpu = machine.node.gpu
    pack = gpu.kernel_time(nbytes, min(block_length, nbytes), target="device", unpack=False)
    timeline = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
    wire = 0.0
    landings = []
    for flow in range(flows):
        src = flow * spec.ranks_per_node
        dst = (spec.leaf_radix + flow) * spec.ranks_per_node
        path = topology.resolve(src, dst, device_buffers=True)
        wire = topology.message_time(src, dst, nbytes, device_buffers=True)
        if fabric == "independent":
            solo = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
            landings.append(solo.reserve(src, dst, pack, wire, nbytes, path=path).arrival)
        else:
            landings.append(timeline.reserve(src, dst, pack, wire, nbytes, path=path).arrival)
    return FabricBreakdown(
        flows=flows,
        nbytes=nbytes,
        wire_s=wire,
        pack_s=pack,
        completion_s=max(landings),
        fabric_stalls=timeline.fabric_stalls,
        fabric_stalled_s=timeline.fabric_stalled_s,
    )


def uplink_efficiency(
    flows: int,
    nbytes: int,
    *,
    spec: TopologySpec,
    block_length: int = 512,
    machine: MachineSpec = SUMMIT,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> float:
    """How much of the full-bisection schedule survives the shared uplink.

    The ratio of the cross-leaf burst's completion priced per-flow
    (``fabric="independent"``: every landing at its privately-computed
    arrival) to the same burst priced on the shared uplink bundles.  1.0 for
    a single flow by construction; decreases monotonically as flows pile
    onto the bundle or as the spec's ``oversubscription`` shrinks it — the
    fabric counterpart of :func:`incast_efficiency`, with the bottleneck in
    the switch rather than at either endpoint.
    """
    independent = model_fabric_exchange(
        flows,
        nbytes,
        spec=spec,
        block_length=block_length,
        machine=machine,
        wire_overlap=wire_overlap,
        fabric="independent",
    )
    shared = model_fabric_exchange(
        flows,
        nbytes,
        spec=spec,
        block_length=block_length,
        machine=machine,
        wire_overlap=wire_overlap,
        fabric="shared",
    )
    return independent.completion_s / shared.completion_s


def model_selected_exchange(
    nodes: int,
    ranks_per_node: int,
    *,
    model,
    plans: int = 1,
    selection: str = "contended",
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> tuple[ExchangeBreakdown, dict[str, int]]:
    """Price ``plans`` concurrent exchanges with *selected* per-message methods.

    The selection-aware companion of :func:`model_contended_exchange`: every
    wire message's packing method is chosen by the **same pricing the runtime
    selectors use** — :meth:`~repro.tempi.perf_model.PerformanceModel.choose_method`
    for ``selection="model"``, :func:`repro.tempi.selection.contended_estimate`
    at the walk's live injection-port backlog for ``selection="contended"`` —
    so the analytic decision path and the simulated interposer's cannot
    drift apart.  The message is then priced the way the executor charges
    it: pack/unpack from the measured tables of the chosen strategy, the
    wire from the topology-aware network model (same-node peers on the
    cheap path, one-shot payloads on the host path), each slot reserved on
    a real :class:`~repro.machine.nic.NicTimeline`.

    Mirroring the runtime exactly, each plan's methods are selected at
    *compile* time: the backlog is read once per plan, before any of that
    plan's messages reserve the port — which is why ``plans=1`` contended
    selection coincides with ``selection="model"`` (zero backlog at compile).

    Returns ``(breakdown, method_counts)``: the burst's phase partition (to
    last pack ready / to last arrival / the unpack tail) of the worst
    representative rank, and its wire-message counts per selected method.
    """
    from repro.tempi.selection import contended_estimate

    if nodes <= 0 or ranks_per_node <= 0:
        raise ValueError("nodes and ranks_per_node must be positive")
    if plans <= 0:
        raise ValueError(f"plans must be positive, got {plans}")
    if selection not in ("model", "contended"):
        raise ValueError(f"selection must be 'model' or 'contended', got {selection!r}")
    spec = spec if spec is not None else HaloSpec.paper()
    nranks = nodes * ranks_per_node
    grid = RankGrid.for_ranks(nranks)
    topology = Topology(nranks, ranks_per_node=ranks_per_node, machine=machine)
    network = NetworkModel(machine)

    worst: tuple[float, float, float] = (0.0, 0.0, 0.0)
    worst_counts: dict[str, int] = {}
    representatives = range(min(grid.nranks, topology.ranks_per_node))
    for rank in representatives:
        groups = _send_groups(grid, rank)
        nic = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
        counts: dict[str, int] = {}
        arrivals: list[tuple[float, float]] = []  # (arrival, unpack tail)
        last_pack = 0.0
        for _ in range(plans):
            # Compile-time selection: one backlog reading for the whole plan.
            backlog = max(0.0, nic.port_free_at(rank) - 0.0)
            for peer, directions in groups.items():
                nbytes = sum(spec.halo_bytes(d) for d in directions)
                block = spec.halo_block_length(directions[0])
                if selection == "model":
                    method = model.choose_method(nbytes, block)
                else:
                    method = contended_estimate(model, nbytes, block, backlog).best()
                counts[method.value] = counts.get(method.value, 0) + 1
                strategy = "oneshot" if method.value == "oneshot" else "device"
                ready = model.pack_time(strategy, "pack", nbytes, block)
                wire = network.message_time(
                    nbytes,
                    same_node=topology.same_node(rank, peer),
                    device_buffers=strategy != "oneshot",
                )
                reservation = nic.reserve(rank, peer, ready, wire, nbytes)
                arrivals.append(
                    (reservation.arrival, model.pack_time(strategy, "unpack", nbytes, block))
                )
                last_pack = max(last_pack, ready)
        last_arrival = max(arrival for arrival, _ in arrivals)
        makespan = max(arrival + unpack for arrival, unpack in arrivals)
        if makespan > sum(worst):
            worst = (last_pack, last_arrival - last_pack, makespan - last_arrival)
            worst_counts = counts

    breakdown = ExchangeBreakdown(
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        nranks=nranks,
        pack_s=worst[0],
        comm_s=worst[1],
        unpack_s=worst[2],
    )
    return breakdown, worst_counts


def contended_overlap_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    plans: int = 1,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Speedup of ``plans`` concurrent overlapped exchanges over the serial
    engine running them back-to-back, under honest shared-NIC accounting."""
    fused = model_fused_exchange(nodes, ranks_per_node, spec=spec, machine=machine)
    contended = model_contended_exchange(
        nodes, ranks_per_node, plans=plans, spec=spec, machine=machine
    )
    return plans * fused.total_s / contended.total_s


def overlap_efficiency(
    nodes: int,
    ranks_per_node: int,
    *,
    plans: int = 1,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """How much of the advertised overlap win survives NIC contention.

    The ratio of the ``plans``-wide burst's **time to last arrival**
    (``pack_s + comm_s``) priced per-plan (PR-2 accounting, an infinitely
    wide NIC) to the same quantity priced on the shared injection port.
    Arrival time is the quantity the NIC governs — the receive-side unpack
    tail is identical under both accountings and would wash the contention
    out of the ratio at large ``plans``.  1.0 at ``plans=1`` by
    construction; decreases monotonically toward the injection bound as the
    port saturates — the Fig. 15 degradation curve.
    """
    uncontended = model_contended_exchange(
        nodes, ranks_per_node, plans=plans, spec=spec, machine=machine, shared_nic=False
    )
    contended = model_contended_exchange(
        nodes, ranks_per_node, plans=plans, spec=spec, machine=machine, shared_nic=True
    )
    return (uncontended.pack_s + uncontended.comm_s) / (contended.pack_s + contended.comm_s)


def overlap_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Whole-exchange speedup of the overlapped pipeline over the fused serial
    collective — the quantity ``bench_fig14_overlap.py`` measures functionally."""
    fused = model_fused_exchange(nodes, ranks_per_node, spec=spec, machine=machine)
    overlapped = model_overlap_exchange(nodes, ranks_per_node, spec=spec, machine=machine)
    return fused.total_s / overlapped.total_s


def halo_exchange_speedup(
    nodes: int,
    ranks_per_node: int,
    *,
    spec: HaloSpec | None = None,
    machine: MachineSpec = SUMMIT,
) -> float:
    """Whole-exchange speedup of TEMPI over the baseline (Fig. 12b)."""
    baseline = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=False
    )
    accelerated = model_halo_exchange(
        nodes, ranks_per_node, spec=spec, machine=machine, tempi=True
    )
    return baseline.total_s / accelerated.total_s


# --------------------------------------------------------------------------- #
# ML-training workloads (allreduce / MoE dispatch / pipeline chain)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class AllreduceBreakdown:
    """Modelled timeline of one allreduce schedule (max across ranks)."""

    nranks: int
    nbytes: int
    algorithm: str
    #: Rounds of the schedule (the critical path's length in hops).
    rounds: int
    #: Total element-wise combine seconds charged at the slowest rank.
    reduce_s: float
    #: The slowest rank's clock when its vector is fully reduced.
    completion_s: float


def _allreduce_wire(src, dst, nbytes, network, topology, ranks_per_node):
    if topology is not None and topology.hierarchical:
        return topology.message_time(src, dst, nbytes, device_buffers=True)
    same_node = (src // ranks_per_node) == (dst // ranks_per_node)
    return network.message_time(nbytes, same_node=same_node, device_buffers=True)


def model_allreduce(
    nranks: int,
    count: int,
    element_size: int = 4,
    *,
    algorithm: str = "ring",
    machine: MachineSpec = SUMMIT,
    topology: Topology | None = None,
    ranks_per_node: int = 2,
) -> AllreduceBreakdown:
    """Price one allreduce schedule by walking the *same* round lists the
    plan compiler emits (:mod:`repro.tempi.plan`), so the twin can never
    disagree with the simulated path about who sends what when.

    Every round's posts are priced from the sender's current clock, every
    receive lands at post + wire (the topology's path-class wire when a
    hierarchical ``topology`` is given), and every combining receive charges
    the unpack-priced reduction kernel — the exact charge schedule
    :meth:`~repro.tempi.executor.PlanExecutor` applies, minus the
    per-call interposition overheads.  The lockstep round walk makes it
    analytic: no buffers move, rank counts are free.
    """
    from repro.tempi.plan import (
        hierarchical_allreduce_schedule,
        ring_allreduce_schedule,
        tree_allreduce_schedule,
    )

    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    if topology is not None and topology.hierarchical:
        groups: dict[tuple[int, int], list[int]] = {}
        for rank in range(nranks):
            groups.setdefault(topology.island_of(rank), []).append(rank)
        islands = [groups[key] for key in sorted(groups)]
    else:
        islands = [[rank] for rank in range(nranks)]
    everyone = list(range(nranks))
    if algorithm == "ring":
        schedules = {
            rank: ring_allreduce_schedule(rank, everyone, count, element_size, "sum")
            for rank in everyone
        }
    elif algorithm == "tree":
        schedules = {
            rank: tree_allreduce_schedule(rank, nranks, count, element_size, "sum")
            for rank in everyone
        }
    elif algorithm == "hierarchical":
        schedules = {
            rank: hierarchical_allreduce_schedule(
                rank, nranks, count, element_size, "sum", islands
            )
            for rank in everyone
        }
    else:
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")

    by_round: dict[int, list[tuple[int, object]]] = {}
    for rank, stages in schedules.items():
        for stage in stages:
            by_round.setdefault(stage.round, []).append((rank, stage))
    clocks = [0.0] * nranks
    reduce_charged = [0.0] * nranks
    for round_index in sorted(by_round):
        arrivals: dict[tuple[int, int], float] = {}
        for rank, stage in by_round[round_index]:
            if stage.dest >= 0:
                wire = _allreduce_wire(
                    rank, stage.dest, stage.send_nbytes, network, topology, ranks_per_node
                )
                arrivals[(rank, stage.dest)] = clocks[rank] + wire
        for rank, stage in by_round[round_index]:
            if stage.source < 0:
                continue
            landing = arrivals[(stage.source, rank)]
            clocks[rank] = max(clocks[rank], landing)
            if stage.combine and stage.recv_nbytes:
                charge = gpu.kernel_time(
                    stage.recv_nbytes, stage.recv_nbytes, target="device", unpack=True
                )
                clocks[rank] += charge
                reduce_charged[rank] += charge
    rounds = (max(by_round) + 1) if by_round else 0
    return AllreduceBreakdown(
        nranks=nranks,
        nbytes=count * element_size,
        algorithm=algorithm,
        rounds=rounds,
        reduce_s=max(reduce_charged),
        completion_s=max(clocks),
    )


def allreduce_hierarchy_speedup(
    nranks: int,
    count: int,
    element_size: int = 4,
    *,
    machine: MachineSpec = SUMMIT,
    topology: Topology | None = None,
    ranks_per_node: int = 2,
) -> float:
    """Completion ratio ring / hierarchical on one topology — > 1 whenever
    concentrating cross-island hops on leaders beats the flat ring's
    ``2(N-1)`` chunk trips over oversubscribed uplinks (the quantity
    ``bench_allreduce.py`` measures functionally)."""
    ring = model_allreduce(
        nranks, count, element_size, algorithm="ring",
        machine=machine, topology=topology, ranks_per_node=ranks_per_node,
    )
    hierarchical = model_allreduce(
        nranks, count, element_size, algorithm="hierarchical",
        machine=machine, topology=topology, ranks_per_node=ranks_per_node,
    )
    return ring.completion_s / hierarchical.completion_s


@dataclass(frozen=True)
class MoEBreakdown:
    """Modelled timeline of one skewed MoE dispatch round."""

    nranks: int
    hot_expert: int
    #: Tokens landing at the hot expert vs the busiest cold expert.
    hot_tokens: int
    cold_tokens: int
    #: Last landing of the round — its completion.
    completion_s: float
    #: Receive-side queueing seconds at the hot expert's ingestion port.
    hot_ingest_stalled_s: float
    #: The worst cold expert's queueing seconds (the uniform background).
    cold_ingest_stalled_s: float


def model_moe_exchange(
    counts,
    token_bytes: int,
    *,
    hot_expert: int = 0,
    machine: MachineSpec = SUMMIT,
    nic: str = "duplex",
    wire_overlap: float = DEFAULT_WIRE_OVERLAP,
) -> MoEBreakdown:
    """Price one MoE dispatch round on the duplex NIC rules.

    ``counts`` is the :func:`repro.apps.moe.moe_counts` routing matrix; each
    off-diagonal ``(sender, expert)`` cell with tokens becomes one packed
    message (one pack kernel, ``token_bytes/2`` runs — the pitched-row
    datatype's block) reserved on the sender's injection port and ingested
    at the expert, all on one real :class:`~repro.machine.nic.NicTimeline`
    so the walk can never drift from the simulator's contention rules.  The
    skew signature is ``hot_ingest_stalled_s`` pulling away from the worst
    cold expert's as the hot expert's share grows — the analytic companion
    of ``bench_moe.py``'s functional ``hot_excess_stalls``.
    """
    if nic not in ("duplex", "inject_only"):
        raise ValueError(f"nic must be 'duplex' or 'inject_only', got {nic!r}")
    matrix = [list(map(int, row)) for row in counts]
    nranks = len(matrix)
    if nranks == 0 or any(len(row) != nranks for row in matrix):
        raise ValueError("counts must be a non-empty square matrix")
    if token_bytes <= 0 or token_bytes % 2:
        raise ValueError(f"token_bytes must be positive and even, got {token_bytes}")
    hot = hot_expert % nranks
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    timeline = NicTimeline(wire_overlap=wire_overlap, ledger_limit=0)
    flows: dict[int, list[tuple[int, object, float]]] = {dst: [] for dst in range(nranks)}
    for sender in range(nranks):
        for expert in range(nranks):
            tokens = matrix[sender][expert]
            if sender == expert or tokens == 0:
                continue
            nbytes = tokens * token_bytes
            pack = gpu.kernel_time(
                nbytes, token_bytes // 2, target="device", unpack=False
            )
            wire = network.message_time(nbytes, same_node=False, device_buffers=True)
            reservation = timeline.reserve(sender, expert, pack, wire, nbytes)
            flows[expert].append((sender, reservation, wire))
    completion = 0.0
    stalled = [0.0] * nranks
    for expert in range(nranks):
        if not flows[expert]:
            continue
        arrivals = [reservation.arrival for _, reservation, _ in flows[expert]]
        if nic == "duplex":
            landings = timeline.ingest(
                expert,
                [
                    IngestRecord(
                        post_time=reservation.start,
                        source=sender,
                        seq=reservation.seq,
                        wire_s=wire,
                        arrival=reservation.arrival,
                    )
                    for sender, reservation, wire in flows[expert]
                ],
            )
        else:
            landings = arrivals
        completion = max(completion, max(landings))
        stalled[expert] = sum(
            landing - arrival for landing, arrival in zip(landings, arrivals)
        )
    received = [
        sum(matrix[sender][expert] for sender in range(nranks) if sender != expert)
        for expert in range(nranks)
    ]
    cold = [index for index in range(nranks) if index != hot]
    return MoEBreakdown(
        nranks=nranks,
        hot_expert=hot,
        hot_tokens=received[hot],
        cold_tokens=max((received[index] for index in cold), default=0),
        completion_s=completion,
        hot_ingest_stalled_s=stalled[hot],
        cold_ingest_stalled_s=max((stalled[index] for index in cold), default=0.0),
    )


@dataclass(frozen=True)
class PipelineBreakdown:
    """Modelled timeline of one pipeline-parallel forward pass."""

    nranks: int
    microbatches: int
    #: Wire seconds of one activation hop.
    hop_wire_s: float
    #: Pack seconds of one activation (the pitched-row kernel).
    pack_s: float
    #: When the first microbatch reaches the last stage (the fill ramp).
    fill_s: float
    #: When the last microbatch reaches the last stage — the pass's completion.
    completion_s: float


def model_pipeline_chain(
    nranks: int,
    microbatches: int,
    activation_bytes: int,
    *,
    machine: MachineSpec = SUMMIT,
    ranks_per_node: int = 2,
    topology: Topology | None = None,
) -> PipelineBreakdown:
    """Price a forward activation relay through an ``nranks`` chain.

    The recurrence mirrors :func:`repro.apps.pipeline.run_pipeline` exactly:
    stage ``r`` hands microbatch ``m`` to the wire once it holds the payload
    *and* has finished handing off microbatch ``m-1`` (its port serialises),
    each hop pays one pack kernel plus the wire, and each delivery pays the
    scatter-side unpack.  Completion is the last stage's receipt of the last
    microbatch: the classic ``fill + (M-1) * interval`` pipeline law, with
    the interval set by the slowest of pack and wire.
    """
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    if microbatches <= 0:
        raise ValueError(f"microbatches must be positive, got {microbatches}")
    if activation_bytes <= 0 or activation_bytes % 2:
        raise ValueError(
            f"activation_bytes must be positive and even, got {activation_bytes}"
        )
    network = NetworkModel(machine)
    gpu = machine.node.gpu
    half = activation_bytes // 2
    pack = gpu.kernel_time(activation_bytes, half, target="device", unpack=False)
    unpack = gpu.kernel_time(activation_bytes, half, target="device", unpack=True)
    ready = [[0.0] * microbatches for _ in range(nranks)]
    sent = [[0.0] * microbatches for _ in range(nranks)]
    first_hop_wire = 0.0
    for rank in range(nranks - 1):
        wire = _allreduce_wire(
            rank, rank + 1, activation_bytes, network, topology, ranks_per_node
        )
        if rank == 0:
            first_hop_wire = wire
        for microbatch in range(microbatches):
            holds = ready[rank][microbatch]
            port_free = sent[rank][microbatch - 1] if microbatch else 0.0
            sent[rank][microbatch] = max(holds, port_free) + pack
            ready[rank + 1][microbatch] = max(
                sent[rank][microbatch] + wire,
                ready[rank + 1][microbatch - 1] if microbatch else 0.0,
            ) + unpack
    last = nranks - 1
    return PipelineBreakdown(
        nranks=nranks,
        microbatches=microbatches,
        hop_wire_s=first_hop_wire,
        pack_s=pack,
        fill_s=ready[last][0] if nranks > 1 else 0.0,
        completion_s=ready[last][microbatches - 1] if nranks > 1 else 0.0,
    )
