"""Tests for benchmark harness helpers."""

import pytest

from repro.bench.harness import (
    BenchResult,
    format_speedup,
    format_table,
    format_us,
    geometric_mean,
    measure_virtual,
    trimean,
)
from repro.gpu.clock import VirtualClock


class TestTrimean:
    def test_symmetric_data(self):
        assert trimean([1, 2, 3, 4, 5]) == pytest.approx(3.0)

    def test_weights_median(self):
        # trimean = (Q1 + 2*median + Q3)/4
        values = [0, 0, 0, 100]
        assert trimean(values) == pytest.approx((0 + 2 * 0 + 25) / 4)

    def test_single_value(self):
        assert trimean([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimean([])


class TestBenchResult:
    def test_statistics(self):
        result = BenchResult("label")
        for value in (1.0, 2.0, 3.0):
            result.add(value)
        assert result.mean == pytest.approx(2.0)
        assert result.best == 1.0
        assert result.trimean == pytest.approx(2.0)

    def test_measure_virtual_records_elapsed(self):
        clock = VirtualClock()
        result = measure_virtual(clock, lambda: clock.advance(2e-6), repetitions=5)
        assert len(result.samples) == 5
        assert result.mean == pytest.approx(2e-6)

    def test_measure_virtual_invalid_repetitions(self):
        with pytest.raises(ValueError):
            measure_virtual(VirtualClock(), lambda: None, repetitions=0)


class TestFormatting:
    def test_format_speedup(self):
        assert format_speedup(1.0, 0.001) == "1,000.0x"
        assert format_speedup(1.0, 0.0) == "inf"

    def test_format_us(self):
        assert format_us(1.5e-3) == "1,500.0"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
