"""Simulated MPI substrate (the "system MPI").

The paper interposes TEMPI in front of IBM Spectrum MPI; this reproduction
has no system MPI to interpose, so this package *is* the system MPI: a
functional, thread-backed MPI subset with

* named and derived datatypes (contiguous, vector, hvector, subarray,
  indexed, struct) and a type-map flattener (:mod:`repro.mpi.typemap`);
* the Spectrum-like **baseline datatype engine** that handles non-contiguous
  GPU data with one ``cudaMemcpyAsync`` per contiguous block — the behaviour
  the paper measures speedups against (:mod:`repro.mpi.baseline`);
* point-to-point and collective communication priced by the
  :class:`~repro.machine.network.NetworkModel` and accounted on per-rank
  virtual clocks (:mod:`repro.mpi.p2p`, :mod:`repro.mpi.collectives`);
* a threaded SPMD runner, :class:`repro.mpi.world.World`, that executes the
  same function on every rank just like ``mpiexec`` would.

Naming follows mpi4py's buffer-interface convention: capitalised methods
(``Send``, ``Recv``, ``Pack`` …) operate on buffers + datatypes.
"""

from repro.mpi.communicator import Communicator
from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hindexed,
    Type_create_hvector,
    Type_create_struct,
    Type_create_subarray,
    Type_indexed,
    Type_vector,
)
from repro.mpi.datatype import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    Datatype,
    NamedDatatype,
    ORDER_C,
    ORDER_FORTRAN,
)
from repro.mpi.errors import MpiError, MpiTypeError, MpiTruncationError
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.mpi.world import ProcessContext, World

__all__ = [
    "BYTE",
    "CHAR",
    "Communicator",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "INT",
    "INT64",
    "MpiError",
    "MpiTruncationError",
    "MpiTypeError",
    "NamedDatatype",
    "ORDER_C",
    "ORDER_FORTRAN",
    "ProcessContext",
    "Request",
    "Status",
    "Type_contiguous",
    "Type_create_hindexed",
    "Type_create_hvector",
    "Type_create_struct",
    "Type_create_subarray",
    "Type_indexed",
    "Type_vector",
    "World",
]
