"""Property pins for vectorized batch booking (PR 9).

The batch kernels are *pricing kernels*, not a different model: every
Hypothesis case here drives the same messages through a batched NIC and a
scalar NIC (the defined row-major loop) and demands bit-identical books —
reservations, landings, cursors, counters and ``state_fingerprint`` — across

* flat and fat-tree (routed) worlds,
* ingesting (duplex) and inject-only batches,
* tiny ledger/pending limits (ring wraparound and advisory eviction),
* the frozen-shape fast lanes (read-only arrays reused across rounds).

The last class pins the executor surface end to end: a halo-exchange driver
in ``booking="batched"`` mode must finish with the same NIC fingerprint and
the same per-rank virtual clocks (time *and* event counts) as the scalar
driver — the priced-clock bit-identity the acceptance criteria name.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench.simthroughput import CACHED_CONFIG, EAGER_CONFIG, FABRIC_SPEC, HaloDriver
from repro.machine.nic import NicTimeline
from repro.machine.spec import SUMMIT
from repro.machine.topology import Topology
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

#: Clean virtual seconds — exactness is the point, not the values.
_SECONDS = st.sampled_from((0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.25))
_WIRE = st.sampled_from((0.0, 0.25, 0.5, 1.0, 1.75))


@st.composite
def batch_cases(draw):
    """One exchange: m distinct sources x k messages, mixed wires/limits."""
    m = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=3))
    sources = draw(
        st.lists(st.integers(0, 7), min_size=m, max_size=m, unique=True)
    )
    # Rows may repeat a destination (the serialised fallback) or not (the
    # vectorised column scan) — both must price identically to the loop.
    dests = [
        draw(st.lists(st.integers(0, 7), min_size=k, max_size=k))
        for _ in range(m)
    ]
    ready = [[draw(_SECONDS) for _ in range(k)] for _ in range(m)]
    wire = [[draw(_WIRE) for _ in range(k)] for _ in range(m)]
    nbytes = [[draw(st.integers(0, 4096)) for _ in range(k)] for _ in range(m)]
    ledger_limit = draw(st.integers(1, 4))
    pending_limit = draw(st.integers(1, 4))
    ingest = draw(st.booleans())
    return sources, dests, ready, wire, nbytes, ledger_limit, pending_limit, ingest


def _scalar_reference(nic, sources, dests, ready, wire, nbytes, ingest, paths=None):
    """The defining row-major scalar loop, returning the stacked fields."""
    start, arrival, stalled, seq = [], [], [], []
    for i, source in enumerate(sources):
        row = [[], [], [], []]
        for j, dest in enumerate(dests[i]):
            res = nic.reserve(
                source, dest, ready[i][j], wire[i][j], nbytes[i][j],
                ingest=ingest, path=paths[i][j] if paths is not None else None,
            )
            row[0].append(res.start)
            row[1].append(res.arrival)
            row[2].append(res.stalled_s)
            row[3].append(res.seq)
        start.append(row[0])
        arrival.append(row[1])
        stalled.append(row[2])
        seq.append(row[3])
    return start, arrival, stalled, seq


def _books(nic):
    """Every observable the batch kernels must keep bit-identical."""
    return (
        nic.state_fingerprint(),
        nic.reservations,
        nic.stalls,
        nic.stalled_s,
        nic.peak_pending,
        nic._pending_total,
        sorted(nic._pending),
    )


class TestReserveBatchIsTheScalarLoop:
    @settings(max_examples=60, deadline=None)
    @given(batch_cases())
    def test_flat_books_identical(self, case):
        sources, dests, ready, wire, nbytes, ledger_limit, pending_limit, ingest = case
        scalar = NicTimeline(ledger_limit=ledger_limit, pending_limit=pending_limit)
        batched = NicTimeline(ledger_limit=ledger_limit, pending_limit=pending_limit)
        reference = _scalar_reference(scalar, sources, dests, ready, wire, nbytes, ingest)
        batch = batched.reserve_batch(
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
            np.asarray(ready, dtype=np.float64),
            np.asarray(wire, dtype=np.float64),
            np.asarray(nbytes, dtype=np.int64),
            ingest=ingest,
        )
        assert batch.start.tolist() == reference[0]
        assert batch.arrival.tolist() == reference[1]
        assert batch.stalled_s.tolist() == reference[2]
        assert batch.seq.tolist() == reference[3]
        assert _books(batched) == _books(scalar)
        # The compact ring answers occupancy questions identically across
        # its overwrite-append wraparound, whole-wire and per-source.
        probes = {0.0, *(t for row in reference[1] for t in row)}
        for at in sorted(probes):
            assert batched.in_flight(at) == scalar.in_flight(at)
            for source in sources:
                assert batched.in_flight(at, source=source) == scalar.in_flight(
                    at, source=source
                )

    @settings(max_examples=25, deadline=None)
    @given(batch_cases(), st.booleans())
    def test_fat_tree_books_identical(self, case, device):
        sources, dests, ready, wire, nbytes, ledger_limit, pending_limit, ingest = case
        topology = Topology(8, machine=SUMMIT, spec=FABRIC_SPEC)
        paths = [
            [topology.resolve(s, d, device_buffers=device) for d in dests[i]]
            for i, s in enumerate(sources)
        ]
        scalar = NicTimeline(ledger_limit=ledger_limit, pending_limit=pending_limit)
        batched = NicTimeline(ledger_limit=ledger_limit, pending_limit=pending_limit)
        reference = _scalar_reference(
            scalar, sources, dests, ready, wire, nbytes, ingest, paths=paths
        )
        batch = batched.reserve_batch(
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
            np.asarray(ready, dtype=np.float64),
            np.asarray(wire, dtype=np.float64),
            np.asarray(nbytes, dtype=np.int64),
            ingest=ingest,
            paths=paths,
        )
        assert batch.start.tolist() == reference[0]
        assert batch.arrival.tolist() == reference[1]
        assert batch.stalled_s.tolist() == reference[2]
        assert batch.seq.tolist() == reference[3]
        assert _books(batched) == _books(scalar)


class TestIngestBatchIsTheScalarLoop:
    @settings(max_examples=40, deadline=None)
    @given(
        senders=st.integers(1, 3),
        receivers=st.integers(1, 3),
        wire=st.lists(_WIRE, min_size=9, max_size=9),
        ready=st.lists(_SECONDS, min_size=9, max_size=9),
    )
    def test_landings_and_books_identical(self, senders, receivers, wire, ready):
        """Every receiver commits its whole arrival batch: vec == loop."""
        sources = list(range(senders))
        dests = list(range(10, 10 + receivers))
        nics = [NicTimeline(ledger_limit=4, pending_limit=8) for _ in range(2)]
        fields = {d: [] for d in dests}
        for nic in nics:
            it = 0
            book = {d: [] for d in dests}
            for s in sources:
                for d in dests:
                    w = wire[it % len(wire)] or 0.25  # ingestion rows need wire > 0
                    res = nic.reserve(s, d, ready[it % len(ready)], w, 64, ingest=True)
                    book[d].append((res.start, s, res.seq, w, res.arrival))
                    it += 1
            fields = book
        post = np.asarray([[r[0] for r in fields[d]] for d in dests])
        src = np.asarray([[r[1] for r in fields[d]] for d in dests])
        seq = np.asarray([[r[2] for r in fields[d]] for d in dests])
        wires = np.asarray([[r[3] for r in fields[d]] for d in dests])
        arr = np.asarray([[r[4] for r in fields[d]] for d in dests])
        from repro.machine.nic import IngestRecord

        scalar_landings = [
            nics[0].ingest(
                d, [IngestRecord(*fields[d][j][:5]) for j in range(senders)]
            )
            for d in dests
        ]
        vec_landings = nics[1].ingest_batch_vec(
            np.asarray(dests, dtype=np.int64), post, src, seq, wires, arr
        )
        assert vec_landings.tolist() == scalar_landings
        assert _books(nics[1]) == _books(nics[0])
        assert nics[1].ingests == nics[0].ingests
        assert nics[1].ingest_stalls == nics[0].ingest_stalls
        assert nics[1].ingest_stalled_s == nics[0].ingest_stalled_s


class TestFrozenShapeFastLane:
    def test_frozen_arrays_price_like_fresh_ones(self):
        """Round n reusing the same read-only arrays must equal a NIC fed
        fresh writable copies — the shape memos skip validation, never math."""
        m, k = 6, 3
        sources = np.arange(m, dtype=np.int64)
        dests = np.asarray([[(i + j + 1) % m + m for j in range(k)] for i in range(m)],
                           dtype=np.int64)
        wire = np.full((m, k), 0.5, dtype=np.float64)
        for array in (sources, dests, wire):
            array.flags.writeable = False
        ingest_dests = np.asarray(sorted({int(d) for row in dests for d in row}),
                                  dtype=np.int64)
        ingest_dests.flags.writeable = False
        frozen = NicTimeline(ledger_limit=4, pending_limit=8)
        fresh = NicTimeline(ledger_limit=4, pending_limit=8)
        for round_index in range(4):
            ready = 0.25 * round_index
            a = frozen.reserve_batch(sources, dests, ready, wire, 128, ingest=True)
            b = fresh.reserve_batch(
                sources.copy(), dests.copy(), ready, wire.copy(), 128, ingest=True
            )
            assert a.start.tolist() == b.start.tolist()
            assert a.arrival.tolist() == b.arrival.tolist()
            assert a.seq.tolist() == b.seq.tolist()
            # Commit each destination's arrivals so the lanes interleave
            # reserve and ingest exactly the way the halo harness does.
            rows = {int(d): [] for d in ingest_dests.tolist()}
            for i in range(m):
                for j in range(k):
                    rows[int(dests[i, j])].append(
                        (a.start[i, j], int(sources[i]), int(a.seq[i, j]),
                         wire[i, j], a.arrival[i, j])
                    )
            post = np.asarray([[r[0] for r in rows[d]] for d in ingest_dests.tolist()])
            src = np.asarray([[r[1] for r in rows[d]] for d in ingest_dests.tolist()])
            seq = np.asarray([[r[2] for r in rows[d]] for d in ingest_dests.tolist()])
            wires = np.asarray([[r[3] for r in rows[d]] for d in ingest_dests.tolist()])
            arr = np.asarray([[r[4] for r in rows[d]] for d in ingest_dests.tolist()])
            va = frozen.ingest_batch_vec(ingest_dests, post, src, seq, wires, arr)
            vb = fresh.ingest_batch_vec(ingest_dests.copy(), post, src, seq, wires, arr)
            assert va.tolist() == vb.tolist()
            assert _books(frozen) == _books(fresh)
            if round_index:
                # The lanes actually engaged: identical read-only inputs were
                # recognised (this is the cache the equality above exercises).
                assert frozen._batch_shape is not None
                assert frozen._batch_shape[0] is sources
                assert frozen._ingest_shape is not None
                assert frozen._ingest_shape[0] is ingest_dests


@st.composite
def interleaved_ops(draw):
    """A wraparound script: reserve/ingest interleaved on a tiny ring."""
    capacity = draw(st.integers(1, 4))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("reserve", "ingest")),
                st.integers(0, 3),      # source (or ignored)
                st.integers(4, 6),      # dest
                _SECONDS,               # ready
                st.sampled_from((0.25, 0.5, 1.0)),  # wire > 0
            ),
            min_size=1,
            max_size=24,
        )
    )
    return capacity, ops


class TestLedgerRingWraparound:
    @settings(max_examples=60, deadline=None)
    @given(interleaved_ops())
    def test_in_flight_and_peak_pending_survive_overwrite_append(self, case):
        """Satellite pin: a 1-4 slot ring under interleaved reserve/ingest.

        ``in_flight`` must agree with an independent bounded-window model
        (a deque of the last ``capacity`` rows) at every arrival edge, and
        the advisory pending books must stay internally consistent —
        ``peak_pending`` is the running max of the live total, which always
        equals the sum of the per-destination buckets.
        """
        capacity, ops = case
        nic = NicTimeline(ledger_limit=capacity, pending_limit=64)
        window = deque(maxlen=capacity)
        peak = 0
        outstanding = {}  # dest -> list of IngestRecords not yet committed
        for op, source, dest, ready, wire in ops:
            if op == "reserve":
                res = nic.reserve(source, dest, ready, wire, 32, ingest=True)
                window.append((source, res.start, res.arrival))
                from repro.machine.nic import IngestRecord

                outstanding.setdefault(dest, []).append(
                    IngestRecord(res.start, source, res.seq, wire, res.arrival)
                )
            else:
                records = outstanding.pop(dest, [])
                if records:
                    nic.ingest(dest, records)
            live = sum(len(bucket) for bucket in nic._pending.values())
            assert nic._pending_total == live
            peak = max(peak, live)
            assert nic.peak_pending == peak
            probes = {0.0, ready, *(row[2] for row in window)}
            for at in sorted(probes):
                expected = sum(1 for _, s0, a0 in window if s0 <= at < a0)
                assert nic.in_flight(at) == expected
                for src0 in range(4):
                    expected_src = sum(
                        1 for s, s0, a0 in window if s == src0 and s0 <= at < a0
                    )
                    assert nic.in_flight(at, source=src0) == expected_src


class TestBatchedBookingEndToEnd:
    def test_halo_driver_digests_identical(self):
        """The executor surface: batched == scalar on NIC fingerprint and
        per-rank priced clocks (now *and* event counts), flat and fat-tree,
        cached and eager."""
        model = PerformanceModel(measure_system(SUMMIT))
        for topology in (None, FABRIC_SPEC):
            for config in (CACHED_CONFIG, EAGER_CONFIG):
                digests = []
                for booking in ("scalar", "batched"):
                    driver = HaloDriver(16, config, model,
                                        topology=topology, booking=booking)
                    for _ in range(3):
                        driver.round()
                    digests.append(driver.digest())
                assert digests[0] == digests[1], (topology, config)
