"""TEMPI: the paper's contribution.

This package implements the three contributions of the paper on top of the
simulated substrates:

1. **Canonical datatype handling** (Sec. 3): MPI derived datatypes are
   translated into a small IR (:mod:`repro.tempi.ir`, :mod:`repro.tempi.translate`),
   canonicalised by four fixed-point transformations
   (:mod:`repro.tempi.canonicalize`), lowered to a :class:`~repro.tempi.strided_block.StridedBlock`
   and bound to a parameterised pack kernel (:mod:`repro.tempi.kernels`,
   :mod:`repro.tempi.packer`).
2. **Model-driven method selection** (Sec. 4): a measurement sweep
   (:mod:`repro.tempi.measurement`) feeds an interpolating performance model
   (:mod:`repro.tempi.perf_model`) that picks between the *one-shot*,
   *device* and *staged* send methods (:mod:`repro.tempi.methods`).
3. **The interposer** (Sec. 5): :class:`~repro.tempi.interposer.TempiCommunicator`
   exports the same call surface as the system MPI
   (:class:`repro.mpi.communicator.Communicator`), overriding exactly the calls
   TEMPI accelerates and forwarding everything else.
"""

from repro.tempi.canonicalize import canonicalize, simplify
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import Tempi, TempiCommunicator
from repro.tempi.ir import DenseData, StreamData, Type
from repro.tempi.measurement import SystemMeasurement, measure_system
from repro.tempi.perf_model import PerformanceModel
from repro.tempi.strided_block import StridedBlock, to_strided_block
from repro.tempi.translate import TranslationError, translate

__all__ = [
    "DenseData",
    "PackMethod",
    "PerformanceModel",
    "StreamData",
    "StridedBlock",
    "SystemMeasurement",
    "Tempi",
    "TempiCommunicator",
    "TempiConfig",
    "TranslationError",
    "Type",
    "canonicalize",
    "measure_system",
    "simplify",
    "to_strided_block",
    "translate",
]
