"""Tests for the threaded SPMD World runner."""

import pytest

from repro.gpu.cost_model import FREE_GPU
from repro.mpi.errors import MpiError
from repro.mpi.world import World, WorldError


class TestConstruction:
    def test_contexts_have_expected_shape(self):
        world = World(4, ranks_per_node=2)
        assert len(world.contexts) == 4
        for rank, ctx in enumerate(world.contexts):
            assert ctx.rank == rank
            assert ctx.size == 4
            assert ctx.comm.Get_rank() == rank
            assert ctx.comm.Get_size() == 4

    def test_each_rank_gets_its_own_clock(self):
        world = World(3)
        world.contexts[0].clock.advance(1.0)
        assert world.contexts[1].clock.now == 0.0

    def test_gpu_assignment_follows_topology(self):
        world = World(4, ranks_per_node=2)
        assert world.contexts[0].gpu.device.ordinal == 0
        assert world.contexts[1].gpu.device.ordinal == 1
        assert world.contexts[2].gpu.device.ordinal == 0

    def test_invalid_rank_count_rejected(self):
        with pytest.raises(MpiError):
            World(0)

    def test_gpu_cost_override(self):
        world = World(1, gpu_cost=FREE_GPU)
        assert world.contexts[0].gpu.cost is FREE_GPU


class TestRun:
    def test_results_ordered_by_rank(self):
        world = World(4)
        results = world.run(lambda ctx: ctx.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_extra_arguments_passed(self):
        world = World(2)
        results = world.run(lambda ctx, base: base + ctx.rank, 100)
        assert results == [100, 101]

    def test_single_rank_runs_inline(self):
        world = World(1)
        assert world.run(lambda ctx: ctx.rank) == [0]

    def test_failure_propagates_as_world_error(self):
        world = World(2)

        def fail_on_rank_one(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(WorldError) as excinfo:
            world.run(fail_on_rank_one)
        assert 1 in excinfo.value.failures
        assert isinstance(excinfo.value.failures[1], ValueError)

    def test_failure_unblocks_matching_receive(self):
        world = World(2)

        def deadlock_unless_aborted(ctx):
            if ctx.rank == 0:
                ctx.comm.Recv(ctx.gpu.host_alloc(8), source=1, tag=0)
            else:
                raise RuntimeError("sender died")

        with pytest.raises(WorldError):
            world.run(deadlock_unless_aborted)

    def test_clock_inspection(self):
        world = World(2)
        world.run(lambda ctx: ctx.clock.advance((ctx.rank + 1) * 1e-3))
        assert world.max_clock() == pytest.approx(2e-3)
        assert world.clocks[0] == pytest.approx(1e-3)

    def test_reset_clocks(self):
        world = World(2)
        world.run(lambda ctx: ctx.clock.advance(1.0))
        world.reset_clocks()
        assert world.clocks == [0.0, 0.0]


class TestBarrierHelper:
    def test_barrier_wait_returns_global_max(self):
        world = World(3)

        def sync(ctx):
            ctx.clock.advance((ctx.rank + 1) * 1e-3)
            return world.barrier_wait(ctx.rank, ctx.clock.now)

        results = world.run(sync)
        assert all(r == pytest.approx(3e-3) for r in results)

    def test_single_rank_barrier_is_identity(self):
        world = World(1)
        assert world.barrier_wait(0, 1.25) == 1.25
