"""Simulator throughput — the event-driven fast path vs the eager path.

Not a paper figure: this benchmark measures the *simulator itself*.  It
drives the typed-collective control plane (compile + shared-NIC pricing) at
halo-exchange scale and reports simulated messages per wall-clock second,
eager (plan cache and selection memo off — the pre-fast-path behaviour)
against cached (both on), plus the NIC's peak resident ledger footprint.

``python benchmarks/bench_sim_throughput.py --smoke`` runs the CI sweep
(256/512/1024 ranks) and, with ``--baseline BENCH_sim.json``, regression-
gates the cached/eager speedup ratio against the committed numbers
(dimensionless, so robust to CI machine speed).  ``--output`` rewrites the
baseline file.  The full sweep extends to 8192 ranks and asserts both
acceptance gates: the cached/eager speedup floor at 256 ranks and the
>=3x batched-over-cached booking ratio at 4096 ranks.  ``--profile``
cProfiles the booking loop instead of sweeping (top 20 functions by
cumulative time, scalar and batched legs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import pytest

from repro.bench.simthroughput import (
    CACHED_CONFIG,
    FABRIC_SPEC,
    FULL_RANKS,
    HALO_DEGREE,
    SMOKE_RANKS,
    _cached_iters,
    check_sweep,
    compare_baseline,
    default_model,
    profile_drive,
    render_table,
    run_sweep,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def sweep_payload(results: dict, *, mode: str, topology=None) -> dict:
    """The JSON document committed as ``BENCH_sim.json``.

    ``topology`` is an optional ``(spec, results)`` pair recording the
    hierarchical sweep leg (path resolution + ledger binding per message).
    """
    payload = {
        "schema": 1,
        "benchmark": "sim-throughput",
        "mode": mode,
        "halo_degree": HALO_DEGREE,
        "results": {str(nranks): entry for nranks, entry in sorted(results.items())},
    }
    if topology is not None:
        spec, topo_results = topology
        payload["topology"] = {
            "spec": spec.to_dict(),
            "results": {str(n): entry for n, entry in sorted(topo_results.items())},
        }
    return payload


@pytest.mark.benchmark
@pytest.mark.slow
def test_sim_throughput(benchmark, summit_model, report):
    results = benchmark.pedantic(
        lambda: run_sweep((64, 128), summit_model), rounds=1, iterations=1
    )
    print("\nSimulator throughput — eager vs cached control plane (wall-clock)")
    print(render_table(results))
    check_sweep(results)
    smallest = min(results)
    report.add(
        "sim throughput (infrastructure)",
        f"event-core speedup over eager recompile at {smallest} ranks",
        "no paper value (simulator wall-clock, not simulated latency)",
        f"{results[smallest]['speedup']:.1f}x",
        matches_shape=results[smallest]["speedup"] > 1.0,
        note="plan cache + selection memo replay the same charges (bit-identity pinned)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI sweep (256/512/1024 ranks) without the 2048-rank point")
    parser.add_argument("--ranks", type=int, nargs="*", default=None,
                        help="explicit rank counts to sweep")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_sim.json to regression-gate against "
                             "(>20%% speedup-ratio drop fails)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the sweep as a BENCH_sim.json baseline here")
    parser.add_argument("--topology", default=None,
                        help="also sweep with a hierarchical topology: 'fabric' "
                             "(the built-in fat-tree preset) or a TopologySpec JSON file")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the booking loop at the largest requested rank "
                             "count (scalar and batched legs, top 20 by cumulative "
                             "time) instead of sweeping")
    args = parser.parse_args(argv)
    if args.ranks:
        rank_counts, mode = tuple(args.ranks), "custom"
    elif args.smoke:
        rank_counts, mode = SMOKE_RANKS, "smoke"
    else:
        rank_counts, mode = FULL_RANKS, "full"

    spec = None
    if args.topology is not None:
        if args.topology == "fabric":
            spec = FABRIC_SPEC
        else:
            from repro.machine.topology import TopologySpec

            spec = TopologySpec.load(Path(args.topology))
        if spec.is_flat:
            print("--topology spec is flat; nothing hierarchical to sweep", file=sys.stderr)
            return 2

    if args.profile:
        nranks = max(rank_counts)
        iters = _cached_iters(nranks)
        model = default_model()
        for booking in ("scalar", "batched"):
            print(f"profile — {booking} booking, {nranks} ranks, {iters} rounds")
            print(profile_drive(nranks, CACHED_CONFIG, model, iters=iters,
                                topology=spec, booking=booking))
        return 0

    results = run_sweep(rank_counts)
    print("Simulator throughput — eager vs cached control plane (wall-clock)")
    print(render_table(results))
    check_sweep(results)

    topo_results = None
    if spec is not None:
        topo_results = run_sweep(rank_counts, topology=spec)
        print("\nWith hierarchical topology (path resolution + ledger binding per message)")
        print(render_table(topo_results))
        check_sweep(topo_results)

    if mode == "full":
        smallest = min(results)
        speedup = results[smallest]["speedup"]
        # Measured ~5.3x on the reference host with the compact sparse-peer
        # halo layout; the gate sits a noise band below the measurement.
        if speedup is not None:
            assert speedup >= 4.0, (
                f"{smallest} ranks: fast path {speedup:.1f}x under the 4x target"
            )
            print(f"OK: {speedup:.1f}x over the eager path at {smallest} ranks (target 4x)")
        if 4096 in results:
            ratio = results[4096]["batched_vs_cached"]
            assert ratio >= 3.0, (
                f"4096 ranks: batched booking {ratio:.2f}x under the 3x target"
            )
            print(f"OK: batched booking {ratio:.2f}x over per-message pricing "
                  f"at 4096 ranks (target 3x)")

    if args.output is not None:
        topology = (spec, topo_results) if spec is not None else None
        payload = sweep_payload(results, mode=mode, topology=topology)
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote baseline {args.output}")

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures = compare_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"OK: no regression vs committed {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
