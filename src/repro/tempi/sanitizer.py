"""The runtime clock sanitizer: happens-before auditing for the NIC ledgers.

The simulator's determinism argument (``docs/ARCHITECTURE.md``) rests on
three rules — send side source-scoped, receive side receiver-committed,
cross-rank reads only behind a happens-before edge.  The third rule is the
one a test can violate silently: PR 5's ``bench_fig9`` read another rank's
posted backlog with no synchronisation and produced run-to-run jitter that
took a fuzz seed to find.  This module checks the rule *while the simulator
runs*.

With ``TempiConfig(sanitize=True)`` every interposed communicator talks to
the world's shared :class:`~repro.machine.nic.NicTimeline` through a
per-rank recording proxy (:class:`SanitizedNic`).  One
:class:`ClockSanitizer` per timeline maintains a **vector clock per rank**
over the priced commits:

* a **post** (injection reservation) ticks the source's clock and snapshots
  it under the message identity ``(post_time, source, seq)``;
* an **ingest** (receive-side commit) ticks the destination's clock and
  joins each message's sender snapshot into it — the edge a completed
  receive establishes;
* a **barrier** (and the other collective fall-throughs) joins all clocks.

Each audited operation then checks:

* **happens-before** — a cross-rank :meth:`~SanitizedNic.ingest_backlog`
  read must find every foreign pending record's snapshot ≤ the reader's
  clock, else the read races the post and :class:`SanitizerError` names the
  two events;
* **monotonicity** — a rank's injection/ingestion port cursors never move
  backwards;
* **pricing purity** — :meth:`SanitizedNic.pricing_guard` checksums the
  rank-scoped ledger fingerprint (and the per-rank mutation count) around
  every selector pricing call: the dynamic twin of simlint's SIM002.

``repro sanitize`` replays the figure benchmarks under this machinery; the
class-level aggregate counters are what it reports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, NamedTuple, Optional, Sequence

from repro.machine.nic import IngestRecord, NicReservation, NicTimeline
from repro.machine.topology import PathSpec

#: Most post snapshots retained (FIFO eviction).  An evicted snapshot makes
#: the happens-before audit *conservative* (the read is skipped), never
#: wrong; the cap keeps a long sanitized run's footprint bounded, mirroring
#: the advisory pending ledger's own ``pending_limit``.
SNAPSHOT_LIMIT = 65536


class SanitizerEvent(NamedTuple):
    """One audited commit or read, with enough identity to name in an error."""

    kind: str
    rank: int
    index: int
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}#{self.index} by rank {self.rank} ({self.detail})"


class SanitizerError(RuntimeError):
    """A determinism violation, carrying the two racing/conflicting events."""

    def __init__(self, message: str, first: SanitizerEvent, second: SanitizerEvent) -> None:
        super().__init__(f"{message}: {first} vs {second}")
        #: The two events the violation is between, in (earlier, later) order.
        self.events = (first, second)


def _vc_leq(left: dict[int, int], right: dict[int, int]) -> bool:
    """Vector-clock ordering: every component of ``left`` is visible in ``right``."""
    return all(right.get(rank, 0) >= tick for rank, tick in left.items())


class ClockSanitizer:
    """Vector clocks and invariant checks for one shared :class:`NicTimeline`."""

    _aggregate_lock = threading.Lock()
    #: Process-wide audit totals (what ``repro sanitize`` reports).
    _aggregate: dict[str, int] = {
        "posts": 0,
        "ingests": 0,
        "joins": 0,
        "barriers": 0,
        "hb_checks": 0,
        "purity_checks": 0,
        "shared_commits": 0,
        "violations": 0,
    }

    def __init__(self, timeline: NicTimeline) -> None:
        self.timeline = timeline
        self._lock = threading.RLock()
        self._vc: dict[int, dict[int, int]] = {}
        self._events: dict[int, int] = {}
        self._mutations: dict[int, int] = {}
        self._snapshots: "OrderedDict[tuple[float, int, int], tuple[SanitizerEvent, dict[int, int]]]" = OrderedDict()
        self._last_post: dict[int, SanitizerEvent] = {}
        self._last_commit: dict[int, SanitizerEvent] = {}
        self._inject_cursor: dict[int, float] = {}
        self._ingest_cursor: dict[int, float] = {}
        #: Last commit per shared topology cursor (NIC rails, leaf-uplink
        #: bundles): the committing event, the committer's clock snapshot and
        #: the cursor value — what the cross-rank audit compares against.
        self._shared_last: dict[tuple, tuple[SanitizerEvent, dict[int, int], float]] = {}
        self._barrier_waiting: set[int] = set()

    # ------------------------------------------------------------- accounting
    @classmethod
    def _count(cls, key: str, amount: int = 1) -> None:
        with cls._aggregate_lock:
            cls._aggregate[key] += amount

    @classmethod
    def aggregate_counters(cls) -> dict[str, int]:
        """A snapshot of the process-wide audit totals."""
        with cls._aggregate_lock:
            return dict(cls._aggregate)

    @classmethod
    def reset_aggregate(cls) -> None:
        """Zero the process-wide audit totals (between bench replays)."""
        with cls._aggregate_lock:
            for key in cls._aggregate:
                cls._aggregate[key] = 0

    def _clock(self, rank: int) -> dict[int, int]:
        return self._vc.setdefault(rank, {})

    def _tick(self, rank: int) -> int:
        clock = self._clock(rank)
        clock[rank] = clock.get(rank, 0) + 1
        index = self._events.get(rank, 0) + 1
        self._events[rank] = index
        return index

    def mutation_count(self, rank: int) -> int:
        """Mutating timeline calls rank ``rank`` has issued through its proxy."""
        with self._lock:
            return self._mutations.get(rank, 0)

    # ----------------------------------------------------------------- events
    def on_reserve(
        self,
        source: int,
        dest: int,
        reservation: NicReservation,
        *,
        ingest: bool,
        path: Optional[PathSpec] = None,
    ) -> None:
        """Record one injection reservation; check port monotonicity.

        A ``path`` that binds shared topology cursors (a NIC rail, leaf
        uplink bundles) additionally runs the shared-cursor audit: the
        cursor must not move backwards, and a commit racing another rank's
        commit on the same cursor (no happens-before edge) is the
        interleaving-dependence the topology determinism caveat forbids.
        """
        with self._lock:
            self._mutations[source] = self._mutations.get(source, 0) + 1
            index = self._tick(source)
            event = SanitizerEvent(
                "post",
                source,
                index,
                f"dest {dest}, post_time={reservation.start:.9g}, seq={reservation.seq}",
            )
            self._count("posts")
            port_after = (
                reservation.start + self.timeline.wire_overlap * reservation.wire_s
            )
            previous = self._inject_cursor.get(source)
            if previous is not None and port_after < previous:
                self._violation(
                    f"injection-port cursor of rank {source} moved backwards "
                    f"({previous:.9g} -> {port_after:.9g})",
                    self._last_post.get(source, event),
                    event,
                )
            self._inject_cursor[source] = port_after
            self._last_post[source] = event
            if path is not None:
                cursors: list[tuple[str, object, float]] = []
                if path.rail is not None:
                    cursors.append(
                        ("rail", path.rail, self.timeline.rail_free_at(path.rail))
                    )
                for share_key, _bandwidth in path.shared:
                    cursors.append(
                        ("fabric", share_key, self.timeline.shared_free_at(share_key))
                    )
                for label, key, cursor in cursors:
                    self._shared_commit(source, event, label, key, cursor)
            if ingest and reservation.wire_s > 0:
                key = (reservation.start, source, reservation.seq)
                self._snapshots[key] = (event, dict(self._clock(source)))
                while len(self._snapshots) > SNAPSHOT_LIMIT:
                    self._snapshots.popitem(last=False)

    def _shared_commit(
        self, rank: int, event: SanitizerEvent, label: str, key: object, cursor: float
    ) -> None:
        """Audit one commit to a shared topology cursor (lock held).

        Shared cursors (NIC rails, uplink bundles) mix sources by design;
        they stay deterministic only when cross-rank commits are ordered by
        happens-before (barrier-phased drivers).  An unordered pair makes
        the booked times interleaving-dependent, so it is a violation even
        though each individual commit is monotone.
        """
        self._count("shared_commits")
        previous = self._shared_last.get((label, key))
        if previous is not None:
            prev_event, prev_clock, prev_cursor = previous
            if cursor < prev_cursor:
                self._violation(
                    f"shared {label} cursor {key!r} moved backwards "
                    f"({prev_cursor:.9g} -> {cursor:.9g})",
                    prev_event,
                    event,
                )
            if prev_event.rank != rank and not _vc_leq(prev_clock, self._clock(rank)):
                self._violation(
                    f"rank {rank} committed to shared {label} cursor {key!r} "
                    f"without a happens-before edge to rank {prev_event.rank}'s "
                    "commit",
                    prev_event,
                    event,
                )
        self._shared_last[(label, key)] = (event, dict(self._clock(rank)), cursor)

    def on_next_seq(self, source: int) -> None:
        """Record a sequence-number allocation (a batched-send envelope)."""
        with self._lock:
            self._mutations[source] = self._mutations.get(source, 0) + 1
            self._tick(source)

    def on_ingest(self, dest: int, records: Sequence[IngestRecord]) -> None:
        """Record one ingestion commit: join sender snapshots, check cursor."""
        with self._lock:
            self._mutations[dest] = self._mutations.get(dest, 0) + 1
            index = self._tick(dest)
            event = SanitizerEvent(
                "ingest-commit", dest, index, f"{len(records)} record(s)"
            )
            self._count("ingests")
            clock = self._clock(dest)
            for record in records:
                snapshot = self._snapshots.pop(record.key, None)
                if snapshot is None:
                    continue
                _, sender_clock = snapshot
                for rank, tick in sender_clock.items():
                    if clock.get(rank, 0) < tick:
                        clock[rank] = tick
                self._count("joins")
            cursor = self.timeline.ingest_free_at(dest)
            previous = self._ingest_cursor.get(dest)
            if previous is not None and cursor < previous:
                self._violation(
                    f"ingestion-port cursor of rank {dest} moved backwards "
                    f"({previous:.9g} -> {cursor:.9g})",
                    self._last_commit.get(dest, event),
                    event,
                )
            self._ingest_cursor[dest] = cursor
            self._last_commit[dest] = event
            # Ingestion rails mix node-mates the same way injection rails do;
            # audit each distinct rail the batch landed on.
            for rail in sorted({r.rail for r in records if r.rail is not None}):
                self._shared_commit(
                    dest, event, "ingest-rail", rail,
                    self.timeline.ingest_rail_free_at(rail),
                )

    def on_backlog_read(self, reader: int, dest: int, now: float) -> None:
        """Audit a cross-rank backlog read for happens-before coverage."""
        with self._lock:
            self._count("hb_checks")
            reader_clock = self._clock(reader)
            read_event = SanitizerEvent(
                "backlog-read",
                reader,
                self._events.get(reader, 0),
                f"dest {dest}, now={now:.9g}",
            )
            for record in self.timeline.pending_records(dest):
                if record.source == reader or record.post_time > now:
                    # A rank always sees its own posts; records beyond the
                    # reader's clock are filtered out of the priced signal.
                    continue
                snapshot = self._snapshots.get(record.key)
                if snapshot is None:
                    # Evicted, or posted outside the sanitized proxies
                    # (e.g. a bench driving the raw timeline): conservative.
                    continue
                post_event, post_clock = snapshot
                if not _vc_leq(post_clock, reader_clock):
                    self._violation(
                        f"rank {reader} read rank {dest}'s ingest backlog "
                        f"without a happens-before edge to the racing post",
                        post_event,
                        read_event,
                    )

    def barrier_enter(self, rank: int, size: int) -> None:
        """One rank arriving at a collective join point (``Barrier`` & co).

        The call precedes the real barrier on every rank, so by the time the
        *last* arriver merges the clocks no rank has been released — every
        rank leaves the barrier with the fully joined clock in place.
        """
        with self._lock:
            self._barrier_waiting.add(rank)
            if len(self._barrier_waiting) < size:
                return
            merged: dict[int, int] = {}
            for clock in self._vc.values():
                for owner, tick in clock.items():
                    if merged.get(owner, 0) < tick:
                        merged[owner] = tick
            for participant in list(self._vc) + list(self._barrier_waiting):
                self._vc[participant] = dict(merged)
            self._barrier_waiting.clear()
            self._count("barriers")

    def note_purity_check(self) -> None:
        """Count one selector pricing call audited by a guard."""
        self._count("purity_checks")

    def _violation(
        self, message: str, first: SanitizerEvent, second: SanitizerEvent
    ) -> None:
        self._count("violations")
        raise SanitizerError(message, first, second)

    def reset(self) -> None:
        """Forget all recorded history (follows ``NicTimeline.reset``)."""
        with self._lock:
            self._vc.clear()
            self._events.clear()
            self._mutations.clear()
            self._snapshots.clear()
            self._last_post.clear()
            self._last_commit.clear()
            self._inject_cursor.clear()
            self._ingest_cursor.clear()
            self._shared_last.clear()
            self._barrier_waiting.clear()


class SanitizedNic:
    """Rank ``rank``'s recording proxy over the shared timeline.

    Forwards the full :class:`NicTimeline` surface; the mutating calls and
    the cross-rank backlog read additionally notify the attached
    :class:`ClockSanitizer`.  The proxy is what the progress engine (and
    through it the selector) holds as ``nic`` under
    ``TempiConfig(sanitize=True)``.
    """

    def __init__(self, timeline: NicTimeline, recorder: ClockSanitizer, rank: int) -> None:
        self._timeline = timeline
        self._recorder = recorder
        self.rank = rank

    # ------------------------------------------------------- audited mutators
    def reserve(
        self,
        source: int,
        dest: int,
        ready: float,
        wire_s: float,
        nbytes: int = 0,
        *,
        ingest: bool = True,
        path: Optional[PathSpec] = None,
    ) -> NicReservation:
        """Reserve on the timeline and record the post event."""
        reservation = self._timeline.reserve(
            source, dest, ready, wire_s, nbytes, ingest=ingest, path=path
        )
        self._recorder.on_reserve(source, dest, reservation, ingest=ingest, path=path)
        return reservation

    def next_seq(self, source: int) -> int:
        """Allocate a sequence number and record the mutation."""
        seq = self._timeline.next_seq(source)
        self._recorder.on_next_seq(source)
        return seq

    def ingest(self, dest: int, records: Sequence[IngestRecord]) -> list[float]:
        """Commit an ingestion batch and join the senders' clocks."""
        landings = self._timeline.ingest(dest, records)
        self._recorder.on_ingest(dest, records)
        return landings

    def reset(self) -> None:
        """Reset the timeline and the recorded history together."""
        self._timeline.reset()
        self._recorder.reset()

    # --------------------------------------------------------- audited reads
    def ingest_backlog(self, dest: int, now: float = 0.0) -> float:
        """The advisory backlog read, audited for a happens-before edge."""
        self._recorder.on_backlog_read(self.rank, dest, now)
        return self._timeline.ingest_backlog(dest, now)

    # ------------------------------------------------------------- the guard
    @contextmanager
    def pricing_guard(self) -> Iterator[None]:
        """Prove a selector pricing call was a pure read (dynamic SIM002).

        Compares the rank-scoped ledger fingerprint and this rank's mutation
        count around the guarded block; both are immune to concurrent
        activity by *other* ranks (their commits only touch their own keys),
        so any change is attributable to the pricing call itself.
        """
        recorder = self._recorder
        recorder.note_purity_check()
        fingerprint = self._timeline.state_fingerprint(self.rank)
        mutations = recorder.mutation_count(self.rank)
        yield
        if (
            self._timeline.state_fingerprint(self.rank) != fingerprint
            or recorder.mutation_count(self.rank) != mutations
        ):
            event = SanitizerEvent(
                "pricing", self.rank, recorder.mutation_count(self.rank),
                "selector pricing call",
            )
            raise SanitizerError(
                f"selector pricing on rank {self.rank} mutated priced ledger "
                "state (pricing must be a pure read)",
                event,
                SanitizerEvent(
                    "mutation", self.rank, recorder.mutation_count(self.rank),
                    "ledger fingerprint changed inside the pricing guard",
                ),
            )

    # ------------------------------------------------------------ barrier hook
    def barrier_enter(self, size: int) -> None:
        """Join all ranks' clocks at a collective fall-through."""
        self._recorder.barrier_enter(self.rank, size)

    # ------------------------------------------------------------ passthrough
    def __getattr__(self, name: str):
        # Pure reads (port_free_at, link_free_at, ingest_preview, ledgers,
        # wire_overlap, counters, ...) forward to the timeline unchanged.
        return getattr(self._timeline, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizedNic rank={self.rank} over {self._timeline!r}>"


_ATTACH_LOCK = threading.Lock()


def attach_sanitizer(timeline: NicTimeline) -> ClockSanitizer:
    """The one :class:`ClockSanitizer` of a timeline (attached idempotently).

    Also wraps ``timeline.reset`` so a direct reset on the *raw* timeline
    (``World.reset_clocks`` does this between benchmark repetitions) clears
    the recorded history with it — stale cursors would otherwise report
    phantom monotonicity violations.
    """
    with _ATTACH_LOCK:
        recorder: Optional[ClockSanitizer] = getattr(
            timeline, "_clock_sanitizer", None
        )
        if recorder is not None:
            return recorder
        recorder = ClockSanitizer(timeline)
        timeline._clock_sanitizer = recorder  # type: ignore[attr-defined]
        original_reset = timeline.reset

        def reset_with_history() -> None:
            original_reset()
            recorder.reset()

        timeline.reset = reset_with_history  # type: ignore[method-assign]
        return recorder


def sanitized_view(timeline: NicTimeline, rank: int) -> SanitizedNic:
    """Rank ``rank``'s recording proxy (attaching the sanitizer on first use)."""
    return SanitizedNic(timeline, attach_sanitizer(timeline), rank)
