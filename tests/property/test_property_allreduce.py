"""Property-based test wall: every allreduce schedule equals the naive reference.

The interposer compiles ``Allreduce`` to ring, tree, or hierarchical
:class:`~repro.tempi.plan.MessagePlan` schedules; the system path
(:func:`repro.mpi.collectives.allreduce`) folds all contributions in
ascending-rank order.  Whatever the schedule, the reduced bytes every rank
holds must be identical — byte-for-byte — for any rank count, count, dtype
and reduce op.  The strategies draw only exactly-representable values
(integer-valued floats, wrapping ints), so combine *order* cannot excuse a
byte difference.

The second wall pins the priced clocks: an allreduce's clocks must be
bit-identical whatever the plan-cache, batch-booking, or NIC-ledger
configuration, because collective schedules compile fresh per call and post
one wire message per round.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.datatype import CHAR, DOUBLE, FLOAT, INT, INT64
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.plan import REDUCE_OPS

_DTYPES = (CHAR, INT, INT64, FLOAT, DOUBLE)

#: Interposed schedules under test; the naive system fold is the reference.
_ALGORITHMS = ("ring", "tree", "hierarchical")


def _fill_values(dtype, count: int, seed: int) -> np.ndarray:
    """Exactly-representable contributions: small integers in every dtype.

    Sums and products of a handful of values in ``[-4, 4]`` stay inside the
    exactly-representable integer range of float32 and wrap deterministically
    in the fixed-width ints, so every combine order produces the same bytes.
    """
    rng = np.random.default_rng(seed)
    values = rng.integers(-4, 5, count)
    with np.errstate(over="ignore"):
        return values.astype(dtype.numpy_dtype)


def _run_allreduce(summit_model, nranks, count, datatype, op, seed, *,
                   algorithm=None, config=None):
    """One allreduce world; returns per-rank (clock, reduced bytes)."""

    def program(ctx):
        if algorithm is None:
            comm = ctx.comm
        else:
            cfg = config if config is not None else TempiConfig(allreduce_algorithm=algorithm)
            comm = interpose(ctx, cfg, model=summit_model)
        nbytes = count * datatype.size
        send = ctx.gpu.malloc(nbytes)
        recv = ctx.gpu.malloc(nbytes)
        values = _fill_values(datatype, count, seed + ctx.rank)
        send.data[:nbytes] = values.view(np.uint8)
        comm.Allreduce((send, count, datatype), (recv, count, datatype), op)
        return ctx.clock.now, recv.data[:nbytes].tobytes()

    return World(nranks, ranks_per_node=2).run(program)


@st.composite
def allreduce_cases(draw):
    """A world size, payload shape, dtype, reduce op and fill seed."""
    nranks = draw(st.integers(min_value=1, max_value=5))
    count = draw(st.integers(min_value=1, max_value=96))
    datatype = draw(st.sampled_from(_DTYPES))
    op = draw(st.sampled_from(REDUCE_OPS))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, count, datatype, op, seed


@settings(max_examples=25, deadline=None)
@given(allreduce_cases())
def test_all_schedules_equal_naive_reference(summit_model, case):
    """Ring, tree and hierarchical reduce to the reference bytes exactly."""
    nranks, count, datatype, op, seed = case
    reference = _run_allreduce(summit_model, nranks, count, datatype, op, seed)
    expected = [row[1] for row in reference]
    for algorithm in _ALGORITHMS:
        rows = _run_allreduce(
            summit_model, nranks, count, datatype, op, seed, algorithm=algorithm
        )
        for rank, (want, (_, got)) in enumerate(zip(expected, rows)):
            assert got == want, (
                f"{algorithm}: rank {rank} reduced bytes diverge from the naive "
                f"reference for {nranks} ranks, count={count}, "
                f"dtype={datatype.numpy_dtype}, op={op}"
            )


@st.composite
def clock_cases(draw):
    """A world size, payload, schedule, and one engine-config perturbation."""
    nranks = draw(st.integers(min_value=2, max_value=5))
    count = draw(st.integers(min_value=1, max_value=4096))
    algorithm = draw(st.sampled_from(_ALGORITHMS))
    perturbation = draw(
        st.sampled_from(("plan_cache", "batch_booking", "nic"))
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, count, algorithm, perturbation, seed


@settings(max_examples=25, deadline=None)
@given(clock_cases())
def test_clocks_invariant_to_engine_config(summit_model, case):
    """Priced clocks are bit-identical across cache/booking/NIC configs.

    Allreduce schedules compile fresh on every call (never consult the plan
    cache) and post exactly one wire message per round (never batch-booked),
    so no engine configuration may move a single clock bit.
    """
    nranks, count, algorithm, perturbation, seed = case
    baseline = _run_allreduce(
        summit_model, nranks, count, FLOAT, "sum", seed, algorithm=algorithm
    )
    perturbed_config = {
        "plan_cache": TempiConfig(allreduce_algorithm=algorithm, plan_cache=False),
        "batch_booking": TempiConfig(allreduce_algorithm=algorithm, batch_booking=False),
        "nic": TempiConfig(allreduce_algorithm=algorithm, nic="inject_only"),
    }[perturbation]
    perturbed = _run_allreduce(
        summit_model, nranks, count, FLOAT, "sum", seed,
        algorithm=algorithm, config=perturbed_config,
    )
    assert [row[0] for row in perturbed] == [row[0] for row in baseline], (
        f"{algorithm}: clocks moved under {perturbation} perturbation "
        f"for {nranks} ranks, count={count}"
    )
    assert [row[1] for row in perturbed] == [row[1] for row in baseline], (
        f"{algorithm}: reduced bytes moved under {perturbation} perturbation"
    )
