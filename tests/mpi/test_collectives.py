"""Tests for collective operations."""

import numpy as np
import pytest

from repro.mpi.errors import MpiArgumentError
from repro.mpi.world import World


@pytest.fixture
def world4():
    return World(4, ranks_per_node=2)


class TestBarrier:
    def test_barrier_aligns_clocks(self, world4):
        def program(ctx):
            ctx.clock.advance((ctx.rank + 1) * 1e-3)
            ctx.comm.Barrier()
            return ctx.clock.now

        times = world4.run(program)
        slowest = 4e-3
        assert all(t >= slowest for t in times)
        assert max(times) - min(times) < 1e-9

    def test_barrier_single_rank(self):
        world = World(1)
        world.run(lambda ctx: ctx.comm.Barrier())


class TestBcast:
    def test_root_data_reaches_everyone(self, world4):
        def program(ctx):
            data = np.zeros(32, dtype=np.uint8)
            if ctx.rank == 2:
                data[:] = 77
            ctx.comm.Bcast(data, root=2)
            return int(data[0])

        assert world4.run(program) == [77, 77, 77, 77]

    def test_invalid_root_rejected(self):
        world = World(2)

        def program(ctx):
            with pytest.raises(MpiArgumentError):
                ctx.comm.Bcast(np.zeros(4, dtype=np.uint8), root=9)
            return True

        assert all(world.run(program))


class TestObjectCollectives:
    def test_allgather_object(self, world4):
        def program(ctx):
            return ctx.comm.Allgather_object({"rank": ctx.rank})

        results = world4.run(program)
        expected = [{"rank": r} for r in range(4)]
        assert all(result == expected for result in results)

    def test_allreduce_scalar_sum(self, world4):
        def program(ctx):
            return ctx.comm.Allreduce_scalar(float(ctx.rank + 1), op="sum")

        assert world4.run(program) == [10.0, 10.0, 10.0, 10.0]

    def test_allreduce_scalar_max_and_min(self, world4):
        def program(ctx):
            return (
                ctx.comm.Allreduce_scalar(float(ctx.rank), op="max"),
                ctx.comm.Allreduce_scalar(float(ctx.rank), op="min"),
            )

        results = world4.run(program)
        assert all(result == (3.0, 0.0) for result in results)

    def test_allreduce_invalid_op(self):
        world = World(1)

        def program(ctx):
            with pytest.raises(MpiArgumentError):
                ctx.comm.Allreduce_scalar(1.0, op="prod")
            return True

        assert all(world.run(program))


class TestAlltoallv:
    def test_pairwise_exchange_correct(self, world4):
        def program(ctx):
            n = ctx.size
            chunk = 16
            send = np.zeros(n * chunk, dtype=np.uint8)
            recv = np.zeros(n * chunk, dtype=np.uint8)
            for peer in range(n):
                send[peer * chunk : (peer + 1) * chunk] = 10 * ctx.rank + peer
            counts = [chunk] * n
            displs = [peer * chunk for peer in range(n)]
            ctx.comm.Alltoallv(send, counts, displs, recv, counts, displs)
            for peer in range(n):
                expected = 10 * peer + ctx.rank
                assert (recv[peer * chunk : (peer + 1) * chunk] == expected).all()
            return True

        assert all(world4.run(program))

    def test_zero_counts_skip_peers(self, world4):
        def program(ctx):
            n = ctx.size
            send = np.full(8, ctx.rank, dtype=np.uint8)
            recv = np.zeros(8, dtype=np.uint8)
            partner = ctx.rank ^ 1
            sendcounts = [8 if peer == partner else 0 for peer in range(n)]
            recvcounts = [8 if peer == partner else 0 for peer in range(n)]
            displs = [0] * n
            ctx.comm.Alltoallv(send, sendcounts, displs, recv, recvcounts, displs)
            assert (recv == partner).all()
            return True

        assert all(world4.run(program))

    def test_argument_validation(self):
        world = World(2)

        def program(ctx):
            send = np.zeros(4, dtype=np.uint8)
            recv = np.zeros(4, dtype=np.uint8)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Alltoallv(send, [4], [0], recv, [4, 0], [0, 0])
            return True

        assert all(world.run(program))

    def test_clock_charged_for_exchange(self, world4):
        def program(ctx):
            n = ctx.size
            chunk = 1 << 14
            send = np.zeros(n * chunk, dtype=np.uint8)
            recv = np.zeros(n * chunk, dtype=np.uint8)
            counts = [chunk] * n
            displs = [peer * chunk for peer in range(n)]
            before = ctx.clock.now
            ctx.comm.Alltoallv(send, counts, displs, recv, counts, displs)
            return ctx.clock.now - before

        elapsed = world4.run(program)
        assert all(t > 0 for t in elapsed)


class TestNeighborAlltoallv:
    def test_ring_exchange(self):
        world = World(4, ranks_per_node=1)

        def program(ctx):
            left = (ctx.rank - 1) % ctx.size
            right = (ctx.rank + 1) % ctx.size
            send = np.zeros(16, dtype=np.uint8)
            send[:8] = ctx.rank + 1      # to the left neighbour
            send[8:] = ctx.rank + 101    # to the right neighbour
            recv = np.zeros(16, dtype=np.uint8)
            ctx.comm.Neighbor_alltoallv(
                [left, right],
                send,
                [8, 8],
                [0, 8],
                recv,
                [8, 8],
                [0, 8],
            )
            assert (recv[:8] == left + 101).all()   # left neighbour sent to its right
            assert (recv[8:] == right + 1).all()    # right neighbour sent to its left
            return True

        assert all(world.run(program))

    def test_duplicate_neighbours_rejected(self):
        world = World(2)

        def program(ctx):
            with pytest.raises(MpiArgumentError):
                ctx.comm.Neighbor_alltoallv(
                    [0, 0],
                    np.zeros(2, np.uint8),
                    [1, 1],
                    [0, 1],
                    np.zeros(2, np.uint8),
                    [1, 1],
                    [0, 1],
                )
            return True

        assert all(world.run(program))

    def test_length_mismatch_rejected(self):
        world = World(2)

        def program(ctx):
            with pytest.raises(MpiArgumentError):
                ctx.comm.Neighbor_alltoallv(
                    [0],
                    np.zeros(2, np.uint8),
                    [1, 1],
                    [0, 1],
                    np.zeros(2, np.uint8),
                    [1, 1],
                    [0, 1],
                )
            return True

        assert all(world.run(program))


class TestTypedAlltoallv:
    """The datatype-carrying signature (system-MPI baseline path)."""

    @staticmethod
    def _vector(comm):
        from repro.mpi.constructors import Type_vector
        from repro.mpi.datatype import BYTE

        return comm.Type_commit(Type_vector(4, 2, 8, BYTE))

    def test_strided_sections_round_trip(self, world4):
        from repro.mpi import typemap

        def program(ctx):
            comm = ctx.comm
            t = self._vector(comm)
            send = ctx.gpu.malloc(t.extent * comm.size)
            recv = ctx.gpu.malloc(t.extent * comm.size)
            for peer in range(comm.size):
                send.data[peer * t.extent : (peer + 1) * t.extent] = ctx.rank * 10 + peer
            counts = [1] * comm.size
            displs = [peer * t.extent for peer in range(comm.size)]
            comm.Alltoallv(
                send, counts, displs, recv, counts, displs, sendtypes=t, recvtypes=t
            )
            offsets, lengths = typemap.offsets_and_lengths(t)
            for peer in range(comm.size):
                base = peer * t.extent
                for offset, length in zip(offsets, lengths):
                    section = recv.data[base + int(offset) : base + int(offset) + int(length)]
                    assert (section == peer * 10 + ctx.rank).all()
            return True

        assert all(world4.run(program))

    def test_gap_bytes_untouched(self, world4):
        def program(ctx):
            comm = ctx.comm
            t = self._vector(comm)
            send = ctx.gpu.malloc(t.extent * comm.size)
            send.data[:] = 9
            recv = ctx.gpu.malloc(t.extent * comm.size)
            counts = [1] * comm.size
            displs = [peer * t.extent for peer in range(comm.size)]
            comm.Alltoallv(
                send, counts, displs, recv, counts, displs, sendtypes=t, recvtypes=t
            )
            # Only the typemap bytes of each element may be written.
            for peer in range(comm.size):
                base = peer * t.extent
                for block in range(4):
                    gap = recv.data[base + block * 8 + 2 : base + min((block + 1) * 8, t.extent)]
                    assert not gap.any()
            return True

        assert all(world4.run(program))

    def test_zero_counts_skip_peers(self, world4):
        def program(ctx):
            comm = ctx.comm
            t = self._vector(comm)
            send = ctx.gpu.malloc(t.extent * comm.size)
            send.data[:] = ctx.rank + 1
            recv = ctx.gpu.malloc(t.extent * comm.size)
            counts = [1 if peer == ctx.rank else 0 for peer in range(comm.size)]
            displs = [peer * t.extent for peer in range(comm.size)]
            comm.Alltoallv(
                send, counts, displs, recv, counts, displs, sendtypes=t, recvtypes=t
            )
            return True

        assert all(world4.run(program))

    def test_half_specified_types_rejected(self):
        def program(ctx):
            t = self._vector(ctx.comm)
            buf = ctx.gpu.malloc(t.extent)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Alltoallv(buf, [1], [0], buf, [1], [0], sendtypes=t)
            return True

        assert all(World(1).run(program))

    def test_uncommitted_type_rejected(self):
        from repro.mpi.constructors import Type_vector
        from repro.mpi.datatype import BYTE
        from repro.mpi.errors import MpiError

        def program(ctx):
            t = Type_vector(4, 2, 8, BYTE)  # not committed
            buf = ctx.gpu.malloc(t.extent)
            with pytest.raises(MpiError):
                ctx.comm.Alltoallv(buf, [1], [0], buf, [1], [0], sendtypes=t, recvtypes=t)
            return True

        assert all(World(1).run(program))

    def test_section_escaping_buffer_rejected(self):
        def program(ctx):
            t = self._vector(ctx.comm)
            small = ctx.gpu.malloc(t.extent - 1)
            ok = ctx.gpu.malloc(t.extent)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Alltoallv(small, [1], [0], ok, [1], [0], sendtypes=t, recvtypes=t)
            return True

        assert all(World(1).run(program))


class TestTypedNeighborAlltoallv:
    def test_duplicate_neighbours_allowed_with_types(self):
        """Two ranks, each sending two strided sections to the same peer."""
        from repro.mpi import typemap

        def program(ctx):
            comm = ctx.comm
            t = TestTypedAlltoallv._vector(comm)
            peer = 1 - ctx.rank
            send = ctx.gpu.malloc(2 * t.extent)
            send.data[: t.extent] = ctx.rank * 10 + 1
            send.data[t.extent :] = ctx.rank * 10 + 2
            recv = ctx.gpu.malloc(2 * t.extent)
            comm.Neighbor_alltoallv(
                [peer, peer],
                send,
                [1, 1],
                [0, t.extent],
                recv,
                [1, 1],
                [0, t.extent],
                sendtypes=t,
                recvtypes=t,
            )
            offsets, lengths = typemap.offsets_and_lengths(t)
            for section, expected in ((0, peer * 10 + 1), (t.extent, peer * 10 + 2)):
                for offset, length in zip(offsets, lengths):
                    begin = section + int(offset)
                    assert (recv.data[begin : begin + int(length)] == expected).all()
            return True

        assert all(World(2, ranks_per_node=2).run(program))

    def test_self_neighbour_round_trips(self):
        """Fully periodic single rank: every neighbour is the rank itself."""

        def program(ctx):
            comm = ctx.comm
            t = TestTypedAlltoallv._vector(comm)
            send = ctx.gpu.malloc(t.extent)
            send.data[:] = 42
            recv = ctx.gpu.malloc(t.extent)
            comm.Neighbor_alltoallv(
                [0], send, [1], [0], recv, [1], [0], sendtypes=t, recvtypes=t
            )
            assert (recv.data[:2] == 42).all()
            return True

        assert all(World(1).run(program))

    def test_typed_length_mismatch_rejected(self):
        def program(ctx):
            t = TestTypedAlltoallv._vector(ctx.comm)
            buf = ctx.gpu.malloc(t.extent)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Neighbor_alltoallv(
                    [0], buf, [1, 1], [0, 0], buf, [1], [0], sendtypes=t, recvtypes=t
                )
            return True

        assert all(World(1).run(program))


class TestAllgatherv:
    """The byte all-gather-v (system-MPI baseline path)."""

    def test_every_rank_sees_every_contribution(self, world4):
        def program(ctx):
            comm = ctx.comm
            n = 4
            send = np.full(n, ctx.rank + 1, dtype=np.uint8)
            recv = np.zeros(n * comm.size, dtype=np.uint8)
            comm.Allgather(send, n, recv)
            expected = np.repeat(np.arange(1, comm.size + 1, dtype=np.uint8), n)
            assert np.array_equal(recv, expected)
            return True

        assert all(world4.run(program))

    def test_ragged_contributions_with_displacements(self, world4):
        def program(ctx):
            comm = ctx.comm
            counts = [1, 3, 0, 2]
            displs = [0, 2, 6, 7]
            send = np.full(max(1, counts[ctx.rank]), ctx.rank + 1, dtype=np.uint8)
            recv = np.zeros(16, dtype=np.uint8)
            comm.Allgatherv(send, counts[ctx.rank], recv, counts, displs)
            for peer, (count, displ) in enumerate(zip(counts, displs)):
                assert (recv[displ : displ + count] == peer + 1).all()
            return True

        assert all(world4.run(program))

    def test_nonblocking_defers_receives(self, world4):
        def program(ctx):
            comm = ctx.comm
            n = 2
            send = np.full(n, ctx.rank + 10, dtype=np.uint8)
            recv = np.zeros(n * comm.size, dtype=np.uint8)
            request = comm.Iallgather(send, n, recv)
            request.Wait()
            expected = np.repeat(np.arange(10, 10 + comm.size, dtype=np.uint8), n)
            assert np.array_equal(recv, expected)
            return True

        assert all(world4.run(program))

    def test_mismatched_self_count_rejected(self):
        def program(ctx):
            buf = np.zeros(8, dtype=np.uint8)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Allgatherv(buf, 2, buf, [3], [0])
            return True

        assert all(World(1).run(program))

    def test_escaping_self_section_raises_before_posting(self):
        """An invalid call fails on the offending rank without leaving peers
        a half-completed collective (nothing may be posted first)."""

        def program(ctx):
            comm = ctx.comm
            send = np.zeros(4, dtype=np.uint8)
            recv = np.zeros(4, dtype=np.uint8)  # too small for displ 4
            with pytest.raises(MpiArgumentError):
                comm.Allgatherv(send, 4, recv, [4, 4], [4, 0])
            # The failed call posted nothing: no stray message is pending.
            assert comm.Probe() is None
            return True

        def peer(ctx):
            return True

        world = World(2, ranks_per_node=2)
        results = world.run(lambda ctx: program(ctx) if ctx.rank == 0 else peer(ctx))
        assert all(results)

    def test_clock_charged_for_gather(self, world4):
        def program(ctx):
            comm = ctx.comm
            n = 4096
            send = np.zeros(n, dtype=np.uint8)
            recv = np.zeros(n * comm.size, dtype=np.uint8)
            before = ctx.clock.now
            comm.Allgather(send, n, recv)
            return ctx.clock.now - before

        assert all(elapsed > 0 for elapsed in world4.run(program))


class TestTypedAllgatherv:
    """The datatype-carrying all-gather-v (system-MPI baseline path)."""

    def test_strided_contributions_round_trip(self, world4):
        def program(ctx):
            comm = ctx.comm
            t = TestTypedAlltoallv._vector(comm)
            send = ctx.gpu.malloc(t.extent)
            send.data[:] = ctx.rank + 1
            recv = ctx.gpu.malloc(t.extent * comm.size)
            recv.data[:] = 0
            comm.Allgather(send, 1, recv, sendtype=t, recvtype=t)
            for peer in range(comm.size):
                base = peer * t.extent
                for blk in range(4):
                    section = recv.data[base + blk * 8 : base + blk * 8 + 2]
                    assert (section == peer + 1).all()
            return True

        assert all(world4.run(program))

    def test_half_specified_types_rejected(self):
        def program(ctx):
            t = TestTypedAlltoallv._vector(ctx.comm)
            buf = ctx.gpu.malloc(t.extent)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Allgather(buf, 1, buf, sendtype=t)
            return True

        assert all(World(1).run(program))

    def test_inconsistent_self_section_rejected(self):
        def program(ctx):
            t = TestTypedAlltoallv._vector(ctx.comm)
            buf = ctx.gpu.malloc(4 * t.extent)
            with pytest.raises(MpiArgumentError):
                ctx.comm.Allgatherv(buf, 1, buf, [2], [0], sendtype=t, recvtypes=t)
            return True

        assert all(World(1).run(program))
