"""Cluster topology: placement, NVLink islands, NIC rails and the switch fabric.

The halo-exchange evaluation (Fig. 12) varies *nodes × ranks-per-node*; the
cost of a message depends on the path between its endpoints.  This module
models that path explicitly:

* :class:`TopologySpec` — a declarative cluster shape: ranks per node, the
  NVLink *island* size inside a node, how many shared NIC *rails* each node
  exposes (and the deterministic policy assigning ranks to rails), and a
  two-level fat-tree (``leaf_radix`` nodes per leaf switch, a configurable
  uplink ``oversubscription``).  The default spec is *flat*: no islands, a
  dedicated per-rank NIC, a single switch — exactly the pre-topology model.
* :class:`Topology` — places ``nranks`` ranks onto that shape using the block
  placement ``jsrun`` would produce, and resolves every ``(src, dst)`` pair
  to a :class:`PathSpec` of typed :class:`Hop` entries with per-hop latency
  and bandwidth, plus the NIC-rail and shared-uplink ledger keys the virtual
  NIC (``machine/nic.py``) binds when the message is posted.

Determinism contract: every placement-derived quantity (island, rail, leaf)
is a pure function of the rank's *placement*, never of wall-clock state or
iteration order, so two worlds with the same shape assign the same rail to
the same (node, local rank) slot whatever the global rank numbering.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.machine.spec import SUMMIT, InterconnectSpec, MachineSpec

#: Ordered path classes, nearest first.  ``resolve`` labels every path with
#: one of these; ``representative_pairs`` returns one example pair per class.
PATH_KINDS = ("self", "island", "node", "leaf", "spine")

#: Rail-selection policies: ``"island"`` keys the rail on the rank's NVLink
#: island (islands map onto their nearest NIC), ``"local"`` round-robins the
#: node-local rank over the rails.  Both are pure functions of placement.
RAIL_POLICIES = ("island", "local")

#: Key of one shared fabric ledger: ``("up", leaf)`` is a leaf switch's
#: uplink bundle toward the spine, ``("down", leaf)`` the bundle back down.
ShareKey = tuple[str, int]

#: Key of one NIC rail: ``(node, rail_index)``.
RailKey = tuple[int, int]


class TopologyError(ValueError):
    """An invalid topology shape or an unresolvable path."""


@dataclass(frozen=True)
class RankPlacement:
    """Where one rank lives."""

    rank: int
    node: int
    local_rank: int
    gpu: int
    #: NVLink island inside the node (``0`` when the node is one island).
    island: int = 0


@dataclass(frozen=True)
class TopologySpec:
    """Declarative shape of a cluster's communication topology.

    The default constructor gives the *flat* shape (``is_flat`` true): whole
    nodes are one island, every rank has a dedicated NIC (``rails_per_node
    == 0``) and all nodes hang off one switch (``leaf_radix == 0``).  The
    flat shape prices and books exactly like the pre-topology model.
    """

    ranks_per_node: int = 1
    #: Ranks per NVLink island inside a node; ``0`` means the whole node is
    #: one island (no intra-node hierarchy).
    island_size: int = 0
    #: Shared NIC rails per node; ``0`` means a dedicated per-rank NIC (no
    #: rail contention, the flat model).
    rails_per_node: int = 0
    #: How ranks map onto rails; one of :data:`RAIL_POLICIES`.
    rail_policy: str = "island"
    #: Nodes per leaf switch of the two-level fat-tree; ``0`` means a single
    #: flat switch (no uplinks, no cross-leaf paths).
    leaf_radix: int = 0
    #: Leaf-to-spine oversubscription factor: the uplink bundle carries
    #: ``1/oversubscription`` of the aggregate NIC bandwidth below the leaf.
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        """Validate the shape."""
        if self.ranks_per_node <= 0:
            raise TopologyError(f"ranks_per_node must be positive, got {self.ranks_per_node}")
        if self.island_size < 0:
            raise TopologyError(f"island_size must be non-negative, got {self.island_size}")
        if self.rails_per_node < 0:
            raise TopologyError(f"rails_per_node must be non-negative, got {self.rails_per_node}")
        if self.rail_policy not in RAIL_POLICIES:
            raise TopologyError(
                f"rail_policy must be one of {RAIL_POLICIES}, got {self.rail_policy!r}"
            )
        if self.leaf_radix < 0:
            raise TopologyError(f"leaf_radix must be non-negative, got {self.leaf_radix}")
        if not self.oversubscription > 0:
            raise TopologyError(
                f"oversubscription must be positive, got {self.oversubscription}"
            )

    @property
    def is_flat(self) -> bool:
        """True when the shape degenerates to the pre-topology flat model."""
        return self.island_size == 0 and self.rails_per_node == 0 and self.leaf_radix == 0

    @staticmethod
    def flat(ranks_per_node: int = 1) -> "TopologySpec":
        """The flat single-rail shape (books bit-identical to no topology)."""
        return TopologySpec(ranks_per_node=ranks_per_node)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping of every field."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict[str, object]) -> "TopologySpec":
        """Build a spec from a mapping (inverse of :meth:`to_dict`)."""
        fields = {
            "ranks_per_node", "island_size", "rails_per_node",
            "rail_policy", "leaf_radix", "oversubscription",
        }
        unknown = sorted(set(data) - fields)
        if unknown:
            raise TopologyError(f"unknown topology spec keys: {', '.join(unknown)}")
        return TopologySpec(**data)  # type: ignore[arg-type]

    @staticmethod
    def load(path: Union[str, Path]) -> "TopologySpec":
        """Load a spec from a JSON file."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise TopologyError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise TopologyError(f"{path}: topology spec must be a JSON object")
        return TopologySpec.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec as JSON (inverse of :meth:`load`)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


@dataclass(frozen=True)
class Hop:
    """One typed link crossing of a path.

    ``shared`` names the fabric ledger this hop contends on (a leaf uplink
    bundle); unshared hops (NVLink, shared memory, a NIC rail's own wire)
    bind per-rank or per-rail cursors instead and leave it ``None``.
    """

    kind: str
    latency_s: float
    bandwidth_Bps: float
    shared: Optional[ShareKey] = None


@dataclass(frozen=True)
class PathSpec:
    """The resolved route between two placed ranks.

    ``hops`` carries the typed per-hop latency/bandwidth breakdown;
    ``rail``/``ingest_rail`` the NIC-rail cursors bound at the send and
    receive ends (``None`` for dedicated NICs), and ``shared`` the
    ``(ledger key, bundle bandwidth)`` pairs of every shared fabric hop the
    reservation must also serialise on.
    """

    src: int
    dst: int
    kind: str
    hops: tuple[Hop, ...]
    rail: Optional[RailKey] = None
    ingest_rail: Optional[RailKey] = None
    shared: tuple[tuple[ShareKey, float], ...] = field(default=())

    @property
    def latency_s(self) -> float:
        """Sum of per-hop latencies (the path's latency floor)."""
        total = 0.0
        for hop in self.hops:
            total += hop.latency_s
        return total

    @property
    def bandwidth_Bps(self) -> float:
        """Bottleneck bandwidth over the hops (infinite for a self path)."""
        return min((hop.bandwidth_Bps for hop in self.hops), default=math.inf)


class Topology:
    """Block placement of ``nranks`` ranks plus path resolution on a shape.

    The two-argument form (``Topology(nranks, ranks_per_node)``) keeps the
    historical flat behaviour; passing ``spec=`` overlays the hierarchical
    shape (islands, rails, fat-tree) on the same block placement.
    """

    def __init__(
        self,
        nranks: int,
        ranks_per_node: int = 1,
        machine: MachineSpec = SUMMIT,
        *,
        spec: Optional[TopologySpec] = None,
    ) -> None:
        if spec is not None:
            ranks_per_node = spec.ranks_per_node
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        if ranks_per_node <= 0:
            raise ValueError(f"ranks_per_node must be positive, got {ranks_per_node}")
        if ranks_per_node > machine.node.gpus:
            raise ValueError(
                f"ranks_per_node={ranks_per_node} exceeds the {machine.node.gpus} GPUs per node"
            )
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node
        self.machine = machine
        self.spec = spec if spec is not None else TopologySpec(ranks_per_node=ranks_per_node)
        self.nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        if self.nnodes > machine.max_nodes:
            raise ValueError(
                f"{self.nnodes} nodes requested but {machine.name} has only {machine.max_nodes}"
            )
        island = self.spec.island_size
        self._island_span = island if island > 0 else ranks_per_node
        self._paths: dict[tuple[int, int, bool], PathSpec] = {}

    # ------------------------------------------------------------- placement
    @property
    def hierarchical(self) -> bool:
        """True when the shape adds structure beyond the flat model."""
        return not self.spec.is_flat

    def placement(self, rank: int) -> RankPlacement:
        """Node/local-rank/GPU/island of one rank (block placement)."""
        self._check_rank(rank)
        node = rank // self.ranks_per_node
        local = rank % self.ranks_per_node
        return RankPlacement(
            rank=rank, node=node, local_rank=local, gpu=local,
            island=local // self._island_span,
        )

    def node_of(self, rank: int) -> int:
        """Node index of a rank."""
        self._check_rank(rank)
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when two ranks share a node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks placed on ``node``."""
        if node < 0 or node >= self.nnodes:
            raise ValueError(f"node {node} outside [0, {self.nnodes})")
        first = node * self.ranks_per_node
        return [r for r in range(first, min(first + self.ranks_per_node, self.nranks))]

    # ----------------------------------------------------- islands and rails
    def island_of(self, rank: int) -> tuple[int, int]:
        """The ``(node, island)`` pair a rank's GPU sits in."""
        place = self.placement(rank)
        return (place.node, place.island)

    def same_island(self, a: int, b: int) -> bool:
        """True when two ranks share an NVLink island."""
        return self.island_of(a) == self.island_of(b)

    def rail_of(self, rank: int) -> Optional[int]:
        """Rail index a rank injects on (``None`` for a dedicated NIC).

        A pure function of the rank's placement — two worlds with the same
        shape give the same rail to the same (node, local rank) slot —
        following :data:`RAIL_POLICIES`.
        """
        rails = self.spec.rails_per_node
        if rails == 0:
            return None
        place = self.placement(rank)
        if self.spec.rail_policy == "island":
            return place.island % rails
        return place.local_rank % rails

    def rail_key(self, rank: int) -> Optional[RailKey]:
        """The ``(node, rail)`` NIC-rail cursor key of a rank, if shared."""
        rail = self.rail_of(rank)
        if rail is None:
            return None
        return (self.node_of(rank), rail)

    # ------------------------------------------------------------ the fabric
    def leaf_of(self, node: int) -> int:
        """Leaf-switch index of a node (``0`` under the single flat switch)."""
        radix = self.spec.leaf_radix
        if radix == 0:
            return 0
        return node // radix

    def same_leaf(self, a: int, b: int) -> bool:
        """True when two ranks' nodes hang off the same leaf switch."""
        return self.leaf_of(self.node_of(a)) == self.leaf_of(self.node_of(b))

    @property
    def nleaves(self) -> int:
        """How many leaf switches the placed nodes occupy."""
        radix = self.spec.leaf_radix
        if radix == 0:
            return 1
        return (self.nnodes + radix - 1) // radix

    def uplink_bandwidth_Bps(self, link: InterconnectSpec) -> float:
        """Bandwidth of one leaf's uplink bundle for traffic on ``link``.

        Full bisection would match the aggregate NIC bandwidth below the
        leaf (``leaf_radix`` nodes × rails × per-rail bandwidth);
        ``oversubscription`` divides it.
        """
        rails = self.spec.rails_per_node
        if rails == 0:
            rails = self.ranks_per_node
        aggregate = link.bandwidth_Bps * self.spec.leaf_radix * rails
        return aggregate / self.spec.oversubscription

    # ------------------------------------------------------- path resolution
    def resolve(self, src: int, dst: int, *, device_buffers: bool = False) -> PathSpec:
        """Resolve ``(src, dst)`` to its typed, memoised :class:`PathSpec`."""
        key = (src, dst, device_buffers)
        path = self._paths.get(key)
        if path is None:
            path = self._resolve(src, dst, device_buffers)
            self._paths[key] = path
        return path

    def _resolve(self, src: int, dst: int, device_buffers: bool) -> PathSpec:
        """Build the path (uncached); ``resolve`` is the public seam."""
        self._check_rank(src)
        self._check_rank(dst)
        node = self.machine.node
        if src == dst:
            # A self path prices like the nearest intra-node hop (matching
            # the historical same-node pricing) but binds nothing.
            hop = self._local_hop(device_buffers)
            return PathSpec(src=src, dst=dst, kind="self", hops=(hop,))
        if self.same_node(src, dst):
            if self.same_island(src, dst) or not device_buffers:
                # Host buffers ride shared memory regardless of islands.
                kind = "island" if self.same_island(src, dst) else "node"
                return PathSpec(src=src, dst=dst, kind=kind,
                                hops=(self._local_hop(device_buffers),))
            # Device buffers crossing islands bounce through the node-local
            # bridge: an NVLink hop plus the shared-memory interconnect.
            bridge = node.intra_cpu
            hops = (
                self._hop("nvlink", node.gpu_gpu),
                Hop(kind="bridge",
                    latency_s=bridge.latency_s + bridge.per_message_overhead_s,
                    bandwidth_Bps=bridge.bandwidth_Bps),
            )
            return PathSpec(src=src, dst=dst, kind="node", hops=hops)
        link = self.machine.inter_gpu if device_buffers else self.machine.inter_cpu
        rail = self.rail_key(src)
        ingest_rail = self.rail_key(dst)
        rail_hop = self._hop("rail", link)
        if self.same_leaf(src, dst):
            return PathSpec(src=src, dst=dst, kind="leaf", hops=(rail_hop,),
                            rail=rail, ingest_rail=ingest_rail)
        # Cross-leaf: one extra switch traversal of latency, and the message
        # serialises on both leaves' shared uplink bundles (source's up
        # bundle, destination's down bundle).
        uplink_bw = self.uplink_bandwidth_Bps(link)
        src_leaf = self.leaf_of(self.node_of(src))
        dst_leaf = self.leaf_of(self.node_of(dst))
        up = Hop(kind="uplink", latency_s=link.latency_s, bandwidth_Bps=uplink_bw,
                 shared=("up", src_leaf))
        down = Hop(kind="uplink", latency_s=0.0, bandwidth_Bps=uplink_bw,
                   shared=("down", dst_leaf))
        return PathSpec(
            src=src, dst=dst, kind="spine", hops=(rail_hop, up, down),
            rail=rail, ingest_rail=ingest_rail,
            shared=(
                (("up", src_leaf), uplink_bw),
                (("down", dst_leaf), uplink_bw),
            ),
        )

    def _local_hop(self, device_buffers: bool) -> Hop:
        """The intra-island hop (NVLink for device buffers, else shm)."""
        node = self.machine.node
        if device_buffers:
            return self._hop("nvlink", node.gpu_gpu)
        return self._hop("shm", node.intra_cpu)

    @staticmethod
    def _hop(kind: str, link: InterconnectSpec) -> Hop:
        """One unshared hop carrying a link's full postal parameters."""
        return Hop(kind=kind,
                   latency_s=link.latency_s + link.per_message_overhead_s,
                   bandwidth_Bps=link.bandwidth_Bps)

    # ---------------------------------------------------------- wire pricing
    def message_time(
        self, src: int, dst: int, nbytes: int, *, device_buffers: bool = False
    ) -> float:
        """Wire time of one message along the resolved path.

        The same postal shape as ``NetworkModel.message_cost`` — path
        latency floor, bottleneck bandwidth term, the eager→rendezvous
        switch — evaluated per path class, so for a flat spec this equals
        the flat model bit-for-bit while hierarchical specs price
        intra-island, cross-island, intra-leaf and cross-leaf peers
        differently.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        path = self.resolve(src, dst, device_buffers=device_buffers)
        rendezvous = (
            self.machine.rendezvous_overhead_s
            if nbytes > self.machine.eager_threshold
            else 0.0
        )
        return path.latency_s + nbytes / path.bandwidth_Bps + rendezvous

    # ------------------------------------------------------------ inspection
    def representative_pairs(self) -> dict[str, tuple[int, int]]:
        """One example ``(src, dst)`` pair per resolvable path class.

        Classes the placed world cannot express (a single-node world has no
        ``leaf`` pair; a single-leaf fabric no ``spine`` pair) are absent.
        """
        pairs: dict[str, tuple[int, int]] = {"self": (0, 0)}
        for dst in range(1, self.nranks):
            kind = self.resolve(0, dst, device_buffers=True).kind
            if kind not in pairs:
                pairs[kind] = (0, dst)
        return {kind: pairs[kind] for kind in PATH_KINDS if kind in pairs}

    def _check_rank(self, rank: int) -> None:
        """Reject out-of-range ranks."""
        if rank < 0 or rank >= self.nranks:
            raise ValueError(f"rank {rank} outside [0, {self.nranks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "flat" if self.spec.is_flat else "hierarchical"
        return (
            f"<Topology {self.nranks} ranks on {self.nnodes} nodes "
            f"({self.ranks_per_node}/node, {shape}) of {self.machine.name}>"
        )
