"""Tests for simulated device/host memory."""

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.errors import CudaBufferError, CudaInvalidValue
from repro.gpu.memory import Buffer, DeviceBuffer, HostBuffer, MemoryKind, MemoryPool


class TestBufferBasics:
    def test_device_buffer_is_device(self):
        buf = DeviceBuffer(64, Device(0))
        assert buf.is_device
        assert buf.kind is MemoryKind.DEVICE

    def test_host_buffer_kinds(self):
        for kind in (MemoryKind.HOST_PAGEABLE, MemoryKind.HOST_PINNED, MemoryKind.HOST_MAPPED):
            buf = HostBuffer(16, kind)
            assert not buf.is_device
            assert buf.kind is kind

    def test_host_buffer_rejects_device_kind(self):
        with pytest.raises(CudaInvalidValue):
            HostBuffer(16, MemoryKind.DEVICE)

    def test_negative_size_rejected(self):
        with pytest.raises(CudaInvalidValue):
            HostBuffer(-1)

    def test_zero_size_allowed(self):
        assert HostBuffer(0).nbytes == 0

    def test_data_initialised_to_zero(self):
        buf = HostBuffer(128)
        assert not buf.data.any()

    def test_len_matches_nbytes(self):
        assert len(HostBuffer(37)) == 37

    def test_host_kind_is_host(self):
        assert MemoryKind.HOST_PINNED.is_host
        assert not MemoryKind.DEVICE.is_host


class TestFillAndCopy:
    def test_fill(self):
        buf = HostBuffer(32)
        buf.fill(7)
        assert (buf.data == 7).all()

    def test_copy_from_host_roundtrip(self):
        buf = HostBuffer(40)
        values = np.arange(10, dtype=np.float32)
        buf.copy_from_host(values)
        assert np.array_equal(buf.as_ndarray("float32"), values)

    def test_copy_from_host_too_large_rejected(self):
        buf = HostBuffer(8)
        with pytest.raises(CudaBufferError):
            buf.copy_from_host(np.zeros(16, dtype=np.uint8))

    def test_to_host_is_a_copy(self):
        buf = HostBuffer(8)
        copy = buf.to_host()
        copy[:] = 99
        assert not buf.data.any()

    def test_as_ndarray_with_shape(self):
        buf = HostBuffer(24)
        arr = buf.as_ndarray("float64", shape=(3,))
        assert arr.shape == (3,)


class TestViews:
    def test_view_shares_memory(self):
        buf = HostBuffer(64)
        view = buf.view(16, 16)
        view.fill(5)
        assert (buf.data[16:32] == 5).all()
        assert not buf.data[:16].any()

    def test_view_of_view_offsets_accumulate(self):
        buf = HostBuffer(64)
        inner = buf.view(8).view(8)
        assert inner.offset == 16
        inner.fill(1)
        assert (buf.data[16:] == 1).all()

    def test_view_out_of_range_rejected(self):
        buf = HostBuffer(16)
        with pytest.raises(CudaBufferError):
            buf.view(8, 16)

    def test_view_is_flagged(self):
        buf = HostBuffer(16)
        assert not buf.is_view
        assert buf.view(4).is_view

    def test_view_inherits_kind_and_device(self):
        device = Device(3)
        buf = DeviceBuffer(16, device)
        view = buf.view(4)
        assert view.is_device
        assert view.device is device


class TestFreedBuffers:
    def _freed(self) -> Buffer:
        buf = HostBuffer(16)
        buf._freed = True
        return buf

    def test_data_after_free_raises(self):
        with pytest.raises(CudaBufferError):
            _ = self._freed().data

    def test_view_after_free_raises(self):
        with pytest.raises(CudaBufferError):
            self._freed().view(0, 4)

    def test_view_of_freed_parent_is_freed(self):
        buf = HostBuffer(16)
        view = buf.view(4)
        buf._freed = True
        assert view.freed


class TestMemoryPool:
    def test_miss_then_hit(self):
        pool = MemoryPool()
        assert pool.acquire(100, MemoryKind.DEVICE) is None
        buf = HostBuffer(128, MemoryKind.HOST_PINNED)
        pool.release(buf)
        again = pool.acquire(100, MemoryKind.HOST_PINNED)
        assert again is buf
        assert pool.hits == 1
        assert pool.misses == 1

    def test_bucketing_rounds_up(self):
        assert MemoryPool._bucket(1) == 1
        assert MemoryPool._bucket(3) == 4
        assert MemoryPool._bucket(1024) == 1024
        assert MemoryPool._bucket(1025) == 2048

    def test_kind_is_part_of_key(self):
        pool = MemoryPool()
        pool.release(HostBuffer(64, MemoryKind.HOST_PINNED))
        assert pool.acquire(64, MemoryKind.HOST_MAPPED) is None

    def test_cannot_pool_freed_buffer(self):
        pool = MemoryPool()
        buf = HostBuffer(16)
        buf._freed = True
        with pytest.raises(CudaBufferError):
            pool.release(buf)

    def test_clear_empties_pool(self):
        pool = MemoryPool()
        pool.release(HostBuffer(16))
        pool.clear()
        assert len(pool) == 0
        assert pool.acquire(16, MemoryKind.HOST_PAGEABLE) is None
