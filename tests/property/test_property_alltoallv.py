"""Property-based test: interposed alltoallv equals the system path byte-for-byte.

The interposed datatype-carrying ``Alltoallv`` replaces the baseline per-block
packing with one kernel per destination and model-chosen staging, but the
bytes that land in every receive buffer must be exactly those the system MPI
produces — for any strided vector datatype, any rank count, and any
(consistent) per-pair section counts, including empty pairs, contiguous
degenerate vectors (which fall back) and self-sections.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.interposer import interpose


@st.composite
def exchange_cases(draw):
    """A world size, a vector datatype shape, and a consistent count matrix."""
    nranks = draw(st.integers(min_value=1, max_value=4))
    nblocks = draw(st.integers(min_value=1, max_value=6))
    block = draw(st.integers(min_value=1, max_value=8))
    gap = draw(st.integers(min_value=0, max_value=8))  # gap 0: contiguous fallback
    counts = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=2), min_size=nranks, max_size=nranks),
            min_size=nranks,
            max_size=nranks,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return nranks, nblocks, block, block + gap, counts, seed


def _run_world(use_tempi, summit_model, nranks, nblocks, block, pitch, counts, seed):
    def program(ctx):
        comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
        datatype = comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))
        extent = datatype.extent
        sendcounts = counts[ctx.rank]
        recvcounts = [counts[peer][ctx.rank] for peer in range(ctx.size)]
        senddispls = list(np.cumsum([0] + [c * extent for c in sendcounts[:-1]]).astype(int))
        recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
        send = ctx.gpu.malloc(max(1, sum(sendcounts) * extent))
        recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
        rng = np.random.default_rng(seed + ctx.rank)
        send.data[:] = rng.integers(0, 255, send.nbytes, dtype=np.uint8)
        comm.Alltoallv(
            send,
            sendcounts,
            senddispls,
            recv,
            recvcounts,
            recvdispls,
            sendtypes=datatype,
            recvtypes=datatype,
        )
        return recv.data.copy()

    return World(nranks, ranks_per_node=2).run(program)


@settings(max_examples=25, deadline=None)
@given(exchange_cases())
def test_packed_alltoallv_equals_baseline(summit_model, case):
    nranks, nblocks, block, pitch, counts, seed = case
    baseline = _run_world(False, summit_model, nranks, nblocks, block, pitch, counts, seed)
    accelerated = _run_world(True, summit_model, nranks, nblocks, block, pitch, counts, seed)
    for rank, (expected, actual) in enumerate(zip(baseline, accelerated)):
        assert np.array_equal(expected, actual), (
            f"rank {rank} receive buffers diverge for {nranks} ranks, "
            f"vector({nblocks},{block},{pitch})"
        )
