"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.gpu.clock import VirtualClock
from repro.gpu.cost_model import FREE_GPU, SUMMIT_GPU, GpuCostModel
from repro.gpu.runtime import CudaRuntime
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel


@pytest.fixture
def clock() -> VirtualClock:
    """A fresh virtual clock."""
    return VirtualClock()


@pytest.fixture
def free_runtime() -> CudaRuntime:
    """A runtime whose operations cost (almost) no virtual time.

    Use this for purely functional tests so assertions about byte movement
    are not entangled with timing behaviour.
    """
    return CudaRuntime(cost_model=FREE_GPU)


@pytest.fixture
def summit_runtime() -> CudaRuntime:
    """A runtime with the Summit-like cost model."""
    return CudaRuntime(cost_model=SUMMIT_GPU)


@pytest.fixture(scope="session")
def summit_measurement():
    """One measurement sweep shared by the whole session (it is not free)."""
    return measure_system(SUMMIT)


@pytest.fixture(scope="session")
def summit_model(summit_measurement) -> PerformanceModel:
    """A performance model over the shared measurement."""
    return PerformanceModel(summit_measurement)


@pytest.fixture
def moe_seed() -> int:
    """The multinomial routing seed the MoE workload tests draw under.

    One fixed seed keeps the skewed token-routing matrices — and therefore
    the incast stall counts the tests pin — identical across runs and
    machines.  Matches ``benchmarks/bench_moe.py``'s ``SEED``.
    """
    return 3


@pytest.fixture
def small_gpu_cost() -> GpuCostModel:
    """A cost model with round numbers, convenient for arithmetic assertions."""
    return GpuCostModel(
        kernel_launch_s=1e-6,
        kernel_sync_s=1e-6,
        memcpy_call_s=2e-6,
        alloc_s=10e-6,
        free_s=5e-6,
        host_alloc_pinned_s=20e-6,
        d2d_bandwidth=1e9,
        d2h_bandwidth=1e9,
        h2d_bandwidth=1e9,
        zero_copy_bandwidth=1e9,
        device_saturation_block=128,
        zero_copy_saturation_block=32,
        min_efficiency=1.0 / 128.0,
        unpack_penalty=2.0,
    )
