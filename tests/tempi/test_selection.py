"""Tests for the unified method-selection subsystem (``tempi/selection.py``)."""

from __future__ import annotations

import pytest

from repro.gpu.clock import VirtualClock
from repro.gpu.cost_model import FREE_GPU
from repro.gpu.runtime import CudaRuntime
from repro.machine.nic import NicTimeline
from repro.machine.spec import SUMMIT, summit_like
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.packer import Packer
from repro.tempi.selection import (
    NOOP_METHOD,
    CalibrationRegistry,
    ContendedSelector,
    FixedSelector,
    ModelSelector,
    SelectionError,
    contended_estimate,
    make_selector,
)
from repro.tempi.strided_block import StridedBlock

KIB = 1024
MIB = 1024 * 1024


def packer_for(block_length: int) -> Packer:
    shape = StridedBlock(start=0, counts=(block_length, 64), strides=(1, 2 * block_length))
    return Packer(shape, object_extent=shape.extent)


class TestFixedSelector:
    def test_returns_configured_method(self):
        selector = FixedSelector(PackMethod.STAGED)
        assert selector(packer_for(8), KIB) is PackMethod.STAGED

    def test_rejects_auto(self):
        with pytest.raises(SelectionError):
            FixedSelector(PackMethod.AUTO)

    def test_zero_bytes_is_noop(self):
        assert FixedSelector(PackMethod.ONESHOT)(packer_for(8), 0) is NOOP_METHOD


class TestModelSelector:
    def test_matches_choose_method(self, summit_model):
        selector = ModelSelector(summit_model)
        for nbytes, block in ((KIB, 8), (64 * KIB, 64), (4 * MIB, 8)):
            assert selector(packer_for(block), nbytes) is summit_model.choose_method(
                nbytes, block
            )

    def test_zero_bytes_never_queries(self, summit_model):
        selector = ModelSelector(summit_model)
        queries = summit_model.queries
        assert selector(packer_for(8), 0) is NOOP_METHOD
        assert selector(packer_for(8), -3) is NOOP_METHOD
        assert summit_model.queries == queries

    def test_charges_query_overhead_through_cache(self, summit_model):
        clock = VirtualClock()
        cache = ResourceCache(CudaRuntime(cost_model=FREE_GPU))
        config = TempiConfig()
        selector = ModelSelector(summit_model, cache=cache, clock=clock, config=config)
        selector(packer_for(8), KIB)
        cold = clock.now
        assert cold == pytest.approx(config.model_query_s)
        selector(packer_for(8), KIB)
        assert clock.now - cold == pytest.approx(config.model_cached_query_s)

    def test_lazy_model_provider(self, summit_model):
        calls = []

        def provider():
            calls.append(1)
            return summit_model

        selector = ModelSelector(provider)
        assert not calls
        selector(packer_for(8), KIB)
        selector(packer_for(8), 2 * KIB)
        assert calls == [1]


class TestContendedSelector:
    def test_idle_port_equals_model(self, summit_model):
        nic = NicTimeline()
        contended = ContendedSelector(summit_model, nic, 0)
        model = ModelSelector(summit_model)
        for nbytes, block in ((KIB, 8), (16 * KIB, 4), (MIB, 256)):
            assert contended(packer_for(block), nbytes) is model(packer_for(block), nbytes)

    def test_backlog_shifts_the_crossover(self, summit_model):
        # 4 KiB in single-byte runs: device wins idle, one-shot under backlog
        # (its pack penalty hides behind the queued port).
        nic = NicTimeline()
        nic.reserve(0, 1, 0.0, 200e-6, 4 * KIB)
        selector = ContendedSelector(summit_model, nic, 0)
        packer = Packer(
            StridedBlock(start=0, counts=(1, 4 * KIB), strides=(1, 2)), object_extent=2 * 4 * KIB
        )
        nbytes = packer.packed_size(1)
        assert nbytes == 4 * KIB
        assert summit_model.choose_method(nbytes, 1) is PackMethod.DEVICE
        assert selector(packer, nbytes) is PackMethod.ONESHOT

    def test_backlog_reads_this_ranks_port_only(self, summit_model):
        nic = NicTimeline()
        nic.reserve(1, 2, 0.0, 200e-6, 4 * KIB)  # another rank's traffic
        selector = ContendedSelector(summit_model, nic, 0)
        assert selector.backlog() == 0.0

    def test_requires_a_timeline(self, summit_model):
        with pytest.raises(SelectionError):
            ContendedSelector(summit_model, None, 0)

    def test_estimate_rejects_negative_backlog(self, summit_model):
        with pytest.raises(SelectionError):
            contended_estimate(summit_model, KIB, 8, -1.0)

    def test_estimate_zero_backlog_matches_model(self, summit_model):
        for nbytes, block in ((KIB, 8), (64 * KIB, 64), (4 * MIB, 8)):
            estimate = contended_estimate(summit_model, nbytes, block, 0.0)
            assert estimate.best() is summit_model.choose_method(nbytes, block)


class TestDuplexEstimate:
    """The link and ingestion terms of ``contended_estimate`` (PR 5)."""

    def test_extra_terms_fold_into_the_same_max(self, summit_model):
        """`max(pack, inject, link, ingest) + wire + unpack`: whichever single
        term dominates produces the same totals."""
        backlog = 500e-6
        base = contended_estimate(summit_model, 4 * KIB, 1, backlog)
        via_link = contended_estimate(summit_model, 4 * KIB, 1, 0.0, link_backlog_s=backlog)
        via_ingest = contended_estimate(
            summit_model, 4 * KIB, 1, 0.0, ingest_backlog_s=backlog
        )
        assert via_link.oneshot == base.oneshot and via_link.device == base.device
        assert via_ingest.oneshot == base.oneshot and via_ingest.device == base.device
        assert base.bound() == "inject"
        assert via_link.bound() == "link"
        assert via_ingest.bound() == "ingest"

    def test_zero_extra_terms_are_bitwise_pr4(self, summit_model):
        """Explicit zeros are the PR-4 pricing, bit for bit."""
        for nbytes, block, backlog in ((KIB, 8, 0.0), (4 * KIB, 1, 3e-4), (MIB, 64, 1e-3)):
            old = contended_estimate(summit_model, nbytes, block, backlog)
            new = contended_estimate(
                summit_model, nbytes, block, backlog, link_backlog_s=0.0, ingest_backlog_s=0.0
            )
            assert (old.oneshot, old.device) == (new.oneshot, new.device)

    def test_bound_prefers_pack_on_ties(self, summit_model):
        estimate = contended_estimate(summit_model, 4 * KIB, 1, 0.0)
        assert estimate.bound() == "pack"

    def test_rejects_negative_extra_terms(self, summit_model):
        with pytest.raises(SelectionError):
            contended_estimate(summit_model, KIB, 8, 0.0, link_backlog_s=-1.0)
        with pytest.raises(SelectionError):
            contended_estimate(summit_model, KIB, 8, 0.0, ingest_backlog_s=-1.0)

    def test_hot_receiver_flips_the_selection(self, summit_model):
        """A hot peer's ingestion backlog flips the idle device choice to
        one-shot at the 4 KiB crossover shape — and the inject_only ablation,
        blind to the receive side, never sees it."""
        nic = NicTimeline()
        for source in (1, 2, 3, 4):
            nic.reserve(source, 0, 0.0, 60e-6, 256 * KIB)  # incast on rank 0
        packer = Packer(
            StridedBlock(start=0, counts=(1, 4 * KIB), strides=(1, 2)),
            object_extent=2 * 4 * KIB,
        )
        nbytes = packer.packed_size(1)
        idle = summit_model.choose_method(nbytes, 1)
        assert idle is PackMethod.DEVICE
        duplex = ContendedSelector(summit_model, nic, 9, config=TempiConfig())
        ablation = ContendedSelector(
            summit_model, nic, 9, config=TempiConfig(nic="inject_only")
        )
        assert duplex(packer, nbytes, peer=0) is PackMethod.ONESHOT
        assert ablation(packer, nbytes, peer=0) is idle
        # Without a destination there is no hot peer to price.
        assert duplex(packer, nbytes) is idle

    def test_own_link_backlog_counts_under_duplex(self, summit_model):
        nic = NicTimeline()
        nic.reserve(0, 1, 0.0, 400e-6, MIB)  # this rank's own earlier message
        selector = ContendedSelector(summit_model, nic, 0, config=TempiConfig())
        assert selector.link_backlog(1) > 0.0
        assert selector.link_backlog(2) == 0.0
        assert selector.link_backlog(None) == 0.0

    def test_ingest_term_reads_the_advisory_ledger(self, summit_model):
        nic = NicTimeline()
        nic.reserve(1, 0, 0.0, 60e-6, 256 * KIB)
        selector = ContendedSelector(summit_model, nic, 9, config=TempiConfig())
        assert selector.ingest_backlog(0) > 0.0
        assert selector.ingest_backlog(3) == 0.0
        inject_only = ContendedSelector(
            summit_model, nic, 9, config=TempiConfig(nic="inject_only")
        )
        assert inject_only.ingest_backlog(0) == 0.0


class TestMakeSelector:
    def test_default_is_model(self, summit_model):
        selector = make_selector(TempiConfig(), summit_model)
        assert type(selector) is ModelSelector

    def test_contended_needs_nic(self, summit_model):
        config = TempiConfig(selection="contended")
        assert type(make_selector(config, summit_model)) is ModelSelector
        nic = NicTimeline()
        selector = make_selector(config, summit_model, nic=nic, rank=3)
        assert type(selector) is ContendedSelector
        assert selector.nic is nic and selector.rank == 3

    def test_forced_method_wins_over_policy(self, summit_model):
        config = TempiConfig(selection="contended", method=PackMethod.DEVICE)
        selector = make_selector(config, summit_model, nic=NicTimeline())
        assert type(selector) is FixedSelector

    def test_fixed_policy_requires_concrete_method(self, summit_model):
        config = TempiConfig(selection="fixed", method=PackMethod.ONESHOT)
        assert type(make_selector(config, summit_model)) is FixedSelector

    def test_config_validates_selection(self):
        with pytest.raises(ValueError):
            TempiConfig(selection="psychic")
        with pytest.raises(ValueError):
            TempiConfig(selection="fixed")  # AUTO method has nothing to fix


class TestCalibrationRegistry:
    def test_models_are_cached_per_machine(self, summit_measurement):
        registry = CalibrationRegistry()
        model = registry.register(summit_measurement)
        assert registry.model_for(SUMMIT) is model
        assert registry.machines() == [SUMMIT.name]
        assert SUMMIT in registry and "summit-like" in registry

    def test_machines_coexist(self, summit_measurement):
        registry = CalibrationRegistry()
        registry.register(summit_measurement)
        other = summit_like(eager_threshold=8 * KIB).with_overrides(name="other-machine")
        other_model = registry.model_for(other)
        assert registry.model_for(SUMMIT) is not other_model
        assert registry.machines() == ["other-machine", SUMMIT.name]

    def test_directory_round_trip(self, summit_measurement, tmp_path):
        path = CalibrationRegistry.measurement_path(tmp_path, SUMMIT.name)
        summit_measurement.save(path)
        registry = CalibrationRegistry(tmp_path)
        model = registry.model_for(SUMMIT)
        assert model.measurement.machine_name == SUMMIT.name
        # A second registry measures nothing: the file is already there.
        assert CalibrationRegistry(tmp_path).model_for(SUMMIT) is not model

    def test_directory_persists_fresh_measurements(self, tmp_path):
        tiny = summit_like().with_overrides(name="tiny-machine")
        registry = CalibrationRegistry(tmp_path)
        registry.model_for(tiny)
        assert CalibrationRegistry.measurement_path(tmp_path, "tiny-machine").exists()

    def test_wrong_machine_file_is_rejected(self, summit_measurement, tmp_path):
        path = tmp_path / "m.json"
        summit_measurement.save(path)
        registry = CalibrationRegistry()
        other = summit_like().with_overrides(name="not-summit")
        with pytest.raises(SelectionError):
            registry.load(path, other)

    def test_register_requires_machine_name(self, summit_measurement):
        from dataclasses import replace

        anonymous = replace(summit_measurement, machine_name="unknown")
        with pytest.raises(SelectionError):
            CalibrationRegistry().register(anonymous)
