"""Pipeline-parallel p2p chain driver (forward activation relay).

Pipeline parallelism places consecutive model stages on consecutive ranks
and relays each microbatch's activations stage-to-stage: rank ``r`` receives
microbatch ``m`` from ``r-1``, "computes", and forwards to ``r+1``.  The
communication skeleton is a chain of typed nonblocking p2p messages whose
steady state keeps every link busy and whose fill/drain ramp costs
``(stages - 1)`` extra hops — the classic pipeline-depth latency the
analytic twin :func:`repro.apps.exchange_model.model_pipeline_chain` prices.

The activation is described as a pitched two-block vector (same shape as the
MoE token rows), so the interposer compiles each hop to a
:class:`~repro.tempi.plan.MessagePlan` and the hops land on the shared NIC
ledgers.  :func:`pipeline_trace` records the schedule for
:mod:`repro.apps.replay`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

#: Tag space of the microbatch relay, disjoint from the halo-direction tags
#: (2_000_000) and far below the collective range (1_000_000_000).
_MICROBATCH_TAG_BASE = 3_000_000


@dataclass(frozen=True)
class PipelineSpec:
    """One forward pass of a pipeline-parallel schedule."""

    #: Microbatches relayed through the chain per pass.
    microbatches: int = 4
    #: Payload bytes of one microbatch's activation (must be even).
    activation_bytes: int = 1 << 16
    #: Pitch padding (must be even and positive — keeps the datatype
    #: non-contiguous, i.e. on TEMPI's plan path).
    activation_pad: int = 64
    #: Seed stamped into the activation payload.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.microbatches <= 0:
            raise ValueError(f"microbatches must be positive, got {self.microbatches}")
        if self.activation_bytes <= 0 or self.activation_bytes % 2:
            raise ValueError(
                f"activation_bytes must be positive and even, got {self.activation_bytes}"
            )
        if self.activation_pad <= 0 or self.activation_pad % 2:
            raise ValueError(
                f"activation_pad must be positive and even, got {self.activation_pad}"
            )


def activation_datatype(spec: PipelineSpec):
    """One activation as a pitched two-block vector (non-contiguous)."""
    half = spec.activation_bytes // 2
    return Type_vector(2, half, half + spec.activation_pad // 2, BYTE)


def microbatch_tag(microbatch: int) -> int:
    """The message tag microbatch ``microbatch`` travels under."""
    return _MICROBATCH_TAG_BASE + microbatch


@dataclass(frozen=True)
class PipelineResult:
    """One forward pass's observables (per-rank lists, rank order)."""

    clocks: list
    contention_stalls: int
    ingest_stalls: int
    digests: list

    @property
    def completion_s(self) -> float:
        """The pass's completion: the last stage's priced clock."""
        return max(self.clocks)


def run_pipeline(
    nranks: int,
    spec: PipelineSpec,
    *,
    model,
    config: TempiConfig | None = None,
    ranks_per_node: int = 2,
    topology=None,
) -> PipelineResult:
    """Relay ``spec.microbatches`` activations through an ``nranks`` chain.

    Stage 0 sources each microbatch (payload stamped from ``spec.seed``),
    interior stages receive-then-forward, the last stage sinks.  Each hop is
    a typed ``Isend``/``Irecv`` pair waited in microbatch order, so the wire
    pipeline fills and drains exactly as the analytic twin prices it.
    Deterministic — two identical calls return bit-identical clocks.
    """

    def program(ctx):
        cfg = config if config is not None else TempiConfig()
        comm = interpose(ctx, cfg, model=model)
        datatype = comm.Type_commit(activation_datatype(spec))
        extent = datatype.extent
        buffer = ctx.gpu.malloc(max(1, spec.microbatches * extent))
        half = spec.activation_bytes // 2
        stride = half + spec.activation_pad // 2
        if ctx.rank == 0:
            for microbatch in range(spec.microbatches):
                value = (spec.seed + microbatch) % 251
                base = microbatch * extent
                buffer.data[base : base + half] = value
                buffer.data[base + stride : base + stride + half] = value
        for microbatch in range(spec.microbatches):
            view = buffer.view(microbatch * extent) if microbatch else buffer
            spec_tuple = (view, 1, datatype)
            if ctx.rank > 0:
                comm.Recv(spec_tuple, ctx.rank - 1, microbatch_tag(microbatch))
            if ctx.rank < ctx.size - 1:
                comm.Isend(spec_tuple, ctx.rank + 1, microbatch_tag(microbatch)).Wait()
        stats = comm.stats
        digest = hashlib.sha256(buffer.data.tobytes()).hexdigest()
        return ctx.clock.now, stats.contention_stalls, stats.ingest_stalls, digest

    kwargs = {"ranks_per_node": ranks_per_node}
    if topology is not None:
        kwargs["topology"] = topology
    rows = World(nranks, **kwargs).run(program)
    return PipelineResult(
        clocks=[row[0] for row in rows],
        contention_stalls=sum(row[1] for row in rows),
        ingest_stalls=sum(row[2] for row in rows),
        digests=[row[3] for row in rows],
    )


def pipeline_trace(spec: PipelineSpec, nranks: int, *, ranks_per_node: int = 2) -> dict:
    """The forward pass as a replayable trace (:mod:`repro.apps.replay`)."""
    return {
        "version": 1,
        "nranks": nranks,
        "ranks_per_node": ranks_per_node,
        "ops": [
            {
                "op": "p2p",
                "edges": [[rank, rank + 1, 1] for rank in range(nranks - 1)],
                "item_bytes": spec.activation_bytes,
                "item_pad": spec.activation_pad,
            }
            for _ in range(spec.microbatches)
        ],
    }
