"""MPI datatypes: the base class and the named (predefined) types.

A datatype describes a set of ``(offset, primitive)`` pairs — the *type map*
of the MPI standard — together with a *lower bound* and an *extent* that
govern how successive elements of the type are laid out.  Derived types
(contiguous, vector, hvector, subarray, indexed, struct) are built by the
constructors in :mod:`repro.mpi.constructors`; this module provides:

* :class:`Datatype`, which carries ``size``/``extent``/``lb`` and the
  *envelope* (combiner + constructor arguments) that TEMPI's translation
  phase reads back, mirroring ``MPI_Type_get_envelope``/``contents``;
* :class:`NamedDatatype` and the predefined instances (``BYTE``, ``FLOAT``,
  ``DOUBLE`` …).

``Commit`` is deliberately a minor operation here: the *system* MPI commits a
type by doing nothing interesting, exactly like the paper's baseline, and it
is the TEMPI interposer that attaches an expensive-but-worth-it handler at
commit time (Sec. 3).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.mpi.errors import MpiTypeError

#: Array storage orders accepted by ``Type_create_subarray``.
ORDER_C = 0
ORDER_FORTRAN = 1

_type_ids = itertools.count(1)


class Combiner(enum.Enum):
    """How a datatype was constructed (``MPI_Type_get_envelope`` combiners)."""

    NAMED = "named"
    CONTIGUOUS = "contiguous"
    VECTOR = "vector"
    HVECTOR = "hvector"
    SUBARRAY = "subarray"
    INDEXED = "indexed"
    HINDEXED = "hindexed"
    STRUCT = "struct"
    RESIZED = "resized"


class Datatype:
    """Base class of every MPI datatype in the simulation.

    Parameters
    ----------
    size:
        Number of payload bytes in one element of the type (the sum of the
        lengths in its type map).
    extent:
        Distance in bytes between successive elements of the type in a
        buffer (``ub - lb``).
    lb:
        Lower bound: byte offset of the first byte relative to the buffer
        position the element is addressed at.
    combiner:
        How the type was constructed.
    children:
        Constituent datatypes (empty for named types).
    """

    def __init__(
        self,
        size: int,
        extent: int,
        combiner: Combiner,
        children: tuple["Datatype", ...] = (),
        lb: int = 0,
    ) -> None:
        if size < 0:
            raise MpiTypeError(f"datatype size must be non-negative, got {size}")
        if extent < 0:
            raise MpiTypeError(f"datatype extent must be non-negative, got {extent}")
        self.size = int(size)
        self.extent = int(extent)
        self.lb = int(lb)
        self.combiner = combiner
        self.children = children
        self.committed = False
        self.freed = False
        self.handle = next(_type_ids)
        #: Arbitrary slot for an interposer to attach a committed handler
        #: (TEMPI stores its packer / strided-block record here).
        self.attachment: Optional[object] = None

    # ----------------------------------------------------------------- basics
    @property
    def ub(self) -> int:
        """Upper bound (``lb + extent``)."""
        return self.lb + self.extent

    @property
    def is_named(self) -> bool:
        """True for predefined (leaf) types."""
        return self.combiner is Combiner.NAMED

    @property
    def is_contiguous_bytes(self) -> bool:
        """True when one element occupies ``size`` adjacent bytes with no holes."""
        return self.size == self.extent and self._dense()

    def _dense(self) -> bool:
        """Whether the type map covers its extent without gaps (overridable)."""
        blocks = list(self.layout())
        covered = sum(length for _, length in blocks)
        return covered == self.extent

    # --------------------------------------------------------------- lifecycle
    def Commit(self) -> "Datatype":
        """Mark the type ready for use in communication (``MPI_Type_commit``)."""
        self._check_alive()
        self.committed = True
        return self

    def Free(self) -> None:
        """Release the type (``MPI_Type_free``)."""
        self.freed = True
        self.attachment = None

    def _check_alive(self) -> None:
        if self.freed:
            raise MpiTypeError("datatype used after MPI_Type_free")

    def _check_committed(self) -> None:
        self._check_alive()
        if not self.committed:
            raise MpiTypeError(
                f"datatype {self!r} used in communication before MPI_Type_commit"
            )

    # ----------------------------------------------------------------- layout
    def layout(self) -> Iterator[tuple[int, int]]:
        """Yield the type map as ``(byte offset, byte length)`` pairs.

        Offsets are relative to the element's addressed position (i.e. they
        include ``lb``).  Adjacent blocks are *not* merged here; use
        :func:`repro.mpi.typemap.flatten` for a merged block list.
        """
        raise NotImplementedError

    def child_layout(self) -> Iterator[tuple[int, "Datatype"]]:
        """Yield ``(byte offset, child datatype)`` pairs in type-map order.

        Named types yield nothing; derived types yield one entry per child
        placement.  This is the hook both the flattener and TEMPI's
        translation use to walk a type without knowing its concrete class.
        """
        raise NotImplementedError

    def block_count(self) -> int:
        """Number of maximal contiguous blocks in the type map.

        Computed analytically (no enumeration), so it is cheap even for the
        multi-million-block datatypes of Fig. 8 — this is what the baseline
        cost accounting multiplies by the per-``cudaMemcpyAsync`` overhead.
        """
        raise NotImplementedError

    # ------------------------------------------------------------- convenience
    def Get_size(self) -> int:
        """``MPI_Type_size``."""
        return self.size

    def Get_extent(self) -> tuple[int, int]:
        """``MPI_Type_get_extent``: returns ``(lb, extent)``."""
        return self.lb, self.extent

    def Get_envelope(self) -> tuple[Combiner, dict]:
        """Combiner and constructor arguments (``MPI_Type_get_envelope``/``contents``)."""
        return self.combiner, self._envelope()

    def _envelope(self) -> dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} #{self.handle} {self.combiner.value} "
            f"size={self.size} extent={self.extent}>"
        )


class NamedDatatype(Datatype):
    """A predefined MPI type corresponding to a C type (``MPI_FLOAT`` …)."""

    def __init__(self, name: str, size: int, numpy_dtype: Optional[str] = None) -> None:
        super().__init__(size=size, extent=size, combiner=Combiner.NAMED)
        self.name = name
        self.numpy_dtype = np.dtype(numpy_dtype) if numpy_dtype is not None else None
        self.committed = True  # predefined types are always committed

    def layout(self) -> Iterator[tuple[int, int]]:
        yield (0, self.size)

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        return iter(())

    def block_count(self) -> int:
        return 1

    def _dense(self) -> bool:
        return True

    def _envelope(self) -> dict:
        return {"name": self.name, "size": self.size}

    def __repr__(self) -> str:
        return f"<NamedDatatype {self.name} ({self.size} B)>"


#: Predefined types.  Sizes follow the usual LP64 C ABI the paper's platform uses.
BYTE = NamedDatatype("MPI_BYTE", 1, "uint8")
CHAR = NamedDatatype("MPI_CHAR", 1, "int8")
SHORT = NamedDatatype("MPI_SHORT", 2, "int16")
INT = NamedDatatype("MPI_INT", 4, "int32")
INT64 = NamedDatatype("MPI_INT64_T", 8, "int64")
UNSIGNED = NamedDatatype("MPI_UNSIGNED", 4, "uint32")
FLOAT = NamedDatatype("MPI_FLOAT", 4, "float32")
DOUBLE = NamedDatatype("MPI_DOUBLE", 8, "float64")

#: All predefined instances, keyed by their MPI name.
NAMED_TYPES: dict[str, NamedDatatype] = {
    t.name: t for t in (BYTE, CHAR, SHORT, INT, INT64, UNSIGNED, FLOAT, DOUBLE)
}


def check_positive_count(count: int, what: str = "count") -> int:
    """Validate a strictly positive count argument (shared by constructors)."""
    if not isinstance(count, (int, np.integer)) or isinstance(count, bool):
        raise MpiTypeError(f"{what} must be an integer, got {count!r}")
    if count <= 0:
        raise MpiTypeError(f"{what} must be positive, got {count}")
    return int(count)


def check_datatype(oldtype: Datatype) -> Datatype:
    """Validate an ``oldtype`` argument."""
    if not isinstance(oldtype, Datatype):
        raise MpiTypeError(f"expected a Datatype, got {type(oldtype).__name__}")
    oldtype._check_alive()
    return oldtype


def check_order(order: int) -> int:
    """Validate a subarray storage order."""
    if order not in (ORDER_C, ORDER_FORTRAN):
        raise MpiTypeError(f"order must be ORDER_C or ORDER_FORTRAN, got {order!r}")
    return order


def sequence_of_ints(values: Sequence[int], what: str) -> tuple[int, ...]:
    """Validate an integer sequence argument (sizes, subsizes, displacements …)."""
    try:
        result = tuple(int(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise MpiTypeError(f"{what} must be a sequence of integers") from exc
    return result
