"""MPI status objects."""

from __future__ import annotations

from dataclasses import dataclass

#: Wildcards accepted by receive operations.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Status:
    """Completion information of a receive (``MPI_Status``)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count_bytes: int = 0
    cancelled: bool = False

    def Get_source(self) -> int:
        """Rank that sent the matched message."""
        return self.source

    def Get_tag(self) -> int:
        """Tag of the matched message."""
        return self.tag

    def Get_count(self, datatype=None) -> int:
        """Number of received elements of ``datatype`` (bytes when omitted)."""
        if datatype is None:
            return self.count_bytes
        if datatype.size == 0:
            return 0
        return self.count_bytes // datatype.size

    def copy_from(self, other: "Status") -> "Status":
        """Copy another status's completion fields into this (caller-supplied)
        object; returns self.  The one place the ``status=`` out-parameter
        convention of the receive calls is implemented."""
        self.source = other.source
        self.tag = other.tag
        self.count_bytes = other.count_bytes
        self.cancelled = other.cancelled
        return self
