"""The runtime performance model (Sec. 4, Sec. 6.3).

The model combines the measured curves of :class:`~repro.tempi.measurement.SystemMeasurement`
into the three end-to-end send latencies of the paper:

.. math::

    T_{device}  &= T_{gpu\\text{-}pack} + T_{gpu\\text{-}gpu} + T_{gpu\\text{-}unpack}      \\\\
    T_{oneshot} &= T_{host\\text{-}pack} + T_{cpu\\text{-}cpu} + T_{host\\text{-}unpack}    \\\\
    T_{staged}  &= T_{gpu\\text{-}pack} + T_{d2h} + T_{cpu\\text{-}cpu} + T_{h2d} + T_{gpu\\text{-}unpack}

Measurements are sparse by necessity: transfers are interpolated in 1-D over
the message size, pack/unpack latencies in 2-D over (contiguous block length,
object size), both on logarithmic axes.  Queries are pure functions of their
arguments, so results are memoised; the interposer charges the measured
~277 ns only for cached queries and a few microseconds for cold ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.tempi.config import PackMethod
from repro.tempi.measurement import SystemMeasurement


@dataclass(frozen=True)
class MethodEstimate:
    """The three modelled latencies for one (object size, block length) query."""

    oneshot: float
    device: float
    staged: float

    def best(self) -> PackMethod:
        """The method the model selects (staged is never preferred, Fig. 9b)."""
        return PackMethod.ONESHOT if self.oneshot <= self.device else PackMethod.DEVICE


class PerformanceModel:
    """Interpolating model over one machine's measurement file."""

    def __init__(self, measurement: SystemMeasurement) -> None:
        self.measurement = measurement
        arrays = measurement.as_arrays()
        self._log_sizes = np.log2(arrays["sizes"])
        self._log_blocks = np.log2(arrays["block_lengths"])
        self._transfer_curves = {
            "cpu_cpu": arrays["t_cpu_cpu"],
            "gpu_gpu": arrays["t_gpu_gpu"],
            "d2h": arrays["t_d2h"],
            "h2d": arrays["t_h2d"],
        }
        self._pack_tables = {
            ("device", "pack"): arrays["t_pack_device"],
            ("device", "unpack"): arrays["t_unpack_device"],
            ("oneshot", "pack"): arrays["t_pack_oneshot"],
            ("oneshot", "unpack"): arrays["t_unpack_oneshot"],
        }
        self._pack_interpolators: Dict[Tuple[str, str], RegularGridInterpolator] = {}
        for key, table in self._pack_tables.items():
            self._pack_interpolators[key] = RegularGridInterpolator(
                (self._log_blocks, self._log_sizes),
                np.asarray(table),
                bounds_error=False,
                fill_value=None,  # linear extrapolation at the edges
            )
        self._memo: Dict[Tuple, float] = {}
        self.queries = 0
        self.cache_hits = 0

    # ------------------------------------------------------------- primitives
    def transfer_time(self, kind: str, nbytes: int) -> float:
        """Interpolated transfer latency (``cpu_cpu``, ``gpu_gpu``, ``d2h``, ``h2d``)."""
        if kind not in self._transfer_curves:
            raise KeyError(f"unknown transfer kind {kind!r}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        key = ("transfer", kind, int(nbytes))
        return self._memoized(key, lambda: self._interp_transfer(kind, nbytes))

    def _interp_transfer(self, kind: str, nbytes: int) -> float:
        curve = self._transfer_curves[kind]
        log_size = np.log2(nbytes)
        value = np.interp(log_size, self._log_sizes, curve)
        # np.interp clamps; extrapolate the bandwidth term beyond the sweep.
        if log_size > self._log_sizes[-1]:
            slope = (curve[-1] - curve[-2]) / (self._log_sizes[-1] - self._log_sizes[-2])
            value = curve[-1] + slope * (log_size - self._log_sizes[-1])
        return float(value)

    def pack_time(self, strategy: str, operation: str, nbytes: int, block_length: int) -> float:
        """Interpolated pack/unpack latency for a strategy (``device``/``oneshot``)."""
        key = ("pack", strategy, operation, int(nbytes), int(block_length))
        return self._memoized(
            key, lambda: self._interp_pack(strategy, operation, nbytes, block_length)
        )

    def _interp_pack(self, strategy: str, operation: str, nbytes: int, block_length: int) -> float:
        if (strategy, operation) not in self._pack_interpolators:
            raise KeyError(f"unknown pack table {(strategy, operation)!r}")
        if nbytes <= 0 or block_length <= 0:
            raise ValueError("nbytes and block_length must be positive")
        interpolator = self._pack_interpolators[(strategy, operation)]
        point = np.array([
            np.clip(np.log2(block_length), self._log_blocks[0], self._log_blocks[-1]),
            np.log2(nbytes),
        ])
        return float(max(0.0, interpolator(point)[0]))

    def _memoized(self, key: Tuple, compute) -> float:
        self.queries += 1
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        value = compute()
        self._memo[key] = value
        return value

    # --------------------------------------------------------------- the model
    def estimate(self, nbytes: int, block_length: int) -> MethodEstimate:
        """Evaluate Eqs. 1-3 for an object of ``nbytes`` with ``block_length`` runs."""
        oneshot = (
            self.pack_time("oneshot", "pack", nbytes, block_length)
            + self.transfer_time("cpu_cpu", nbytes)
            + self.pack_time("oneshot", "unpack", nbytes, block_length)
        )
        device = (
            self.pack_time("device", "pack", nbytes, block_length)
            + self.transfer_time("gpu_gpu", nbytes)
            + self.pack_time("device", "unpack", nbytes, block_length)
        )
        staged = (
            self.pack_time("device", "pack", nbytes, block_length)
            + self.transfer_time("d2h", nbytes)
            + self.transfer_time("cpu_cpu", nbytes)
            + self.transfer_time("h2d", nbytes)
            + self.pack_time("device", "unpack", nbytes, block_length)
        )
        return MethodEstimate(oneshot=oneshot, device=device, staged=staged)

    def choose_method(self, nbytes: int, block_length: int) -> PackMethod:
        """The faster of one-shot and device for this object (Sec. 6.3)."""
        return self.estimate(nbytes, block_length).best()

    # ---------------------------------------------------- multi-peer pipelines
    def _message_parts(self, nbytes: int, block_length: int) -> Tuple[float, float, float]:
        """(pack, wire, unpack) seconds of one message under its best method."""
        estimate = self.estimate(nbytes, block_length)
        if estimate.best() is PackMethod.ONESHOT:
            strategy, wire = "oneshot", self.transfer_time("cpu_cpu", nbytes)
        else:
            strategy, wire = "device", self.transfer_time("gpu_gpu", nbytes)
        pack = self.pack_time(strategy, "pack", nbytes, block_length)
        unpack = self.pack_time(strategy, "unpack", nbytes, block_length)
        return pack, wire, unpack

    def exchange_estimate(
        self,
        messages,
        *,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        nic: str = "duplex",
    ) -> Tuple[float, float]:
        """Price a multi-peer exchange serially and as an overlapped pipeline.

        ``messages`` is a sequence of ``(nbytes, block_length)`` pairs, one
        per wire peer; each is priced under its model-chosen method, and
        zero-byte entries contribute nothing (an empty section never touches
        a kernel or the wire).  The default occupancy factor is the one
        canonical :data:`~repro.machine.network.DEFAULT_WIRE_OVERLAP` the NIC
        timeline and the analytic all-to-all-v share.  Returns
        ``(serial_s, overlapped_s)``:

        * **serial** — the PR-1 engine: packs back-to-back on the host, the
          wire as an overlap-discounted serial sum, unpacks back-to-back;
        * **overlapped** — the plan executor's schedule: packs run
          concurrently on per-peer streams, each message enters the NIC when
          its pack completes (serialising at ``wire_overlap`` occupancy), and
          each peer's unpack starts at its arrival — the makespan of the
          pipeline's slowest chain.

        ``nic`` selects the receive-side mirror the overlapped makespan
        prices.  ``"duplex"`` (the default, matching the runtime) treats each
        incoming message as sent by an *independent* peer — arriving at its
        own ``pack + wire`` with no shared injection port behind it — and
        serialises the landings on this rank's ingestion port at
        ``wire_overlap`` occupancy (the :class:`~repro.machine.nic.NicTimeline`
        mirror rule), so heterogeneous arrivals that cluster get queued.
        ``"inject_only"`` keeps the PR-4 symmetric mirror (each incoming
        unpack starts at the matching *outgoing* arrival).  For a uniform
        message list the two coincide exactly — a balanced exchange has no
        receive-side skew to price.
        """
        if not 0 < wire_overlap <= 1:
            raise ValueError("wire_overlap must be in (0, 1]")
        if nic not in ("duplex", "inject_only"):
            raise ValueError(f"nic must be 'duplex' or 'inject_only', got {nic!r}")
        parts = [self._message_parts(int(n), int(b)) for n, b in messages if int(n) > 0]
        if not parts:
            return 0.0, 0.0
        serial = (
            sum(p for p, _, _ in parts)
            + wire_overlap * sum(w for _, w, _ in parts)
            + sum(u for _, _, u in parts)
        )
        nic_free = 0.0
        makespan = 0.0
        for pack, wire, unpack in sorted(parts, key=lambda p: p[0]):
            start = max(pack, nic_free)
            nic_free = start + wire_overlap * wire
            makespan = max(makespan, start + wire + unpack)
        if nic == "duplex":
            # Independent-sender arrivals, serialised on this rank's
            # ingestion port in arrival order (the deterministic key order of
            # a one-message-per-source batch).  The result is combined with
            # the send-side (outgoing-mirror) bound above by max: pricing the
            # second end of the wire can only ever add, never undercut the
            # inject-only books.
            ingest_free = 0.0
            for pack, wire, unpack in sorted(parts, key=lambda p: (p[0] + p[1], p[1])):
                arrival = pack + wire
                landing = max(arrival, ingest_free + wire)
                ingest_free = max(pack, ingest_free) + wire_overlap * wire
                makespan = max(makespan, landing + unpack)
        return serial, makespan

    # ------------------------------------------------------------- inspection
    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the memo (tests for the 277 ns claim)."""
        return self.cache_hits / self.queries if self.queries else 0.0
