"""Tests for the GPU cost model."""

import pytest

from repro.gpu.cost_model import FREE_GPU, SUMMIT_GPU, GpuCostModel


class TestValidation:
    def test_default_model_is_valid(self):
        GpuCostModel()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GpuCostModel(d2d_bandwidth=0)

    def test_negative_saturation_rejected(self):
        with pytest.raises(ValueError):
            GpuCostModel(device_saturation_block=0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            GpuCostModel(min_efficiency=0.0)
        with pytest.raises(ValueError):
            GpuCostModel(min_efficiency=1.5)

    def test_unpack_penalty_below_one_rejected(self):
        with pytest.raises(ValueError):
            GpuCostModel(unpack_penalty=0.5)


class TestMemcpy:
    def test_latency_floor(self):
        cost = SUMMIT_GPU
        assert cost.memcpy_d2d_time(0) == pytest.approx(cost.memcpy_call_s)

    def test_bandwidth_term_scales_linearly(self):
        cost = SUMMIT_GPU
        one = cost.memcpy_d2d_time(1 << 20) - cost.memcpy_call_s
        two = cost.memcpy_d2d_time(2 << 20) - cost.memcpy_call_s
        assert two == pytest.approx(2 * one)

    def test_d2h_slower_than_d2d_for_large_copies(self):
        cost = SUMMIT_GPU
        nbytes = 64 << 20
        assert cost.memcpy_d2h_time(nbytes) > cost.memcpy_d2d_time(nbytes)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SUMMIT_GPU.memcpy_d2d_time(-1)

    def test_h2h_much_cheaper_latency(self):
        assert SUMMIT_GPU.memcpy_h2h_time(0) < SUMMIT_GPU.memcpy_call_s


class TestCoalescingEfficiency:
    def test_saturates_at_saturation_block(self):
        cost = SUMMIT_GPU
        assert cost.coalescing_efficiency(cost.device_saturation_block, cost.device_saturation_block) == 1.0
        assert cost.coalescing_efficiency(4 * cost.device_saturation_block, cost.device_saturation_block) == 1.0

    def test_monotonic_in_block_length(self):
        cost = SUMMIT_GPU
        effs = [cost.coalescing_efficiency(b, 128) for b in (1, 2, 8, 32, 64, 128)]
        assert effs == sorted(effs)

    def test_floor_applies_to_tiny_blocks(self):
        cost = SUMMIT_GPU
        assert cost.coalescing_efficiency(1, 1024) >= cost.min_efficiency

    def test_zero_block_rejected(self):
        with pytest.raises(ValueError):
            SUMMIT_GPU.coalescing_efficiency(0, 128)


class TestKernelTime:
    def test_launch_floor_for_empty_kernel(self):
        cost = SUMMIT_GPU
        duration = cost.kernel_time(0, 1, target="device")
        assert duration == pytest.approx(cost.kernel_launch_s + cost.kernel_sync_s)

    def test_unpack_slower_than_pack(self):
        cost = SUMMIT_GPU
        pack = cost.kernel_time(1 << 20, 8, target="device", unpack=False)
        unpack = cost.kernel_time(1 << 20, 8, target="device", unpack=True)
        assert unpack > pack

    def test_small_blocks_slower_than_large_blocks(self):
        """The Fig. 10 effect: short contiguous runs waste bandwidth."""
        cost = SUMMIT_GPU
        small = cost.kernel_time(1 << 20, 1, target="device")
        large = cost.kernel_time(1 << 20, 256, target="device")
        assert small > large

    def test_device_saturates_later_than_zero_copy(self):
        """One-shot saturates at 32 B, device at 128 B (Sec. 6.3)."""
        assert SUMMIT_GPU.device_saturation_block > SUMMIT_GPU.zero_copy_saturation_block

    def test_device_beats_host_for_saturated_blocks(self):
        cost = SUMMIT_GPU
        device = cost.kernel_time(4 << 20, 256, target="device")
        host = cost.kernel_time(4 << 20, 256, target="host")
        assert device < host

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            SUMMIT_GPU.kernel_time(1024, 8, target="weird")

    def test_sync_can_be_excluded(self):
        cost = SUMMIT_GPU
        with_sync = cost.kernel_time(1024, 8)
        without = cost.kernel_time(1024, 8, include_sync=False)
        assert with_sync - without == pytest.approx(cost.kernel_sync_s)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SUMMIT_GPU.kernel_time(-1, 8)


class TestOverridesAndPresets:
    def test_with_overrides_returns_new_model(self):
        base = SUMMIT_GPU
        fast = base.with_overrides(kernel_launch_s=0.0)
        assert fast.kernel_launch_s == 0.0
        assert base.kernel_launch_s > 0.0

    def test_free_model_has_no_launch_cost(self):
        assert FREE_GPU.kernel_launch_s == 0.0
        assert FREE_GPU.memcpy_call_s == 0.0

    def test_free_model_kernel_time_negligible(self):
        assert FREE_GPU.kernel_time(1 << 30, 1) < 1e-12
