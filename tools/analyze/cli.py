"""The simlint command line: ``python -m tools.analyze`` / ``repro lint``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from tools.analyze.core import RULE_CODES, run_lint


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` (default: cwd) to the directory holding simlint."""
    current = (start if start is not None else Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "tools" / "analyze" / "__init__.py").is_file():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    """The ``simlint`` argument surface."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "determinism lint for the TEMPI reproduction "
            "(SIM001-SIM005; see tools/analyze/__init__.py for the rule table)"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root to lint (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--select",
        nargs="*",
        choices=RULE_CODES,
        default=None,
        help="restrict the report to these rule codes",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the lint pass; exit 1 when any rule fired."""
    args = build_parser().parse_args(argv)
    root = args.root if args.root is not None else find_repo_root()
    if root is None or not (root / "src").is_dir():
        print(
            "simlint: cannot locate a repository root (need <root>/src); "
            "pass --root",
            file=sys.stderr,
        )
        return 2
    violations = run_lint(root.resolve(), select=args.select)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"simlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("simlint: clean")
    return 0
