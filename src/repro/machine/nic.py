"""The virtual NIC timeline: shared injection-port and link occupancy.

Before this module existed, the wire was priced *per plan*: the plan executor
kept a local ``nic_free`` cursor for the duration of one collective, so two
plans in flight at once (two ``Ialltoallv``s, a burst of ``Isend``s) never
contended for the NIC and the simulator over-reported the overlap win exactly
where injection-rate limits should bite.  :class:`NicTimeline` is the shared
ledger that makes the accounting honest:

* every rank owns one **injection port**; all messages a rank injects —
  across plans, across operations — serialise on it at
  :data:`~repro.machine.network.DEFAULT_WIRE_OVERLAP` occupancy (the same
  factor the analytic all-to-all-v model discounts by, so single-plan pricing
  is unchanged);
* every directed ``(source, destination)`` pair is a **link** on which
  messages serialise *fully*: two messages from one rank to the same peer
  share everything end to end and cannot pipeline the way messages to
  distinct peers can.

The timeline is deliberately source-scoped: a rank's reservations depend only
on its *own* call order, never on the wall-clock interleaving of other rank
threads, which keeps the simulation deterministic.  Remote (receive-side)
contention is therefore not modelled; the injection port is where the paper's
Fig. 14-style overlap saturates first anyway.

One timeline is shared by all ranks of a :class:`~repro.mpi.world.World`
(it hangs off ``world.nic``); the :class:`~repro.tempi.progress.ProgressEngine`
reserves slots on it when ``TempiConfig(progress="shared")`` is active.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.machine.network import DEFAULT_WIRE_OVERLAP


class NicError(ValueError):
    """An impossible reservation was requested."""


@dataclass(frozen=True)
class NicReservation:
    """Outcome of placing one message on the timeline."""

    #: Virtual time the message starts occupying the port (>= ready time).
    start: float
    #: Virtual time the last byte lands at the destination.
    arrival: float
    #: Seconds the message waited on port/link occupancy beyond its ready time.
    stalled_s: float

    @property
    def stalled(self) -> bool:
        """True when NIC contention delayed the injection."""
        return self.stalled_s > 0.0


@dataclass(frozen=True)
class LinkRecord:
    """One ledger entry: a message that occupied a link."""

    source: int
    dest: int
    start: float
    arrival: float
    nbytes: int


class NicTimeline:
    """Per-rank injection ports plus a per-link occupancy ledger.

    Thread-safe: ranks run on threads and reserve concurrently.  Each port is
    only ever advanced by its owning rank, so per-rank virtual timing stays
    deterministic; the lock merely keeps the shared dictionaries coherent.
    """

    def __init__(
        self,
        *,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        ledger_limit: int = 4096,
    ) -> None:
        if not 0 < wire_overlap <= 1:
            raise NicError(f"wire_overlap must be in (0, 1], got {wire_overlap}")
        if ledger_limit < 0:
            raise NicError(f"ledger_limit must be non-negative, got {ledger_limit}")
        self.wire_overlap = wire_overlap
        self.ledger_limit = ledger_limit
        self._ports: dict[int, float] = {}
        self._links: dict[tuple[int, int], float] = {}
        self._ledger: deque[LinkRecord] = deque(maxlen=ledger_limit or 1)
        self._lock = threading.Lock()
        self.reservations = 0
        self.stalls = 0
        self.stalled_s = 0.0

    # ---------------------------------------------------------------- reserve
    def reserve(self, source: int, dest: int, ready: float, wire_s: float, nbytes: int = 0) -> NicReservation:
        """Place one message of ``wire_s`` seconds on the timeline.

        The message starts at the latest of its ``ready`` time, the source's
        injection-port free time and the ``(source, dest)`` link free time.
        The port is occupied for ``wire_overlap * wire_s`` (messages to
        distinct peers pipeline); the link for the full ``wire_s`` (messages
        to the same peer serialise end to end).
        """
        if wire_s < 0:
            raise NicError(f"wire time must be non-negative, got {wire_s}")
        with self._lock:
            port = self._ports.get(source, 0.0)
            link_key = (source, dest)
            link = self._links.get(link_key, 0.0)
            start = max(ready, port, link)
            arrival = start + wire_s
            self._ports[source] = start + self.wire_overlap * wire_s
            self._links[link_key] = arrival
            self.reservations += 1
            stalled = start - ready
            if stalled > 0:
                self.stalls += 1
                self.stalled_s += stalled
            if self.ledger_limit:
                # deque(maxlen=...) drops the oldest record in O(1).
                self._ledger.append(LinkRecord(source, dest, start, arrival, int(nbytes)))
            return NicReservation(start=start, arrival=arrival, stalled_s=max(0.0, stalled))

    # ------------------------------------------------------------- inspection
    def port_free_at(self, rank: int) -> float:
        """Virtual time rank ``rank``'s injection port next frees up."""
        with self._lock:
            return self._ports.get(rank, 0.0)

    def link_free_at(self, source: int, dest: int) -> float:
        """Virtual time the ``(source, dest)`` link next frees up."""
        with self._lock:
            return self._links.get((source, dest), 0.0)

    def in_flight(self, at: float, *, source: int | None = None) -> int:
        """Ledger query: messages occupying the wire at virtual time ``at``."""
        with self._lock:
            return sum(
                1
                for record in self._ledger
                if record.start <= at < record.arrival
                and (source is None or record.source == source)
            )

    def ledger(self, *, source: int | None = None) -> list[LinkRecord]:
        """A snapshot of the (bounded) reservation ledger."""
        with self._lock:
            return [r for r in self._ledger if source is None or r.source == source]

    # -------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Forget all occupancy (between benchmark repetitions)."""
        with self._lock:
            self._ports.clear()
            self._links.clear()
            self._ledger.clear()
            self.reservations = 0
            self.stalls = 0
            self.stalled_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NicTimeline ports={len(self._ports)} links={len(self._links)} "
            f"reservations={self.reservations} stalls={self.stalls}>"
        )
