"""Fallback behaviour of the interposer for datatypes TEMPI does not handle.

The paper lists indexed/struct handling as future work: TEMPI commits them
without a handler and every later operation falls through to the system MPI's
block-list path.  These tests pin that behaviour down, because it is what
keeps the interposer safe to deploy under arbitrary applications.
"""

import numpy as np
import pytest

from repro.mpi.constructors import Type_create_struct, Type_indexed, Type_vector
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT, INT
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import TempiCommunicator, interpose


class TestIndexedFallback:
    def test_pack_still_correct(self, summit_model):
        world = World(1)
        ctx = world.contexts[0]
        comm = interpose(ctx, model=summit_model)
        t = comm.Type_commit(Type_indexed([2, 1, 3], [0, 5, 10], FLOAT))
        src = ctx.gpu.malloc(t.extent)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint8)
        dst = ctx.gpu.malloc(t.size)
        comm.Pack((src, 1, t), dst, 0)
        expected = np.concatenate([src.data[0:8], src.data[20:24], src.data[40:52]])
        assert np.array_equal(dst.data, expected)
        # no TEMPI kernel was used for the fallback type
        assert comm.stats.packs == 0
        assert comm.stats.fallbacks >= 1

    def test_send_recv_still_correct(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_indexed([2, 2], [0, 4], INT))
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint8)
                comm.Send((buf, 1, t), dest=1)
                return buf.data.copy()
            comm.Recv((buf, 1, t), source=0)
            return buf.data.copy()

        sent, received = World(2, ranks_per_node=1).run(program)
        assert np.array_equal(received[0:8], sent[0:8])
        assert np.array_equal(received[16:24], sent[16:24])

    def test_struct_fallback_reason_recorded(self, summit_model):
        world = World(1)
        comm = interpose(world.contexts[0], model=summit_model)
        t = comm.Type_commit(Type_create_struct([1, 1], [0, 16], [INT, DOUBLE]))
        handler = TempiCommunicator.handler_of(t)
        assert handler is not None and not handler.accelerated
        assert handler.fallback_reason


class TestDisabledHandling:
    def test_send_handling_off_uses_baseline_path(self, summit_model):
        config = TempiConfig(send_handling=False)

        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = comm.Type_commit(Type_vector(64, 8, 64, BYTE))
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = 7
                comm.Send((buf, 1, t), dest=1)
            else:
                comm.Recv((buf, 1, t), source=0)
                for i in range(64):
                    assert (buf.data[i * 64 : i * 64 + 8] == 7).all()
            return comm.stats.sends

        sends = World(2, ranks_per_node=1).run(program)
        assert sends == [0, 0]

    def test_datatype_handling_off_still_commits(self, summit_model):
        world = World(1)
        comm = interpose(
            world.contexts[0], TempiConfig(datatype_handling=False), model=summit_model
        )
        t = comm.Type_commit(Type_vector(4, 4, 8, BYTE))
        assert t.committed
        assert TempiCommunicator.handler_of(t) is None

    def test_forced_staged_method_works_end_to_end(self, summit_model):
        config = TempiConfig(method=PackMethod.STAGED)

        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = comm.Type_commit(Type_vector(128, 16, 64, BYTE))
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint16).astype(np.uint8)
                comm.Send((buf, 1, t), dest=1)
                return buf.data.copy()
            comm.Recv((buf, 1, t), source=0)
            return buf.data.copy()

        sent, received = World(2, ranks_per_node=1).run(program)
        for i in range(128):
            begin = i * 64
            assert np.array_equal(received[begin : begin + 16], sent[begin : begin + 16])
