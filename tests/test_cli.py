"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestMeasureCommand:
    def test_writes_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        assert main(["measure", "--output", str(output)]) == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["machine_name"] == "summit-like"
        assert "wrote" in capsys.readouterr().out


class TestPredictCommand:
    def test_predict_from_measurement_file(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        main(["measure", "--output", str(output)])
        code = main(
            ["predict", "--measurement", str(output), "--size", str(1 << 20), "--block", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "T_oneshot" in out and "T_device" in out and "selected method" in out
        assert "device" in out or "oneshot" in out

    def test_small_object_selects_oneshot(self, tmp_path, capsys):
        output = tmp_path / "m.json"
        main(["measure", "--output", str(output)])
        main(["predict", "--measurement", str(output), "--size", "1024", "--block", "8"])
        assert "selected method : oneshot" in capsys.readouterr().out

    def test_invalid_arguments_return_error(self, capsys):
        assert main(["predict", "--size", "0", "--block", "8"]) == 2
        assert "must be positive" in capsys.readouterr().err


class TestHaloCommand:
    def test_paper_scale_point(self, capsys):
        assert main(["halo", "--nodes", "8", "--ranks-per-node", "6"]) == 0
        out = capsys.readouterr().out
        assert "48 ranks" in out
        assert "speedup" in out

    def test_custom_domain(self, capsys):
        assert main(["halo", "--nodes", "2", "--ranks-per-node", "2", "--points", "64"]) == 0
        assert "64^3 points/rank" in capsys.readouterr().out

    def test_invalid_scale_rejected(self, capsys):
        assert main(["halo", "--nodes", "0"]) == 2


class TestSelectTableCommand:
    @pytest.fixture(scope="class")
    def measurement_file(self, tmp_path_factory):
        output = tmp_path_factory.mktemp("cli") / "m.json"
        main(["measure", "--output", str(output)])
        return output

    def test_contention_free_table(self, measurement_file, capsys):
        code = main([
            "select-table", "--measurement", str(measurement_file),
            "--sizes", "1024", "4096", "--blocks", "1", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "contention-free" in out
        assert "oneshot" in out and "device" in out

    def test_backlog_moves_the_crossover(self, measurement_file, capsys):
        args = ["select-table", "--measurement", str(measurement_file),
                "--sizes", "4096", "--blocks", "1"]
        main(args)
        idle = capsys.readouterr().out
        assert "device" in idle
        main(args + ["--plans", "4"])
        loaded = capsys.readouterr().out
        assert "4 concurrent plans" in loaded
        assert "oneshot" in loaded and "device" not in loaded.splitlines()[-1]

    def test_invalid_arguments_return_error(self, measurement_file, capsys):
        assert main(["select-table", "--measurement", str(measurement_file),
                     "--plans", "-1"]) == 2
        assert main(["select-table", "--measurement", str(measurement_file),
                     "--sizes", "0"]) == 2
        assert main(["select-table", "--measurement", str(measurement_file),
                     "--incast", "-1"]) == 2

    def test_incast_flips_and_names_the_binding_port(self, measurement_file, capsys):
        """The docs' worked example: a hot receiver flips the 4 KiB cell and
        every loaded cell is annotated with the port that bound it."""
        args = ["select-table", "--measurement", str(measurement_file),
                "--sizes", "4096", "--blocks", "1"]
        main(args + ["--nic", "duplex", "--incast", "4"])
        loaded = capsys.readouterr().out
        assert "ingestion backlog" in loaded
        assert "oneshot/ing" in loaded

    def test_inject_only_ignores_the_receive_side(self, measurement_file, capsys):
        """The PR-4 ablation prices the send side only: --incast is inert and
        the idle table comes back."""
        args = ["select-table", "--measurement", str(measurement_file),
                "--sizes", "4096", "--blocks", "1"]
        main(args)
        idle = capsys.readouterr().out
        main(args + ["--nic", "inject_only", "--incast", "4"])
        ablated = capsys.readouterr().out
        assert "ignored" in ablated
        assert idle.splitlines()[-1] == ablated.splitlines()[-1]

    def test_link_busy_binds_the_link(self, measurement_file, capsys):
        main(["select-table", "--measurement", str(measurement_file),
              "--sizes", "4096", "--blocks", "1", "--link-busy", "4"])
        assert "/lnk" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
