"""Virtual time.

All simulated components (the CUDA runtime, the MPI engine, the network
model) account for time on a :class:`VirtualClock` instead of the wall clock.
This keeps the reproduction deterministic and lets a single laptop "measure"
latencies that on Summit required thousands of GPUs: a benchmark simply runs
the functional code and reads how far the clock advanced.

A clock is a plain monotonically non-decreasing float of seconds.  Streams
and remote ranks keep their own completion times; synchronisation points
advance the host clock with :meth:`VirtualClock.advance_to`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockError(RuntimeError):
    """Raised when a clock would be moved backwards by ``advance``."""


@dataclass
class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    now:
        Current simulated time in seconds.  Defaults to 0.
    """

    now: float = 0.0
    _events: int = field(default=0, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time.
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative time {seconds!r}")
        self.now += float(seconds)
        self._events += 1
        return self.now

    def advance_to(self, when: float) -> float:
        """Advance the clock to ``when`` if ``when`` is in the future.

        Unlike :meth:`advance`, moving to a time in the past is a no-op: this
        is the semantics of waiting on something that already completed.
        Returns the new time.
        """
        if when > self.now:
            self.now = float(when)
            self._events += 1
        return self.now

    def reset(self, to: float = 0.0) -> None:
        """Reset the clock (used between benchmark repetitions)."""
        self.now = float(to)
        self._events = 0

    @property
    def events(self) -> int:
        """Number of advancements applied; useful for overhead accounting tests."""
        return self._events

    def elapsed_since(self, start: float) -> float:
        """Convenience: ``now - start``."""
        return self.now - start


class ClockRegion:
    """Context manager measuring elapsed virtual time on a clock.

    Example
    -------
    >>> clock = VirtualClock()
    >>> with ClockRegion(clock) as region:
    ...     _ = clock.advance(1e-6)
    >>> region.elapsed
    1e-06
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ClockRegion":
        self.start = self._clock.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self._clock.now - self.start
