"""The per-file simlint rules: SIM001, SIM003 and SIM005.

Each rule is a callable ``rule(source_file) -> list[Violation]``; the driver
in :mod:`tools.analyze.core` runs every entry of :data:`FILE_RULES` over
every parsed file and handles suppressions afterwards, so the rules report
unconditionally.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from tools.analyze.core import SourceFile, Violation

# --------------------------------------------------------------------------- #
# SIM001 — no wall-clock or random on priced paths
# --------------------------------------------------------------------------- #

#: Exact dotted names whose *call* reads the host clock.  Anything priced
#: must advance virtual clocks only; host time belongs behind the
#: ``repro.tempi.measurement`` seam.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module prefixes whose every call is a nondeterminism source.
RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Files allowed to read the host clock: the measurement seam (which owns
#: the wall-clock boundary) and the simulator's own benchmark harness
#: (which times the *simulator*, not the simulation).
SIM001_WHITELIST_EXACT = frozenset({"src/repro/tempi/measurement.py"})
SIM001_WHITELIST_PREFIXES = ("src/repro/bench/",)


class _ImportMap(ast.NodeVisitor):
    """Resolve local names back to the dotted module paths they import."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        """Record ``import x.y [as z]`` aliases."""
        for alias in node.names:
            local = alias.asname if alias.asname else alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.names[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record ``from x import y [as z]`` aliases (absolute imports only)."""
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname if alias.asname else alias.name
            self.names[local] = f"{node.module}.{alias.name}"


def _dotted_name(node: ast.expr, imports: _ImportMap) -> Optional[str]:
    """The import-resolved dotted path of a Name/Attribute chain, if any."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = imports.names.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def check_wall_clock(source_file: SourceFile) -> list[Violation]:
    """SIM001: flag wall-clock and ``random`` calls outside the whitelist."""
    relpath = source_file.relpath
    if not relpath.startswith("src/"):
        return []
    if relpath in SIM001_WHITELIST_EXACT or relpath.startswith(
        SIM001_WHITELIST_PREFIXES
    ):
        return []
    tree = source_file.tree
    if tree is None:
        return []
    imports = _ImportMap()
    imports.visit(tree)
    findings: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func, imports)
        if name is None:
            continue
        if name in WALL_CLOCK_CALLS:
            findings.append(
                Violation(
                    relpath,
                    node.lineno,
                    "SIM001",
                    f"wall-clock call `{name}` on a priced path; host timing "
                    "belongs behind the repro.tempi.measurement seam",
                )
            )
        elif name.startswith(RANDOM_PREFIXES) or name == "random":
            findings.append(
                Violation(
                    relpath,
                    node.lineno,
                    "SIM001",
                    f"random-source call `{name}` on a priced path; priced "
                    "results must be reproducible",
                )
            )
    return findings


# --------------------------------------------------------------------------- #
# SIM003 — no unordered iteration feeding clock arithmetic
# --------------------------------------------------------------------------- #

#: Modules whose loops feed virtual clocks: the priced core.
SIM003_SCOPE_PREFIXES = ("src/repro/machine/", "src/repro/tempi/")

#: Terminal names of the rank-keyed ledger dictionaries whose *insertion*
#: order is wall-clock-dependent (threads interleave their inserts); loops
#: that accumulate over their views must sort by an explicit key first.
#: The topology maps (NIC-rail and shared-uplink cursors, the memoised path
#: cache) are rank/rail-keyed the same way: first-use order is scheduling.
RANK_KEYED_DICTS = frozenset(
    {
        "_ports",
        "_links",
        "_ingest_ports",
        "_seqs",
        "_pending",
        "pending",
        "_batches",
        "batches",
        "_rail_ports",
        "_ingest_rails",
        "_shared_links",
        "_paths",
        # Batch-booking grouping maps: per-equivalence-class counts captured
        # on plan templates and folded into the stats books by the batched
        # replay.  The classes themselves are discovered in transcript order,
        # but the maps are plain dicts — any loop that accumulates over their
        # views must sort by an explicit key first.
        "_steady_counts",
        "method_counts",
    }
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``self._pending`` → ``_pending``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_unordered_set(node: ast.expr) -> bool:
    """True for set displays, set comprehensions and ``set()``/``frozenset()`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_rank_keyed_view(node: ast.expr) -> bool:
    """True when ``node`` iterates a watched ledger dict or one of its views."""
    if _terminal_name(node) in RANK_KEYED_DICTS:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and _terminal_name(node.func.value) in RANK_KEYED_DICTS
    ):
        return True
    return False


def _accumulates(body: list[ast.stmt]) -> bool:
    """True when a loop body carries state across iterations (order matters).

    Two shapes count: an augmented arithmetic assignment (``x += ...``) and a
    plain assignment whose right-hand side reads its own target (the
    ``port = max(port, ...)`` recurrence shape).
    """
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = _terminal_name(node.targets[0])
                if target is None:
                    continue
                reads = {
                    _terminal_name(sub)
                    for sub in ast.walk(node.value)
                    if isinstance(sub, (ast.Name, ast.Attribute))
                }
                if target in reads:
                    return True
    return False


def check_unordered_iteration(source_file: SourceFile) -> list[Violation]:
    """SIM003: flag order-sensitive loops over unordered/rank-keyed iterables."""
    relpath = source_file.relpath
    if not relpath.startswith(SIM003_SCOPE_PREFIXES):
        return []
    tree = source_file.tree
    if tree is None:
        return []
    findings: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            iterable = node.iter
            if (
                _is_unordered_set(iterable) or _is_rank_keyed_view(iterable)
            ) and _accumulates(node.body):
                findings.append(
                    Violation(
                        relpath,
                        node.lineno,
                        "SIM003",
                        "iteration order feeds clock arithmetic; serve in an "
                        "explicit order (e.g. sorted by `(post_time, source, seq)`)",
                    )
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if _is_unordered_set(generator.iter):
                    findings.append(
                        Violation(
                            relpath,
                            node.lineno,
                            "SIM003",
                            "comprehension over an unordered set in the priced "
                            "core; sort by an explicit key first",
                        )
                    )
    return findings


# --------------------------------------------------------------------------- #
# SIM005 — float accumulation in ledger loops must use the ledger helper
# --------------------------------------------------------------------------- #

#: The two files owning port/ledger loops, where accumulation order is the
#: determinism contract itself.
SIM005_SCOPE = frozenset({"src/repro/machine/nic.py", "src/repro/tempi/progress.py"})

#: The sanctioned ordering-stable summation helpers (a strict left fold over
#: an explicitly ordered sequence).  The helper bodies are exempt — they are
#: the one place the fold loop is allowed to live.
LEDGER_HELPERS = frozenset({"ledger_sum"})

#: Virtual-seconds accumulator shapes: the repo-wide ``*_s`` suffix plus the
#: cursor names the port recurrences use.
_FLOAT_ACCUMULATOR = re.compile(r"(_s$)|(^port$)|(^cursor$)|(^total$)|(^serial$)")


def _enclosing_helpers(tree: ast.Module) -> set[int]:
    """Line spans (as a set of line numbers) of the ledger-helper bodies."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in LEDGER_HELPERS and node.end_lineno is not None:
                lines.update(range(node.lineno, node.end_lineno + 1))
    return lines


def _loops(tree: ast.Module) -> Iterator[ast.stmt]:
    """Every ``for``/``while`` statement in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            yield node


def check_ledger_accumulation(source_file: SourceFile) -> list[Violation]:
    """SIM005: flag ``+=`` float accumulation inside ledger/port loops."""
    relpath = source_file.relpath
    if relpath not in SIM005_SCOPE:
        return []
    tree = source_file.tree
    if tree is None:
        return []
    helper_lines = _enclosing_helpers(tree)
    findings: list[Violation] = []
    for loop in _loops(tree):
        assert isinstance(loop, (ast.For, ast.While))
        for node in ast.walk(loop):
            if not isinstance(node, ast.AugAssign) or not isinstance(node.op, ast.Add):
                continue
            if node.lineno in helper_lines:
                continue
            target = _terminal_name(node.target)
            if target is None or not _FLOAT_ACCUMULATOR.search(target):
                continue
            findings.append(
                Violation(
                    relpath,
                    node.lineno,
                    "SIM005",
                    f"float accumulation `{target} +=` inside a ledger loop; "
                    "collect the terms and fold them with `ledger_sum` "
                    "(ordering-stable summation)",
                )
            )
    return findings


#: The per-file rules the driver runs, in reporting order.
FILE_RULES = (
    check_wall_clock,
    check_unordered_iteration,
    check_ledger_accumulation,
)
