"""Repository tooling (link checker, golden-fixture maker, simlint)."""
