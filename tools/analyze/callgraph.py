"""A pragmatic intra-project call graph for the SIM002 reachability check.

The graph is built from the AST alone (no imports are executed): nodes are
``module:qualname`` strings for every function and method defined under
``src/repro``, and edges follow the calls the AST can resolve statically —

* bare names to same-module functions and ``from``-imported project
  functions,
* ``self.method(...)`` (and ``super().method(...)``) through the defining
  class and its project-resolvable bases,
* ``module.function(...)`` through ``import``ed project modules.

Dynamic dispatch through arbitrary receivers is deliberately *not* chased —
SIM002 inspects the bodies of the functions the graph proves reachable, so
an unresolvable edge narrows coverage rather than inventing false paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from tools.analyze.core import SourceFile


def module_name(relpath: str) -> Optional[str]:
    """``src/repro/tempi/selection.py`` → ``repro.tempi.selection``."""
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One defined function/method and the raw call sites in its body."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: str
    qualname: str
    class_name: Optional[str]

    @property
    def key(self) -> str:
        """The graph node id, ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclass
class ModuleInfo:
    """Per-module symbol tables the edge resolver consults."""

    name: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    class_bases: dict[str, list[str]] = field(default_factory=dict)


class CallGraph:
    """The project call graph plus reachability queries."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, set[str]] = {}

    # ----------------------------------------------------------------- build
    @classmethod
    def build(cls, files: Iterable[SourceFile]) -> "CallGraph":
        """Index every project file, then resolve call edges."""
        graph = cls()
        indexed: list[tuple[ModuleInfo, SourceFile]] = []
        for source_file in files:
            name = module_name(source_file.relpath)
            if name is None or source_file.tree is None:
                continue
            info = graph._index_module(name, source_file.tree)
            graph.modules[name] = info
            indexed.append((info, source_file))
        for info, _ in indexed:
            for function in info.functions.values():
                graph.edges[function.key] = graph._resolve_edges(info, function)
        return graph

    def _index_module(self, name: str, tree: ast.Module) -> ModuleInfo:
        """Collect imports, functions, methods and class bases of one module."""
        info = ModuleInfo(name=name)
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname if alias.asname else alias.name
                    info.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function = FunctionInfo(node, name, node.name, None)
                info.functions[function.qualname] = function
                self.functions[function.key] = function
            elif isinstance(node, ast.ClassDef):
                bases: list[str] = []
                for base in node.bases:
                    base_name = _expr_name(base)
                    if base_name is not None:
                        bases.append(info.imports.get(base_name, base_name))
                info.class_bases[node.name] = bases
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        function = FunctionInfo(
                            item, name, f"{node.name}.{item.name}", node.name
                        )
                        info.functions[function.qualname] = function
                        self.functions[function.key] = function
        return info

    # --------------------------------------------------------------- resolve
    def _method_key(
        self, module: str, class_name: str, method: str
    ) -> Optional[str]:
        """Resolve ``class_name.method`` through the project MRO (by name)."""
        seen: set[str] = set()
        queue: list[tuple[str, str]] = [(module, class_name)]
        while queue:
            mod, cls = queue.pop(0)
            if (mod, cls) in seen or mod not in self.modules:
                continue
            seen.add((mod, cls))
            info = self.modules[mod]
            candidate = info.functions.get(f"{cls}.{method}")
            if candidate is not None:
                return candidate.key
            for base in info.class_bases.get(cls, []):
                if "." in base:
                    base_module, _, base_cls = base.rpartition(".")
                    queue.append((base_module, base_cls))
                else:
                    queue.append((mod, base))
        return None

    def _resolve_edges(self, info: ModuleInfo, function: FunctionInfo) -> set[str]:
        """The statically resolvable callees of one function body."""
        targets: set[str] = set()
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                target = self._resolve_bare_name(info, func.id)
                if target is not None:
                    targets.add(target)
            elif isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name) and value.id == "self":
                    if function.class_name is not None:
                        key = self._method_key(
                            info.name, function.class_name, func.attr
                        )
                        if key is not None:
                            targets.add(key)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "super"
                    and function.class_name is not None
                ):
                    for base in info.class_bases.get(function.class_name, []):
                        if "." in base:
                            base_module, _, base_cls = base.rpartition(".")
                        else:
                            base_module, base_cls = info.name, base
                        key = self._method_key(base_module, base_cls, func.attr)
                        if key is not None:
                            targets.add(key)
                elif isinstance(value, ast.Name):
                    dotted = info.imports.get(value.id)
                    if dotted is not None and dotted in self.modules:
                        candidate = self.modules[dotted].functions.get(func.attr)
                        if candidate is not None:
                            targets.add(candidate.key)
        return targets

    def _resolve_bare_name(self, info: ModuleInfo, name: str) -> Optional[str]:
        """A bare-name call: same-module function or ``from``-imported one."""
        local = info.functions.get(name)
        if local is not None:
            return local.key
        dotted = info.imports.get(name)
        if dotted is None:
            return None
        target_module, _, symbol = dotted.rpartition(".")
        target = self.modules.get(target_module)
        if target is None:
            return None
        # A class name resolves to its constructor chain; a function to itself.
        function = target.functions.get(symbol) or target.functions.get(
            f"{symbol}.__init__"
        )
        return function.key if function is not None else None

    # ------------------------------------------------------------ reachability
    def reachable_from_module(self, module: str) -> set[str]:
        """Every function key reachable from any function of ``module``."""
        info = self.modules.get(module)
        if info is None:
            return set()
        frontier = [function.key for function in info.functions.values()]
        seen: set[str] = set(frontier)
        while frontier:
            key = frontier.pop()
            for target in self.edges.get(key, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen


def _expr_name(node: ast.expr) -> Optional[str]:
    """The identifier of a Name, or the terminal attribute of a chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
