"""Unit tests for the static determinism lint (``tools/analyze``)."""
