"""Property-based test: the small-plan batcher never changes what arrives.

For random bursts of sub-eager strided ``Isend``s (random message count,
datatype shape, payload seeds and wait order), the bytes landed by the
batched engine must equal the unbatched shared engine and the PR-2 per-plan
engine byte for byte — coalescing plans into one wire message may only change
*when* the wire is occupied, never the delivered payloads, their tags or
their ordering.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose


@st.composite
def burst_cases(draw):
    """A burst of small strided messages plus a completion-order choice."""
    nmessages = draw(st.integers(min_value=1, max_value=6))
    nblocks = draw(st.integers(min_value=1, max_value=8))
    block = draw(st.integers(min_value=1, max_value=16))
    gap = draw(st.integers(min_value=1, max_value=16))  # >0: stays strided
    seed = draw(st.integers(min_value=0, max_value=2**31))
    wait_first = draw(st.booleans())  # Waitall up front vs Test-then-Waitall
    return nmessages, nblocks, block, block + gap, seed, wait_first


def _run_burst(config, summit_model, nmessages, nblocks, block, pitch, seed, wait_first):
    def program(ctx):
        comm = interpose(ctx, config, model=summit_model)
        datatype = comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))
        bufs = [ctx.gpu.malloc(datatype.extent) for _ in range(nmessages)]
        if ctx.rank == 0:
            rng = np.random.default_rng(seed)
            for buf in bufs:
                buf.data[:] = rng.integers(0, 256, size=buf.nbytes, dtype=np.uint8)
            requests = [
                comm.Isend((buf, 1, datatype), dest=1, tag=tag)
                for tag, buf in enumerate(bufs)
            ]
            if not wait_first:
                Request.Testall(requests)
            Request.Waitall(requests)
            return [buf.data.copy() for buf in bufs]
        received = []
        for tag, buf in enumerate(bufs):
            comm.Recv((buf, 1, datatype), source=0, tag=tag)
            received.append(buf.data.copy())
        return received

    return World(2, ranks_per_node=1).run(program)


@given(burst_cases())
@settings(max_examples=20, deadline=None)
def test_batched_delivery_is_byte_identical(summit_model, case):
    nmessages, nblocks, block, pitch, seed, wait_first = case
    batched = _run_burst(
        TempiConfig(), summit_model, nmessages, nblocks, block, pitch, seed, wait_first
    )
    unbatched = _run_burst(
        TempiConfig(batch_eager_sends=False),
        summit_model, nmessages, nblocks, block, pitch, seed, wait_first,
    )
    per_plan = _run_burst(
        TempiConfig(progress="per_plan"),
        summit_model, nmessages, nblocks, block, pitch, seed, wait_first,
    )
    for engine in (unbatched, per_plan):
        for mine, theirs in zip(batched[1], engine[1]):
            assert np.array_equal(mine, theirs)
    # What the receiver's strided elements hold is exactly what was sent.
    for sent, landed in zip(batched[0], batched[1]):
        for start in range(0, nblocks * pitch, pitch):
            assert np.array_equal(sent[start : start + block], landed[start : start + block])
