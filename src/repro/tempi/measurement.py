"""System measurements (the "measurement binary", Sec. 4 / Sec. 6.3).

TEMPI ships a binary that is run once per system before the library is used:
it measures the latency of the primitives the performance model needs —
``T_cpu-cpu`` and ``T_gpu-gpu`` ping-pongs, ``T_d2h``/``T_h2d`` bulk copies,
and pack/unpack latency as a function of object size and contiguous-block
length for both the *device* and the *one-shot* strategies — and writes them
to the file system.  :func:`measure_system` is that binary for the simulated
machine: it exercises the same code paths (the simulated MPI for ping-pongs,
the simulated CUDA runtime for copies and kernels) and records virtual-time
latencies.

The result, :class:`SystemMeasurement`, is a plain serialisable container; the
:class:`~repro.tempi.perf_model.PerformanceModel` interpolates it at runtime.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.gpu.cost_model import GpuCostModel
from repro.gpu.memory import MemoryKind
from repro.gpu.runtime import CudaRuntime
from repro.machine.network import NetworkModel
from repro.machine.spec import SUMMIT, MachineSpec
from repro.tempi.packer import Packer
from repro.tempi.strided_block import StridedBlock

#: Default sweep: message/object sizes from 1 B to 4 MiB in powers of two.
DEFAULT_SIZES = tuple(1 << p for p in range(0, 23))
#: Default contiguous-block lengths for the pack/unpack tables (Fig. 10).
DEFAULT_BLOCKS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
#: Pitch used between contiguous runs while measuring, as in Fig. 8 (512 B),
#: widened when the block itself is larger.
MEASUREMENT_PITCH = 512


def host_timer() -> float:
    """Read the host's monotonic wall clock, in seconds.

    The one sanctioned wall-clock seam: everything *priced* runs on virtual
    clocks, and simlint's SIM001 bans ``time.*`` reads on those paths — this
    module (together with the benchmark harness) is the whitelist.  Callers
    that want to report how long the *simulator* spent on something
    diagnostic (a ``Type_commit`` translation, a sweep) time it through this
    function, so every wall-clock read in the priced tree funnels through one
    auditable place.
    """
    return time.perf_counter()


@dataclass
class SystemMeasurement:
    """Measured latencies (seconds) of the simulated system."""

    sizes: tuple[int, ...]
    block_lengths: tuple[int, ...]
    t_cpu_cpu: tuple[float, ...]
    t_gpu_gpu: tuple[float, ...]
    t_d2h: tuple[float, ...]
    t_h2d: tuple[float, ...]
    #: Pack/unpack tables indexed ``[block_index][size_index]``.
    t_pack_device: tuple[tuple[float, ...], ...]
    t_unpack_device: tuple[tuple[float, ...], ...]
    t_pack_oneshot: tuple[tuple[float, ...], ...]
    t_unpack_oneshot: tuple[tuple[float, ...], ...]
    machine_name: str = "unknown"
    notes: dict = field(default_factory=dict)

    # ----------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {
            "machine_name": self.machine_name,
            "sizes": list(self.sizes),
            "block_lengths": list(self.block_lengths),
            "t_cpu_cpu": list(self.t_cpu_cpu),
            "t_gpu_gpu": list(self.t_gpu_gpu),
            "t_d2h": list(self.t_d2h),
            "t_h2d": list(self.t_h2d),
            "t_pack_device": [list(row) for row in self.t_pack_device],
            "t_unpack_device": [list(row) for row in self.t_unpack_device],
            "t_pack_oneshot": [list(row) for row in self.t_pack_oneshot],
            "t_unpack_oneshot": [list(row) for row in self.t_unpack_oneshot],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemMeasurement":
        return cls(
            sizes=tuple(payload["sizes"]),
            block_lengths=tuple(payload["block_lengths"]),
            t_cpu_cpu=tuple(payload["t_cpu_cpu"]),
            t_gpu_gpu=tuple(payload["t_gpu_gpu"]),
            t_d2h=tuple(payload["t_d2h"]),
            t_h2d=tuple(payload["t_h2d"]),
            t_pack_device=tuple(tuple(row) for row in payload["t_pack_device"]),
            t_unpack_device=tuple(tuple(row) for row in payload["t_unpack_device"]),
            t_pack_oneshot=tuple(tuple(row) for row in payload["t_pack_oneshot"]),
            t_unpack_oneshot=tuple(tuple(row) for row in payload["t_unpack_oneshot"]),
            machine_name=payload.get("machine_name", "unknown"),
            notes=payload.get("notes", {}),
        )

    def save(self, path: Path | str) -> Path:
        """Write the measurement file (JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SystemMeasurement":
        """Read a measurement file written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -------------------------------------------------------------- inspection
    def as_arrays(self) -> dict[str, np.ndarray]:
        """The measurement as NumPy arrays keyed by curve name."""
        return {
            "sizes": np.asarray(self.sizes, dtype=np.float64),
            "block_lengths": np.asarray(self.block_lengths, dtype=np.float64),
            "t_cpu_cpu": np.asarray(self.t_cpu_cpu),
            "t_gpu_gpu": np.asarray(self.t_gpu_gpu),
            "t_d2h": np.asarray(self.t_d2h),
            "t_h2d": np.asarray(self.t_h2d),
            "t_pack_device": np.asarray(self.t_pack_device),
            "t_unpack_device": np.asarray(self.t_unpack_device),
            "t_pack_oneshot": np.asarray(self.t_pack_oneshot),
            "t_unpack_oneshot": np.asarray(self.t_unpack_oneshot),
        }


# --------------------------------------------------------------------------- #
# The measurement sweep
# --------------------------------------------------------------------------- #

def _measure_transfers(
    machine: MachineSpec, sizes: Sequence[int]
) -> tuple[list[float], list[float], list[float], list[float]]:
    """Measure the four Fig. 9a curves.

    Ping-pong latencies come from the network model (the same code that
    prices every simulated message); copy latencies come from running real
    ``memcpy`` operations on a scratch runtime and reading its clock.
    """
    network = NetworkModel(machine)
    runtime = CudaRuntime(cost_model=machine.node.gpu)
    t_cpu, t_gpu, t_d2h, t_h2d = [], [], [], []
    device_buf = runtime.malloc(max(sizes))
    host_buf = runtime.host_alloc(max(sizes), MemoryKind.HOST_PINNED)
    for size in sizes:
        t_cpu.append(network.message_time(size, same_node=False, device_buffers=False))
        t_gpu.append(network.message_time(size, same_node=False, device_buffers=True))
        start = runtime.clock.now
        runtime.memcpy_async(host_buf, device_buf, size)
        runtime.stream_synchronize()
        t_d2h.append(runtime.clock.now - start)
        start = runtime.clock.now
        runtime.memcpy_async(device_buf, host_buf, size)
        runtime.stream_synchronize()
        t_h2d.append(runtime.clock.now - start)
    return t_cpu, t_gpu, t_d2h, t_h2d


def _measurement_block(size: int, block_length: int) -> Optional[StridedBlock]:
    """The 2-D strided object used to measure pack/unpack at one grid point."""
    block_length = min(block_length, size)
    nblocks = size // block_length
    if nblocks < 1:
        return None
    if nblocks == 1:
        return StridedBlock(start=0, counts=(block_length,), strides=(1,))
    # The simulated kernel cost depends on the block length, not the pitch, so
    # the measurement keeps the footprint bounded (2x the object) instead of
    # using the fixed 512 B pitch of Fig. 8; the resulting tables are the same.
    pitch = 2 * block_length
    return StridedBlock(
        start=0, counts=(block_length, nblocks), strides=(1, pitch)
    )


def _measure_pack_tables(
    gpu_cost: GpuCostModel,
    sizes: Sequence[int],
    blocks: Sequence[int],
) -> tuple[list[list[float]], list[list[float]], list[list[float]], list[list[float]]]:
    """Measure pack/unpack latency for the device and one-shot strategies."""
    pack_dev: list[list[float]] = []
    unpack_dev: list[list[float]] = []
    pack_host: list[list[float]] = []
    unpack_host: list[list[float]] = []
    for block_length in blocks:
        row_pd, row_ud, row_ph, row_uh = [], [], [], []
        for size in sizes:
            shape = _measurement_block(size, block_length)
            if shape is None:
                row_pd.append(0.0)
                row_ud.append(0.0)
                row_ph.append(0.0)
                row_uh.append(0.0)
                continue
            runtime = CudaRuntime(cost_model=gpu_cost)
            packer = Packer(shape, object_extent=shape.start + shape.extent)
            source = runtime.malloc(packer.required_input(1))
            staging_device = runtime.malloc(size)
            staging_host = runtime.host_alloc(size, MemoryKind.HOST_MAPPED)

            start = runtime.clock.now
            packer.pack(runtime, source, staging_device)
            row_pd.append(runtime.clock.now - start)

            start = runtime.clock.now
            packer.unpack(runtime, staging_device, source)
            row_ud.append(runtime.clock.now - start)

            start = runtime.clock.now
            packer.pack(runtime, source, staging_host)
            row_ph.append(runtime.clock.now - start)

            start = runtime.clock.now
            packer.unpack(runtime, staging_host, source)
            row_uh.append(runtime.clock.now - start)
        pack_dev.append(row_pd)
        unpack_dev.append(row_ud)
        pack_host.append(row_ph)
        unpack_host.append(row_uh)
    return pack_dev, unpack_dev, pack_host, unpack_host


def measure_system(
    machine: MachineSpec = SUMMIT,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    block_lengths: Sequence[int] = DEFAULT_BLOCKS,
    path: Optional[Path | str] = None,
) -> SystemMeasurement:
    """Run the full measurement sweep; optionally persist it to ``path``.

    This is the reproduction's equivalent of running TEMPI's measurement
    binary once before using the library (Sec. 6.3).
    """
    sizes = tuple(int(s) for s in sizes)
    block_lengths = tuple(int(b) for b in block_lengths)
    if not sizes or not block_lengths:
        raise ValueError("sizes and block_lengths must be non-empty")
    if any(s <= 0 for s in sizes) or any(b <= 0 for b in block_lengths):
        raise ValueError("sizes and block_lengths must be positive")

    t_cpu, t_gpu, t_d2h, t_h2d = _measure_transfers(machine, sizes)
    pack_dev, unpack_dev, pack_host, unpack_host = _measure_pack_tables(
        machine.node.gpu, sizes, block_lengths
    )
    measurement = SystemMeasurement(
        sizes=sizes,
        block_lengths=block_lengths,
        t_cpu_cpu=tuple(t_cpu),
        t_gpu_gpu=tuple(t_gpu),
        t_d2h=tuple(t_d2h),
        t_h2d=tuple(t_h2d),
        t_pack_device=tuple(tuple(row) for row in pack_dev),
        t_unpack_device=tuple(tuple(row) for row in unpack_dev),
        t_pack_oneshot=tuple(tuple(row) for row in pack_host),
        t_unpack_oneshot=tuple(tuple(row) for row in unpack_host),
        machine_name=machine.name,
        notes={"pitch": MEASUREMENT_PITCH},
    )
    if path is not None:
        measurement.save(path)
    return measurement
