"""Tests for the resource cache (Sec. 5)."""

import pytest

from repro.gpu.cost_model import SUMMIT_GPU
from repro.gpu.memory import MemoryKind
from repro.tempi.cache import ResourceCache


class TestBufferCache:
    def test_miss_allocates_and_charges_time(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        before = summit_runtime.clock.now
        buf = cache.get_buffer(4096, MemoryKind.DEVICE)
        assert buf.is_device
        assert summit_runtime.clock.now - before == pytest.approx(SUMMIT_GPU.alloc_s)
        assert cache.stats.buffer_misses == 1

    def test_hit_is_free(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        buf = cache.get_buffer(4096, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        before = summit_runtime.clock.now
        again = cache.get_buffer(4096, MemoryKind.DEVICE)
        assert again is buf
        assert summit_runtime.clock.now == before
        assert cache.stats.buffer_hits == 1

    def test_disabled_cache_always_misses(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        buf = cache.get_buffer(1024, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        again = cache.get_buffer(1024, MemoryKind.DEVICE)
        assert again is not buf
        assert cache.stats.buffer_hits == 0

    def test_disabled_cache_frees_device_buffers(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        buf = cache.get_buffer(1024, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        assert buf.freed

    def test_pinned_host_buffers_cached_separately(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        pinned = cache.get_buffer(256, MemoryKind.HOST_PINNED)
        cache.put_buffer(pinned)
        mapped = cache.get_buffer(256, MemoryKind.HOST_MAPPED)
        assert mapped is not pinned


class TestStreamCache:
    def test_stream_reuse(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        stream = cache.get_stream()
        cache.put_stream(stream)
        assert cache.get_stream() is stream
        assert cache.stats.stream_hits == 1

    def test_disabled_cache_destroys_streams(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        stream = cache.get_stream()
        cache.put_stream(stream)
        assert cache.get_stream() is not stream


class TestQueryMemoisation:
    def test_compute_called_once(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        calls = []
        compute = lambda: calls.append(1) or 42  # noqa: E731
        assert cache.memoize("key", compute) == 42
        assert cache.memoize("key", compute) == 42
        assert len(calls) == 1
        assert cache.stats.query_hits == 1

    def test_disabled_cache_recomputes(self, summit_runtime):
        cache = ResourceCache(summit_runtime, enabled=False)
        calls = []
        compute = lambda: calls.append(1) or 42  # noqa: E731
        cache.memoize("key", compute)
        cache.memoize("key", compute)
        assert len(calls) == 2


class TestStatsAndClear:
    def test_hit_rate(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        assert cache.stats.hit_rate() == 0.0
        buf = cache.get_buffer(64, MemoryKind.DEVICE)
        cache.put_buffer(buf)
        cache.get_buffer(64, MemoryKind.DEVICE)
        assert cache.stats.hit_rate() == pytest.approx(0.5)

    def test_clear_and_len(self, summit_runtime):
        cache = ResourceCache(summit_runtime)
        cache.put_buffer(cache.get_buffer(64, MemoryKind.DEVICE))
        cache.put_stream(cache.get_stream())
        cache.memoize("x", lambda: 1)
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
