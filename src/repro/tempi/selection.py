"""The unified method-selection subsystem (Sec. 4, Sec. 6.3, and beyond).

Until this module existed the per-message packing-method decision was smeared
across three layers: :meth:`~repro.tempi.perf_model.PerformanceModel.choose_method`
held the contention-free Eqs. 1-3 comparison, ``tempi/plan.py`` declared the
selector callback type, and the interposer wired cache memoisation and
query-overhead charging ad hoc.  Worse, every candidate was priced as if the
NIC were idle even though the shared :class:`~repro.machine.nic.NicTimeline`
knows the rank's live injection-port occupancy.  This module owns all of it:

* :class:`MethodSelector` — the protocol every selector satisfies (and the
  callback type the :mod:`repro.tempi.plan` compilers take);
* :class:`FixedSelector` — a forced method, never queries the model
  (``TempiConfig(selection="fixed", method=...)``);
* :class:`ModelSelector` — the contention-free model path: memoises the
  ``(nbytes, block_length)`` query through the resource cache and charges the
  measured query overhead on the rank's clock, exactly as the paper charges
  it (kept as the default and for ablations);
* :class:`ContendedSelector` — prices each candidate against the rank's
  injection-port **backlog**: a queued port hides pack time (the pack runs
  while earlier messages drain), so under load the decision tilts toward the
  method with the cheaper wire-plus-unpack tail and the one-shot/device
  crossover of Fig. 9 shifts — ``bench_fig9_selection.py`` measures the
  shift, :func:`repro.apps.exchange_model.model_selected_exchange` prices it
  analytically through the *same* :func:`contended_estimate`;
* :class:`CalibrationRegistry` — measurement files keyed per
  :class:`~repro.machine.spec.MachineSpec`, so several machines' models
  coexist in one process (machine sweeps measure each system once, in the
  spirit of the paper's run-once measurement binary).

Every selector accepts ``(packer, nbytes)`` and returns a concrete
:class:`~repro.tempi.config.PackMethod`.  Zero-byte sections short-circuit to
:data:`NOOP_METHOD` without touching model or clock — an empty section moves
nothing, so any staging kind is trivially correct and pricing primitives
(which reject ``nbytes <= 0``) are never consulted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Protocol, Union

from repro.machine.nic import NicTimeline
from repro.machine.spec import MachineSpec
from repro.tempi.config import SELECTION_MODES, PackMethod, TempiConfig
from repro.tempi.measurement import SystemMeasurement, measure_system
from repro.tempi.perf_model import PerformanceModel

#: The trivial selection for a zero-byte section: nothing is packed and
#: nothing is posted, so the method only names a staging kind that is never
#: allocated.  DEVICE keeps such sections on the same path self-sections use.
NOOP_METHOD = PackMethod.DEVICE


#: Granularity at which :class:`ContendedSelector` reads the port backlog:
#: coarse enough that stable queue depths share one memoised decision (and
#: one cached-query charge), fine enough (0.1 µs, far below the microseconds
#: at which selections flip) never to matter for the decision itself.
BACKLOG_RESOLUTION_S = 1e-7


class SelectionError(ValueError):
    """A selector or registry was configured impossibly."""


class MethodSelector(Protocol):
    """The per-message method policy: ``(packer, nbytes) -> method``.

    The plan compilers call the selector once per wire message at compile
    time, so model-query overhead stays charged where the paper charges it
    (inside the interposed call, before any bytes move).
    """

    def __call__(self, packer, nbytes: int) -> PackMethod:  # pragma: no cover - protocol
        ...


# --------------------------------------------------------------------------- #
# Contended pricing (shared by the selector, the benchmark and the analytic
# exchange model — one function, so the three can never drift)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ContendedEstimate:
    """End-to-end candidate latencies under an injection-port backlog.

    A message cannot enter the wire before the port drains (``backlog_s``
    seconds from now) *or* before its pack completes — whichever is later.
    Queued time therefore hides pack time, and each candidate's effective
    latency is ``max(pack, backlog) + wire + unpack``.  At zero backlog this
    is exactly the contention-free Eqs. 1-3 total.
    """

    oneshot: float
    device: float
    backlog_s: float

    def best(self) -> PackMethod:
        """Ties break toward one-shot, matching :class:`MethodEstimate`."""
        return PackMethod.ONESHOT if self.oneshot <= self.device else PackMethod.DEVICE


def contended_estimate(
    model: PerformanceModel, nbytes: int, block_length: int, backlog_s: float
) -> ContendedEstimate:
    """Price the one-shot and device candidates under ``backlog_s`` of port queue."""
    if backlog_s < 0:
        raise SelectionError(f"backlog must be non-negative, got {backlog_s}")
    oneshot = (
        max(model.pack_time("oneshot", "pack", nbytes, block_length), backlog_s)
        + model.transfer_time("cpu_cpu", nbytes)
        + model.pack_time("oneshot", "unpack", nbytes, block_length)
    )
    device = (
        max(model.pack_time("device", "pack", nbytes, block_length), backlog_s)
        + model.transfer_time("gpu_gpu", nbytes)
        + model.pack_time("device", "unpack", nbytes, block_length)
    )
    return ContendedEstimate(oneshot=oneshot, device=device, backlog_s=backlog_s)


# --------------------------------------------------------------------------- #
# Selectors
# --------------------------------------------------------------------------- #

class FixedSelector:
    """Always the configured method — ``TEMPI_PLACE_*``-style forcing."""

    def __init__(self, method: PackMethod) -> None:
        if method is PackMethod.AUTO:
            raise SelectionError("a fixed selector needs a concrete method, not AUTO")
        self.method = method

    def __call__(self, packer, nbytes: int) -> PackMethod:
        if nbytes <= 0:
            return NOOP_METHOD
        return self.method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FixedSelector {self.method.value}>"


class ModelSelector:
    """The contention-free model path (Eqs. 1-3), with paper-faithful costs.

    Results are memoised through the resource cache keyed by
    ``(nbytes, block_length)``; the rank's clock is charged the measured
    ~277 ns for cached queries and a few microseconds for cold ones — the
    overhead accounting that used to live inside the interposer.
    ``model`` may be a :class:`~repro.tempi.perf_model.PerformanceModel` or a
    zero-argument callable producing one (so construction never forces the
    measurement sweep).
    """

    def __init__(
        self,
        model: Union[PerformanceModel, Callable[[], PerformanceModel]],
        *,
        cache=None,
        clock=None,
        config: Optional[TempiConfig] = None,
    ) -> None:
        self._model = model
        self.cache = cache
        self.clock = clock
        self.config = config if config is not None else TempiConfig()

    @property
    def model(self) -> PerformanceModel:
        if not isinstance(self._model, PerformanceModel):
            self._model = self._model()
        return self._model

    # ------------------------------------------------------------- accounting
    def _memoize(self, key, compute):
        """Memoise a decision and charge the query overhead on the clock."""
        if self.cache is None:
            return compute(), False
        hits_before = self.cache.stats.query_hits
        value = self.cache.memoize(key, compute)
        return value, self.cache.stats.query_hits > hits_before

    def _charge(self, cached: bool) -> None:
        if self.clock is not None:
            cfg = self.config
            self.clock.advance(cfg.model_cached_query_s if cached else cfg.model_query_s)

    # -------------------------------------------------------------- selection
    def _decide(self, nbytes: int, block_length: int) -> PackMethod:
        return self.model.choose_method(nbytes, block_length)

    def __call__(self, packer, nbytes: int) -> PackMethod:
        if nbytes <= 0:
            return NOOP_METHOD
        block_length = packer.block.block_length
        method, cached = self._memoize(
            ("method", int(nbytes), int(block_length)),
            lambda: self._decide(int(nbytes), int(block_length)),
        )
        self._charge(cached)
        return method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class ContendedSelector(ModelSelector):
    """NIC-aware selection: folds live injection-port backlog into Eqs. 1-3.

    The backlog is read off the shared :class:`~repro.machine.nic.NicTimeline`
    at selection time (``port_free_at(rank) - now``, clamped at zero), so the
    decision depends on how much earlier cross-plan traffic is still queued on
    this rank's port.  At zero backlog the decision is *identical* to
    :class:`ModelSelector`'s (the memoised contention-free path — the
    equivalence the property suite pins down); under load the shared
    :func:`contended_estimate` pricing takes over.  The backlog is quantised
    to :data:`BACKLOG_RESOLUTION_S` *before* pricing, so the memo key and
    the decision always agree, repeated selections at a stable queue depth
    genuinely hit the cache (and pay the cached-query charge), and the
    memo cannot grow one entry per float jitter over a long run — far below
    any flip threshold, the resolution never changes a decision.
    """

    def __init__(
        self,
        model: Union[PerformanceModel, Callable[[], PerformanceModel]],
        nic: NicTimeline,
        rank: int,
        *,
        cache=None,
        clock=None,
        config: Optional[TempiConfig] = None,
    ) -> None:
        super().__init__(model, cache=cache, clock=clock, config=config)
        if nic is None:
            raise SelectionError("a contended selector needs the shared NIC timeline")
        self.nic = nic
        self.rank = rank

    def backlog(self) -> float:
        """Seconds of queued injection on this rank's port, as of its clock.

        Quantised to :data:`BACKLOG_RESOLUTION_S` so stable queue depths
        memoise (method flip thresholds sit orders of magnitude higher).
        """
        now = self.clock.now if self.clock is not None else 0.0
        raw = max(0.0, self.nic.port_free_at(self.rank) - now)
        return round(raw / BACKLOG_RESOLUTION_S) * BACKLOG_RESOLUTION_S

    def __call__(self, packer, nbytes: int) -> PackMethod:
        if nbytes <= 0:
            return NOOP_METHOD
        backlog = self.backlog()
        if backlog <= 0.0:
            return super().__call__(packer, nbytes)
        block_length = packer.block.block_length
        method, cached = self._memoize(
            ("method-contended", int(nbytes), int(block_length), float(backlog)),
            lambda: contended_estimate(
                self.model, int(nbytes), int(block_length), backlog
            ).best(),
        )
        self._charge(cached)
        return method


def make_selector(
    config: TempiConfig,
    model: Union[PerformanceModel, Callable[[], PerformanceModel]],
    *,
    cache=None,
    clock=None,
    nic: Optional[NicTimeline] = None,
    rank: int = 0,
) -> MethodSelector:
    """Build the selector ``config`` asks for (the interposer's factory).

    A non-``AUTO`` ``config.method`` always forces that method, whatever the
    selection policy — the ablation knob the benchmarks rely on.  Policy
    ``"contended"`` degrades to the model path when no NIC timeline exists to
    consult (an executor driven outside a :class:`~repro.mpi.world.World`).
    """
    if config.selection not in SELECTION_MODES:
        raise SelectionError(
            f"unknown selection policy {config.selection!r}; expected one of {SELECTION_MODES}"
        )
    if config.method is not PackMethod.AUTO:
        return FixedSelector(config.method)
    if config.selection == "fixed":
        raise SelectionError("selection='fixed' needs a concrete config.method")
    if config.selection == "contended" and nic is not None:
        return ContendedSelector(model, nic, rank, cache=cache, clock=clock, config=config)
    return ModelSelector(model, cache=cache, clock=clock, config=config)


# --------------------------------------------------------------------------- #
# Calibration registry
# --------------------------------------------------------------------------- #

class CalibrationRegistry:
    """Per-machine performance models, measured once and shared process-wide.

    The paper's measurement binary runs once per *system*; this registry is
    that discipline as an object: the first query for a machine runs the
    sweep (or loads its measurement file) and every later query — from any
    rank, any communicator, any thread — reuses the interpolated model.
    Distinct machines coexist, so a halo/exchange study can sweep
    :func:`~repro.machine.spec.summit_like` variants in one process.

    ``directory`` (optional) gives measurement files a home, one JSON per
    machine named ``<machine>.json``: models are loaded from there when
    present and the sweep's result is persisted there when not.
    """

    def __init__(self, directory: Optional[Path | str] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._models: Dict[str, PerformanceModel] = {}
        self._lock = threading.Lock()

    @staticmethod
    def measurement_path(directory: Path | str, machine_name: str) -> Path:
        """Where one machine's measurement file lives under ``directory``."""
        return Path(directory) / f"{machine_name}.json"

    # ------------------------------------------------------------------ query
    def model_for(self, machine: MachineSpec) -> PerformanceModel:
        """The machine's model: cached, else loaded from disk, else measured."""
        with self._lock:
            model = self._models.get(machine.name)
            if model is not None:
                return model
            measurement = self._load_or_measure(machine)
            model = PerformanceModel(measurement)
            self._models[machine.name] = model
            return model

    def _load_or_measure(self, machine: MachineSpec) -> SystemMeasurement:
        if self.directory is not None:
            path = self.measurement_path(self.directory, machine.name)
            if path.exists():
                return self._check(SystemMeasurement.load(path), machine.name)
            measurement = measure_system(machine)
            measurement.save(path)
            return measurement
        return measure_system(machine)

    # --------------------------------------------------------------- mutation
    def register(self, measurement: SystemMeasurement) -> PerformanceModel:
        """Adopt an existing measurement (tests, pre-measured files)."""
        if measurement.machine_name == "unknown":
            raise SelectionError(
                "a registry measurement must carry its machine_name "
                "(re-run measure_system, or set it before registering)"
            )
        model = PerformanceModel(measurement)
        with self._lock:
            self._models[measurement.machine_name] = model
        return model

    def load(self, path: Path | str, machine: Optional[MachineSpec] = None) -> PerformanceModel:
        """Register a measurement file, optionally checking its machine."""
        measurement = SystemMeasurement.load(path)
        if machine is not None:
            self._check(measurement, machine.name)
        return self.register(measurement)

    @staticmethod
    def _check(measurement: SystemMeasurement, machine_name: str) -> SystemMeasurement:
        if measurement.machine_name not in ("unknown", machine_name):
            raise SelectionError(
                f"measurement file is for machine {measurement.machine_name!r}, "
                f"not {machine_name!r}"
            )
        return measurement

    # ------------------------------------------------------------- inspection
    def machines(self) -> list[str]:
        """Names of the machines calibrated so far."""
        with self._lock:
            return sorted(self._models)

    def __contains__(self, machine: Union[MachineSpec, str]) -> bool:
        name = machine.name if isinstance(machine, MachineSpec) else machine
        with self._lock:
            return name in self._models

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CalibrationRegistry machines={self.machines()}>"


_DEFAULT_REGISTRY = CalibrationRegistry()


def default_registry() -> CalibrationRegistry:
    """The process-wide registry (performance models are expensive to build)."""
    return _DEFAULT_REGISTRY
