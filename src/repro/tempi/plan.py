"""The ``MessagePlan`` IR: every interposed operation as typed stages.

TEMPI's accelerated operations all decompose into the same three stage
kinds:

* a :class:`PackStage` gathers one peer's sections from the (strided) user
  buffer into a contiguous staging buffer with one kernel per section;
* a :class:`PostStage` hands the packed bytes to the wire as soon as its
  pack stage's kernels complete;
* an :class:`UnpackStage` scatters one peer's packed bytes from staging into
  the user buffer.

``Send`` is one pack + one post; ``Recv`` is one unpack; the datatype-carrying
``Alltoallv`` / ``Neighbor_alltoallv`` are one pack/post/unpack triple per
peer plus an off-wire local stage pair for self-sections.  Compiling an
operation to a :class:`MessagePlan` *before* touching the GPU or the wire is
what lets the :class:`~repro.tempi.executor.PlanExecutor` schedule stages for
overlap: every stage already carries its method selection, its staging-buffer
key and (once executing) its GPU stream, so the executor is free to issue
pack kernels on per-peer streams and post each peer's transfer the moment its
pack completes instead of packing everything first and posting serially.

The compilers here are pure: they validate, group sections per peer, and run
the per-message method selection (through the caller's selector callback, so
model-query overhead stays charged where the paper charges it).  No bytes
move until the executor runs the plan.

Because iterative applications repeat the same exchange shape thousands of
times, this module also provides the plan-compilation cache of the
event-driven core: a :class:`RecordingSelector` captures the selector calls
a fresh compile makes, :class:`PlanTemplate` retains the compiled stages
plus that selection transcript, and :class:`PlanCache` holds templates in a
bounded LRU.  A cache hit *replays* the transcript through the live selector
— same calls, same order, same charges — so priced results are bit-identical
to a fresh compile, then materializes a new :class:`MessagePlan` around the
retained stages (rebuilding any stage whose replayed method diverged, e.g.
under shifting contended backlog).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import count as _count
from typing import Hashable, Optional, Sequence

from repro.gpu.memory import Buffer, MemoryKind
from repro.gpu.stream import Stream
from repro.tempi.config import PackMethod
from repro.tempi.packer import Packer
from repro.tempi.selection import MethodSelector

__all__ = [
    "MessagePlan",
    "MethodSelector",
    "PackStage",
    "PlanCache",
    "PlanError",
    "PlanSection",
    "PlanTemplate",
    "PostStage",
    "RecordingSelector",
    "ReduceStage",
    "UnpackStage",
    "compile_allgather",
    "compile_allreduce",
    "compile_bcast",
    "compile_exchange",
    "compile_recv",
    "compile_send",
    "hierarchical_allreduce_schedule",
    "ring_allreduce_schedule",
    "staging_kind",
    "tree_allreduce_schedule",
]


class PlanError(RuntimeError):
    """A plan was asked to describe something impossible."""


def staging_kind(method: PackMethod) -> MemoryKind:
    """Where a method's intermediate buffer lives (Sec. 4)."""
    if method is PackMethod.DEVICE:
        return MemoryKind.DEVICE
    if method is PackMethod.ONESHOT:
        return MemoryKind.HOST_MAPPED
    if method is PackMethod.STAGED:
        return MemoryKind.DEVICE
    raise PlanError(f"{method} is not a concrete packing method")


@dataclass(frozen=True)
class PlanSection:
    """One section of a plan stage.

    ``count`` objects of a committed, accelerated datatype starting ``displ``
    bytes into the user buffer, bound to the :class:`Packer` its commit-time
    handler cached.  Sections addressed to one peer travel concatenated in
    section order — the same wire layout as the system path, so the two are
    interchangeable message-for-message.
    """

    peer: int
    count: int
    displ: int
    packer: Packer

    @property
    def packed_bytes(self) -> int:
        return self.packer.packed_size(self.count) if self.count else 0


@dataclass
class PackStage:
    """Gather one peer's sections into a contiguous staging buffer."""

    peer: int
    sections: tuple[PlanSection, ...]
    method: PackMethod
    nbytes: int
    #: Key of the persistent per-peer staging buffer; ``None`` checks a
    #: transient buffer out of the size-bucketed pool instead (p2p sends).
    staging_key: Optional[Hashable] = None
    #: The stream the executor issued this stage's kernels on (set at run time).
    stream: Optional[Stream] = None


@dataclass
class PostStage:
    """Hand one peer's packed bytes to the wire.

    Depends on exactly one :class:`PackStage`; the executor posts the message
    the moment that stage's kernels complete on its stream.
    """

    peer: int
    nbytes: int
    pack: PackStage = field(repr=False)


@dataclass
class UnpackStage:
    """Scatter one peer's packed bytes from staging into the user buffer."""

    peer: int
    sections: tuple[PlanSection, ...]
    method: PackMethod
    nbytes: int
    staging_key: Optional[Hashable] = None
    stream: Optional[Stream] = None


#: Reduction operators a :class:`ReduceStage` may carry.  All four are
#: elementwise numpy kernels on the executor side; the property wall drives
#: exactly-representable values so every schedule's combine order lands on
#: the same bits (see ``docs/ARCHITECTURE.md`` § Workloads).
REDUCE_OPS = ("sum", "prod", "min", "max")


@dataclass
class ReduceStage:
    """One round of a reduction schedule: an optional send half and an
    optional receive-and-combine half.

    The fourth stage kind, next to pack/post/unpack: where an
    :class:`UnpackStage` scatters arriving bytes into the user buffer, a
    ``ReduceStage`` *combines* them into the accumulator (``op`` applied
    elementwise), or overwrites when ``combine`` is false (the broadcast
    half of every allreduce schedule).  ``dest``/``source`` of ``-1`` mark a
    round where this rank only receives / only sends (tree interior vs leaf
    ranks).  Offsets and byte counts are chunk positions into the flat
    reduction vector; the executor prices the combine like an unpack kernel
    over ``recv_nbytes`` contiguous bytes.
    """

    round: int
    op: str
    #: Send half: chunk ``[send_offset, send_offset + send_nbytes)`` of the
    #: current accumulator goes to ``dest`` (skipped when ``dest < 0``).
    dest: int = -1
    send_offset: int = 0
    send_nbytes: int = 0
    #: Receive half: ``source``'s chunk lands at ``recv_offset`` (skipped
    #: when ``source < 0``); ``combine`` folds it with ``op``, else copies.
    source: int = -1
    recv_offset: int = 0
    recv_nbytes: int = 0
    combine: bool = True


@dataclass
class MessagePlan:
    """One operation, compiled to stages.

    ``tag`` is fixed at compile time for point-to-point plans and assigned by
    the executor (from the communicator's collective sequence) for collective
    plans, so that every rank of a collective agrees on it.
    """

    op: str  # "send" | "recv" | "bcast" | "allgather" | "alltoallv" | "neighbor_alltoallv" | "allreduce"
    send_buffer: Optional[Buffer] = None
    recv_buffer: Optional[Buffer] = None
    pack_stages: list[PackStage] = field(default_factory=list)
    post_stages: list[PostStage] = field(default_factory=list)
    unpack_stages: list[UnpackStage] = field(default_factory=list)
    #: Off-wire self-exchange: packed through device staging, never posted.
    local: Optional[tuple[PackStage, UnpackStage]] = None
    tag: Optional[int] = None
    #: Nonblocking plans defer unpack to ``Request.Wait`` and complete their
    #: send side at buffer-reuse time instead of wire-completion time.
    nonblocking: bool = False
    #: Reduction schedule (``op == "allreduce"`` only): the rounds this rank
    #: walks, in order.  ``reduce_dtype`` is the numpy element type the
    #: combines operate on; ``reduce_nbytes`` the flat vector's size.
    reduce_stages: list[ReduceStage] = field(default_factory=list)
    reduce_dtype: Optional[str] = None
    reduce_nbytes: int = 0

    @property
    def nstages(self) -> int:
        local = 2 if self.local is not None else 0
        return (
            len(self.pack_stages)
            + len(self.post_stages)
            + len(self.unpack_stages)
            + len(self.reduce_stages)
            + local
        )

    def method_counts(self) -> dict[str, int]:
        """Wire messages per method (one per post stage), for stats."""
        counts: dict[str, int] = {}
        for post in self.post_stages:
            name = post.pack.method.value
            counts[name] = counts.get(name, 0) + 1
        return counts


# --------------------------------------------------------------------------- #
# Compilers
# --------------------------------------------------------------------------- #

def compile_send(
    packer: Packer,
    buffer: Buffer,
    count: int,
    dest: int,
    tag: int,
    method: PackMethod,
    *,
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile ``MPI_Send``/``MPI_Isend`` of one strided object group."""
    section = PlanSection(dest, count, 0, packer)
    stage = PackStage(
        peer=dest,
        sections=(section,),
        method=method,
        nbytes=section.packed_bytes,
    )
    return MessagePlan(
        op="send",
        send_buffer=buffer,
        pack_stages=[stage],
        post_stages=[PostStage(peer=dest, nbytes=stage.nbytes, pack=stage)],
        tag=tag,
        nonblocking=nonblocking,
    )


def compile_recv(
    packer: Packer,
    buffer: Buffer,
    count: int,
    source: int,
    tag: int,
    method: PackMethod,
    *,
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile ``MPI_Recv``/``MPI_Irecv`` of one strided object group."""
    section = PlanSection(source, count, 0, packer)
    stage = UnpackStage(
        peer=source,
        sections=(section,),
        method=method,
        nbytes=section.packed_bytes,
    )
    return MessagePlan(
        op="recv",
        recv_buffer=buffer,
        unpack_stages=[stage],
        tag=tag,
        nonblocking=nonblocking,
    )


def compile_bcast(
    packer: Packer,
    buffer: Buffer,
    count: int,
    root: int,
    rank: int,
    size: int,
    method: PackMethod,
    tag: int,
    *,
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile ``MPI_Bcast`` of one strided object group to a plan.

    The root packs **once** and fans the same payload out over one post stage
    per peer (all sharing the single pack stage); every other rank is simply
    a receive plan from the root.  Unlike the byte-copy system broadcast, the
    packed payload round-trips through the datatype, so receivers get the
    root's strided elements, not its raw buffer prefix.
    """
    if size < 2:
        raise PlanError("a broadcast plan needs at least two ranks")
    if not 0 <= root < size:
        raise PlanError(f"root {root} outside communicator of size {size}")
    if rank != root:
        return compile_recv(packer, buffer, count, root, tag, method, nonblocking=nonblocking)
    section = PlanSection(root, count, 0, packer)
    stage = PackStage(
        peer=root,
        sections=(section,),
        method=method,
        nbytes=section.packed_bytes,
        staging_key=("collective", "bcast", root, staging_kind(method)),
    )
    return MessagePlan(
        op="bcast",
        send_buffer=buffer,
        pack_stages=[stage],
        post_stages=[
            PostStage(peer=peer, nbytes=stage.nbytes, pack=stage)
            for peer in range(size)
            if peer != root
        ],
        tag=tag,
        nonblocking=nonblocking,
    )


def compile_allgather(
    rank: int,
    size: int,
    send_buffer: Buffer,
    send_section: PlanSection,
    recv_buffer: Buffer,
    recv_sections: Sequence[PlanSection],
    select: MethodSelector,
    *,
    op: str = "allgather",
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile a datatype-carrying ``Allgather``/``Allgatherv`` to a plan.

    The root-less fan-out: this rank packs its contribution **once** and
    every other peer's post stage shares that single pack stage (the
    broadcast shape, but from every rank at once), while one unpack stage per
    incoming peer scatters that peer's contribution into the receive buffer.
    The self-contribution bounces through device staging off the wire,
    exactly like an exchange's self-sections.  Methods are selected per
    message through ``select`` — the outgoing payload once, each incoming
    peer's independently — so the collective rides selection, overlap and the
    progress engine like ``Alltoallv`` does.
    """
    if size < 2:
        raise PlanError("an allgather plan needs at least two ranks")
    if send_section.peer != rank:
        raise PlanError("the send section of an allgather is this rank's own contribution")
    recv_groups = _group_sections(recv_sections)
    nbytes = send_section.packed_bytes

    local_recv = recv_groups.get(rank, [])
    if sum(s.packed_bytes for s in local_recv) != nbytes:
        raise PlanError("self send/recv sections disagree on packed size")

    pack_stages: list[PackStage] = []
    post_stages: list[PostStage] = []
    if nbytes:
        method = select(send_section.packer, nbytes)
        stage = PackStage(
            peer=rank,
            sections=(send_section,),
            method=method,
            nbytes=nbytes,
            staging_key=("collective", "gather-send", rank, staging_kind(method)),
        )
        pack_stages.append(stage)
        post_stages.extend(
            PostStage(peer=peer, nbytes=nbytes, pack=stage)
            for peer in range(size)
            if peer != rank
        )

    local: Optional[tuple[PackStage, UnpackStage]] = None
    if local_recv:
        local = (
            PackStage(
                peer=rank,
                sections=(send_section,),
                method=PackMethod.DEVICE,
                nbytes=nbytes,
                staging_key=("collective", "gather-send", rank, staging_kind(PackMethod.DEVICE)),
            ),
            UnpackStage(
                peer=rank,
                sections=tuple(local_recv),
                method=PackMethod.DEVICE,
                nbytes=nbytes,
                staging_key=("collective", "gather-recv", rank, staging_kind(PackMethod.DEVICE)),
            ),
        )

    unpack_stages: list[UnpackStage] = []
    for peer in sorted(recv_groups):
        if peer == rank:
            continue
        group = recv_groups[peer]
        peer_bytes = sum(section.packed_bytes for section in group)
        method = select(group[0].packer, peer_bytes)
        unpack_stages.append(
            UnpackStage(
                peer=peer,
                sections=tuple(group),
                method=method,
                nbytes=peer_bytes,
                staging_key=("collective", "gather-recv", peer, staging_kind(method)),
            )
        )

    return MessagePlan(
        op=op,
        send_buffer=send_buffer,
        recv_buffer=recv_buffer,
        pack_stages=pack_stages,
        post_stages=post_stages,
        unpack_stages=unpack_stages,
        local=local,
        nonblocking=nonblocking,
    )


# --------------------------------------------------------------------------- #
# Plan-compilation cache (the event-driven core's hot path)
# --------------------------------------------------------------------------- #

class RecordingSelector:
    """Wraps a selector and records every call a compile makes.

    The transcript — ``(packer, nbytes, peer)`` triples plus the returned
    methods, in call order — is what a :class:`PlanTemplate` replays on a
    cache hit, so hits charge the rank's clock selector-call-for-selector-call
    identically to the fresh compile that produced the template.
    """

    def __init__(self, select: MethodSelector) -> None:
        self._select = select
        self.calls: list[tuple[Packer, int, Optional[int]]] = []
        self.methods: list[PackMethod] = []

    def __call__(self, packer, nbytes: int, peer: Optional[int] = None) -> PackMethod:
        """Delegate to the wrapped selector, recording the call."""
        method = self._select(packer, nbytes, peer)
        self.calls.append((packer, int(nbytes), peer))
        self.methods.append(method)
        return method


@dataclass(frozen=True)
class PlanTemplate:
    """One compiled collective plan, retained for replay.

    Holds the compile's stages (shared across materializations — the executor
    only touches per-execution state on them), the selection transcript, and
    strong references to everything the cache key names by ``id()`` so a
    collected object can never alias a live key.  ``post_specs`` keeps post
    stages as ``(peer, nbytes, pack_index)`` indices into ``pack_stages`` so
    rebuilt pack stages re-link without object surgery.
    """

    op: str
    nonblocking: bool
    pack_stages: tuple[PackStage, ...]
    unpack_stages: tuple[UnpackStage, ...]
    post_specs: tuple[tuple[int, int, int], ...]
    local: Optional[tuple[PackStage, UnpackStage]]
    selections: tuple[tuple[Packer, int, Optional[int]], ...]
    methods: tuple[PackMethod, ...]
    #: Datatype handlers the interposer bumps ``uses`` on per call.
    handlers: tuple = ()
    #: Strong refs pinning every object the cache key names by ``id()``.
    retained: tuple = ()

    @classmethod
    def from_plan(cls, plan: MessagePlan, recording: RecordingSelector,
                  *, handlers=(), retained=()) -> "PlanTemplate":
        """Capture a freshly compiled plan and its selection transcript."""
        index = {id(stage): i for i, stage in enumerate(plan.pack_stages)}
        template = cls(
            op=plan.op,
            nonblocking=plan.nonblocking,
            pack_stages=tuple(plan.pack_stages),
            unpack_stages=tuple(plan.unpack_stages),
            post_specs=tuple(
                (post.peer, post.nbytes, index[id(post.pack)]) for post in plan.post_stages
            ),
            local=plan.local,
            selections=tuple(recording.calls),
            methods=tuple(recording.methods),
            handlers=tuple(handlers),
            retained=tuple(retained),
        )
        # Fill the steady-state caches at capture time: every plan-cache hit
        # reads them, so lazily building them on the first hit just moves a
        # cold branch onto the hot path.
        template.class_runs()
        template.steady_method_counts()
        template._steady_post_stages()
        return template

    def class_runs(self) -> tuple:
        """Consecutive transcript runs over one equivalence class.

        Each run is ``(packer, nbytes, peer, count)`` — maximal stretches of
        the recorded transcript sharing one ``(nbytes, block_length)`` class.
        The transcript is immutable, so the grouping is computed once and
        cached on the template (the batched replay is a per-hit hot path).
        """
        runs = getattr(self, "_class_runs", None)
        if runs is None:
            built = []
            calls = self.selections
            total = len(calls)
            i = 0
            while i < total:
                packer, nbytes, peer = calls[i]
                block_length = packer.block.block_length
                j = i + 1
                while (
                    j < total
                    and calls[j][1] == nbytes
                    and calls[j][0].block.block_length == block_length
                ):
                    j += 1
                built.append((packer, nbytes, peer, j - i))
                i = j
            runs = tuple(built)
            object.__setattr__(self, "_class_runs", runs)
        return runs

    def replay(self, select: MethodSelector, *, batched: bool = False) -> list[PackMethod]:
        """Re-run the recorded selector calls (same order, same charges).

        With ``batched`` and a peer-invariant selector, consecutive transcript
        runs over one equivalence class — same ``nbytes``, same block length —
        collapse into a single :meth:`~repro.tempi.selection.ModelSelector.select_many`
        call, which prices the representative once and replays the per-member
        charges, so the returned methods *and* the priced clock match the
        scalar replay bit for bit.  Peer-dependent selectors (or selectors
        without ``select_many``) always take the scalar loop.
        """
        if (
            not batched
            or not getattr(select, "peer_invariant", False)
            or not hasattr(select, "select_many")
        ):
            return [select(packer, nbytes, peer) for packer, nbytes, peer in self.selections]
        methods: list[PackMethod] = []
        for packer, nbytes, peer, count in self.class_runs():
            method = select.select_many(packer, nbytes, peer, count=count)
            methods.extend([method] * count)
        return methods

    def steady_method_counts(self) -> dict[str, int]:
        """Wire messages per recorded method, cached on the template.

        Equals ``materialize(self.methods, ...).method_counts()`` — valid for
        folding into stats whenever a replay returned the recorded transcript
        (the steady state), sparing the per-hit dict rebuild.
        """
        counts = getattr(self, "_steady_counts", None)
        if counts is None:
            counts = {}
            for _, _, i in self.post_specs:
                name = self.pack_stages[i].method.value
                counts[name] = counts.get(name, 0) + 1
            object.__setattr__(self, "_steady_counts", counts)
        return counts

    def _steady_post_stages(self) -> tuple:
        """The post-stage list of a steady-state materialization, cached.

        Post stages are immutable ``(peer, nbytes, pack)`` triples over the
        *shared* pack stages, so when a replay keeps the recorded methods the
        same objects can serve every materialization.
        """
        posts = getattr(self, "_steady_posts", None)
        if posts is None:
            packs = self.pack_stages
            posts = tuple(
                PostStage(peer=peer, nbytes=nbytes, pack=packs[i])
                for peer, nbytes, i in self.post_specs
            )
            object.__setattr__(self, "_steady_posts", posts)
        return posts

    @staticmethod
    def _rebind(stage, method: PackMethod):
        """The stage with ``method`` swapped in (shared unless it changed)."""
        if method is stage.method:
            return stage
        key = stage.staging_key
        if key is not None:
            key = key[:-1] + (staging_kind(method),)
        return type(stage)(
            peer=stage.peer,
            sections=stage.sections,
            method=method,
            nbytes=stage.nbytes,
            staging_key=key,
        )

    def materialize(
        self,
        methods: Sequence[PackMethod],
        send_buffer: Optional[Buffer],
        recv_buffer: Optional[Buffer],
    ) -> MessagePlan:
        """A fresh :class:`MessagePlan` around the retained stages.

        ``methods`` is the replayed transcript; when it matches the recorded
        one (the steady state) every stage is shared, otherwise the diverging
        stages are rebuilt with their new method and staging kind.  The plan
        object itself is always new — the executor stamps the collective
        ``tag`` onto it, which must not leak across calls.
        """
        methods = tuple(methods)
        if methods == self.methods:
            packs: Sequence[PackStage] = self.pack_stages
            unpacks: Sequence[UnpackStage] = self.unpack_stages
            posts: Sequence[PostStage] = self._steady_post_stages()
        else:
            npack = len(self.pack_stages)
            packs = [
                self._rebind(stage, method)
                for stage, method in zip(self.pack_stages, methods[:npack])
            ]
            unpacks = [
                self._rebind(stage, method)
                for stage, method in zip(self.unpack_stages, methods[npack:])
            ]
            posts = [
                PostStage(peer=peer, nbytes=nbytes, pack=packs[i])
                for peer, nbytes, i in self.post_specs
            ]
        return MessagePlan(
            op=self.op,
            send_buffer=send_buffer,
            recv_buffer=recv_buffer,
            pack_stages=list(packs),
            post_stages=list(posts),
            unpack_stages=list(unpacks),
            local=self.local,
            nonblocking=self.nonblocking,
        )


class PlanCache:
    """A bounded LRU of :class:`PlanTemplate` entries (one per rank).

    Owned by the per-rank :class:`~repro.tempi.interposer.Tempi` instance and
    only ever touched from that rank's thread, so it carries no lock.  Keys
    are built by the interposer from everything a compile depends on
    (operation, selector identity, peer/count/displacement signatures,
    datatype identities including their commit-time handlers); anything the
    key does not capture — resource-cache state, NIC backlog — is replayed
    live on every hit, so it never needs to be in the key.
    ``clear()`` is the explicit invalidation hook.
    """

    #: Process-wide generation source: every mutation of *any* cache takes a
    #: fresh value, so a generation captured from one cache instance can
    #: never collide with another instance's (or a later state of its own).
    _generations = _count()

    def __init__(self, size: int = 256) -> None:
        if size < 1:
            raise PlanError(f"plan cache size must be >= 1, got {size}")
        self.size = size
        self._entries: "OrderedDict[Hashable, PlanTemplate]" = OrderedDict()
        #: Changes on every ``put``/``clear`` (the only ways an entry can
        #: appear, move out by eviction, or vanish).  A caller that captured
        #: ``(key, template, generation)`` may treat an unchanged generation
        #: as proof the entry is still cached — the interposer's single-slot
        #: compile memo rides on this.
        self.generation = next(PlanCache._generations)

    def get(self, key: Hashable) -> Optional[PlanTemplate]:
        """The template for ``key`` (refreshing its LRU position), or None."""
        template = self._entries.get(key)
        if template is not None:
            self._entries.move_to_end(key)
        return template

    def touch(self, key: Hashable) -> None:
        """Refresh a *known-present* key's LRU position (memoized hits)."""
        self._entries.move_to_end(key)

    def put(self, key: Hashable, template: PlanTemplate) -> None:
        """Retain ``template``, evicting the least recently used beyond size."""
        self._entries[key] = template
        self._entries.move_to_end(key)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)
        self.generation = next(PlanCache._generations)

    def clear(self) -> None:
        """Drop every template (explicit invalidation)."""
        self._entries.clear()
        self.generation = next(PlanCache._generations)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


def _group_sections(sections: Sequence[PlanSection]) -> dict[int, list[PlanSection]]:
    groups: dict[int, list[PlanSection]] = {}
    for section in sections:
        if section.count:
            groups.setdefault(section.peer, []).append(section)
    return groups


def compile_exchange(
    rank: int,
    send_buffer: Buffer,
    send_sections: Sequence[PlanSection],
    recv_buffer: Buffer,
    recv_sections: Sequence[PlanSection],
    select: MethodSelector,
    *,
    op: str = "alltoallv",
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile a datatype-carrying all-to-all-v (dense or neighbour).

    One pack/post pair per outgoing wire peer, one unpack per incoming wire
    peer, and a local stage pair for self-sections; each wire peer's method is
    selected per message through ``select``.  Staging keys preserve the
    per-``(role, peer, kind)`` binding of the resource cache so iterative
    applications find the same buffers on every exchange (Sec. 5).
    """
    send_groups = _group_sections(send_sections)
    recv_groups = _group_sections(recv_sections)

    local_send = send_groups.get(rank, [])
    local_recv = recv_groups.get(rank, [])
    if sum(s.packed_bytes for s in local_send) != sum(s.packed_bytes for s in local_recv):
        raise PlanError("self send/recv sections disagree on packed size")

    pack_stages: list[PackStage] = []
    post_stages: list[PostStage] = []
    for peer, group in send_groups.items():
        if peer == rank:
            continue
        nbytes = sum(section.packed_bytes for section in group)
        # Send-side selections carry the destination peer so NIC-aware
        # selectors can price its link and ingestion backlog; receive-side
        # selections (below) have no single remote port to price.
        method = select(group[0].packer, nbytes, peer=peer)
        stage = PackStage(
            peer=peer,
            sections=tuple(group),
            method=method,
            nbytes=nbytes,
            staging_key=("collective", "send", peer, staging_kind(method)),
        )
        pack_stages.append(stage)
        post_stages.append(PostStage(peer=peer, nbytes=nbytes, pack=stage))

    local: Optional[tuple[PackStage, UnpackStage]] = None
    if local_send:
        nbytes = sum(section.packed_bytes for section in local_send)
        local = (
            PackStage(
                peer=rank,
                sections=tuple(local_send),
                method=PackMethod.DEVICE,
                nbytes=nbytes,
                staging_key=("collective", "send", rank, staging_kind(PackMethod.DEVICE)),
            ),
            UnpackStage(
                peer=rank,
                sections=tuple(local_recv),
                method=PackMethod.DEVICE,
                nbytes=nbytes,
                staging_key=("collective", "recv", rank, staging_kind(PackMethod.DEVICE)),
            ),
        )

    unpack_stages: list[UnpackStage] = []
    for peer, group in recv_groups.items():
        if peer == rank:
            continue
        nbytes = sum(section.packed_bytes for section in group)
        method = select(group[0].packer, nbytes)
        unpack_stages.append(
            UnpackStage(
                peer=peer,
                sections=tuple(group),
                method=method,
                nbytes=nbytes,
                staging_key=("collective", "recv", peer, staging_kind(method)),
            )
        )

    return MessagePlan(
        op=op,
        send_buffer=send_buffer,
        recv_buffer=recv_buffer,
        pack_stages=pack_stages,
        post_stages=post_stages,
        unpack_stages=unpack_stages,
        local=local,
        nonblocking=nonblocking,
    )


# --------------------------------------------------------------------------- #
# Allreduce schedules
# --------------------------------------------------------------------------- #

def _chunk_layout(count: int, parts: int, element_size: int) -> list[tuple[int, int]]:
    """Split ``count`` elements into ``parts`` contiguous byte ranges.

    Returns ``(offset_bytes, nbytes)`` per part; the first ``count % parts``
    parts carry one extra element, so every boundary is element-aligned and
    the layout is a pure function of ``(count, parts)`` — each rank computes
    it independently and identically.
    """
    if parts <= 0:
        raise PlanError(f"cannot split a vector into {parts} chunks")
    base, extra = divmod(count, parts)
    layout = []
    offset = 0
    for index in range(parts):
        elements = base + (1 if index < extra else 0)
        nbytes = elements * element_size
        layout.append((offset, nbytes))
        offset += nbytes
    return layout


def ring_allreduce_schedule(
    rank: int,
    ranks: Sequence[int],
    count: int,
    element_size: int,
    op: str,
    *,
    round_base: int = 0,
) -> list[ReduceStage]:
    """The bandwidth-optimal ring: reduce-scatter then allgather.

    ``ranks`` is the (ascending) participant list — the whole communicator
    for a flat ring, the island leaders for the cross-leaf phase of the
    hierarchical schedule.  Each of the ``2 * (N - 1)`` rounds moves one
    ``count / N`` chunk to the right neighbour; after the first ``N - 1``
    rounds rank ``i`` owns chunk ``(i + 1) % N`` fully reduced, and the
    second ``N - 1`` rounds circulate the finished chunks (``combine=False``).
    """
    size = len(ranks)
    if size <= 1:
        return []
    index = ranks.index(rank)
    chunks = _chunk_layout(count, size, element_size)
    right = ranks[(index + 1) % size]
    left = ranks[(index - 1) % size]
    stages = []
    for step in range(size - 1):
        send_chunk = (index - step) % size
        recv_chunk = (index - step - 1) % size
        stages.append(
            ReduceStage(
                round=round_base + step,
                op=op,
                dest=right,
                send_offset=chunks[send_chunk][0],
                send_nbytes=chunks[send_chunk][1],
                source=left,
                recv_offset=chunks[recv_chunk][0],
                recv_nbytes=chunks[recv_chunk][1],
                combine=True,
            )
        )
    for step in range(size - 1):
        send_chunk = (index - step + 1) % size
        recv_chunk = (index - step) % size
        stages.append(
            ReduceStage(
                round=round_base + size - 1 + step,
                op=op,
                dest=right,
                send_offset=chunks[send_chunk][0],
                send_nbytes=chunks[send_chunk][1],
                source=left,
                recv_offset=chunks[recv_chunk][0],
                recv_nbytes=chunks[recv_chunk][1],
                combine=False,
            )
        )
    return stages


def tree_allreduce_schedule(
    rank: int,
    size: int,
    count: int,
    element_size: int,
    op: str,
) -> list[ReduceStage]:
    """The latency-optimal binomial tree: reduce to rank 0, broadcast back.

    Full-vector messages over ``2 * ceil(log2 N)`` rounds: in reduce round
    ``k`` every rank with bit ``k`` set sends its partial to ``rank - 2^k``
    and goes idle; the broadcast phase replays those edges in reverse.  Works
    for any ``N`` (receives from partners ``>= N`` are skipped).
    """
    if size <= 1:
        return []
    nbytes = count * element_size
    parent = -1
    parent_round = 0
    children: list[tuple[int, int]] = []
    mask = 1
    rounds = 0
    while mask < size:
        if parent < 0:
            if rank & mask:
                parent = rank - mask
                parent_round = rounds
            else:
                child = rank + mask
                if child < size:
                    children.append((child, rounds))
        mask <<= 1
        rounds += 1
    stages = []
    for child, k in children:
        stages.append(
            ReduceStage(
                round=k, op=op, source=child, recv_offset=0, recv_nbytes=nbytes,
                combine=True,
            )
        )
    if parent >= 0:
        stages.append(
            ReduceStage(
                round=parent_round, op=op, dest=parent,
                send_offset=0, send_nbytes=nbytes,
            )
        )
        stages.append(
            ReduceStage(
                round=rounds + (rounds - 1 - parent_round), op=op,
                source=parent, recv_offset=0, recv_nbytes=nbytes, combine=False,
            )
        )
    # Broadcast edges replay the reduce edges in reverse round order, so a
    # rank forwards to its latest-reduced child first.
    for child, k in sorted(children, key=lambda edge: -edge[1]):
        stages.append(
            ReduceStage(
                round=rounds + (rounds - 1 - k), op=op, dest=child,
                send_offset=0, send_nbytes=nbytes,
            )
        )
    stages.sort(key=lambda stage: stage.round)
    return stages


def hierarchical_allreduce_schedule(
    rank: int,
    size: int,
    count: int,
    element_size: int,
    op: str,
    islands: Sequence[Sequence[int]],
) -> list[ReduceStage]:
    """Intra-island reduce → cross-leaf leader ring → intra-island broadcast.

    ``islands`` partitions the communicator into locality groups (NVLink
    islands under a hierarchical topology; singletons degrade this to a flat
    ring).  Members fold into their island's leader (lowest rank) over the
    expensive-path-free intra-island wires, the leaders run a chunked ring
    across the fabric — the only phase that touches uplink ledgers — and the
    result fans back out inside each island.
    """
    if size <= 1:
        return []
    nbytes = count * element_size
    my_island = None
    for group in islands:
        if rank in group:
            my_island = sorted(group)
            break
    if my_island is None:
        raise PlanError(f"rank {rank} missing from the island partition")
    leaders = sorted(min(group) for group in islands)
    leader = my_island[0]
    gather_rounds = max(len(group) for group in islands) - 1
    stages: list[ReduceStage] = []
    if rank == leader:
        for position, member in enumerate(my_island[1:]):
            stages.append(
                ReduceStage(
                    round=position, op=op, source=member,
                    recv_offset=0, recv_nbytes=nbytes, combine=True,
                )
            )
    else:
        stages.append(
            ReduceStage(
                round=my_island.index(rank) - 1, op=op, dest=leader,
                send_offset=0, send_nbytes=nbytes,
            )
        )
    if rank == leader and len(leaders) > 1:
        stages.extend(
            ring_allreduce_schedule(
                rank, leaders, count, element_size, op, round_base=gather_rounds,
            )
        )
    bcast_base = gather_rounds + 2 * (len(leaders) - 1)
    if rank == leader:
        for position, member in enumerate(my_island[1:]):
            stages.append(
                ReduceStage(
                    round=bcast_base + position, op=op, dest=member,
                    send_offset=0, send_nbytes=nbytes,
                )
            )
    else:
        stages.append(
            ReduceStage(
                round=bcast_base + my_island.index(rank) - 1, op=op,
                source=leader, recv_offset=0, recv_nbytes=nbytes, combine=False,
            )
        )
    return stages


def compile_allreduce(
    rank: int,
    size: int,
    send_buffer: Buffer,
    recv_buffer: Buffer,
    count: int,
    element_size: int,
    dtype: str,
    *,
    op: str = "sum",
    algorithm: str = "ring",
    islands: Optional[Sequence[Sequence[int]]] = None,
    nonblocking: bool = False,
) -> MessagePlan:
    """Compile one rank's side of an allreduce to a reduction plan.

    Pure, like every compiler here: the schedule is a function of
    ``(rank, size, count, algorithm)`` (plus the island partition for the
    hierarchical algorithm), so all ranks independently compile matching
    rounds.  The executor walks the rounds in order, posting the send half
    and combining the receive half of each.
    """
    if op not in REDUCE_OPS:
        raise PlanError(f"unknown reduction op {op!r}; expected one of {REDUCE_OPS}")
    if count < 0:
        raise PlanError(f"allreduce count must be non-negative, got {count}")
    nbytes = count * element_size
    if recv_buffer.nbytes < nbytes or send_buffer.nbytes < nbytes:
        raise PlanError(
            f"allreduce of {nbytes} bytes does not fit its buffers "
            f"(send {send_buffer.nbytes}, recv {recv_buffer.nbytes})"
        )
    if algorithm == "ring":
        stages = ring_allreduce_schedule(rank, list(range(size)), count, element_size, op)
    elif algorithm == "tree":
        stages = tree_allreduce_schedule(rank, size, count, element_size, op)
    elif algorithm == "hierarchical":
        if islands is None:
            islands = [[r] for r in range(size)]
        stages = hierarchical_allreduce_schedule(
            rank, size, count, element_size, op, islands
        )
    else:
        raise PlanError(f"unknown allreduce algorithm {algorithm!r}")
    return MessagePlan(
        op="allreduce",
        send_buffer=send_buffer,
        recv_buffer=recv_buffer,
        nonblocking=nonblocking,
        reduce_stages=stages,
        reduce_dtype=dtype,
        reduce_nbytes=nbytes,
    )
