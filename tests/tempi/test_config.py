"""Tests for TempiConfig."""

from pathlib import Path

from repro.tempi.config import PackMethod, TempiConfig


class TestDefaults:
    def test_enabled_by_default(self):
        config = TempiConfig()
        assert config.enabled
        assert config.datatype_handling
        assert config.send_handling
        assert config.method is PackMethod.AUTO
        assert config.use_cache

    def test_model_query_overheads_ordered(self):
        config = TempiConfig()
        assert config.model_cached_query_s < config.model_query_s
        # the paper's measured model-selection overhead
        assert config.model_cached_query_s == 277e-9


class TestVariants:
    def test_with_overrides(self):
        config = TempiConfig().with_overrides(method=PackMethod.DEVICE, use_cache=False)
        assert config.method is PackMethod.DEVICE
        assert not config.use_cache
        # original untouched (frozen dataclass semantics)
        assert TempiConfig().method is PackMethod.AUTO

    def test_disabled_factory(self):
        config = TempiConfig.disabled()
        assert not config.enabled
        assert not config.datatype_handling
        assert not config.send_handling

    def test_measurement_path_accepted(self):
        config = TempiConfig(measurement_path=Path("/tmp/m.json"))
        assert config.measurement_path == Path("/tmp/m.json")


class TestPackMethod:
    def test_values(self):
        assert PackMethod.DEVICE.value == "device"
        assert PackMethod.ONESHOT.value == "oneshot"
        assert PackMethod.STAGED.value == "staged"
        assert PackMethod.AUTO.value == "auto"
