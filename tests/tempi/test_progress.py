"""Tests for the progress engine: cross-plan NIC accounting, the small-plan
batcher, Test-driven progress, and the plan-routed ``Sendrecv``/``Bcast``."""

import numpy as np
import pytest

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.mpi.constructors import Type_contiguous, Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.progress import ProgressEngine, ProgressError


def vector_type(comm, nblocks=64, block=8, pitch=64):
    return comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))


def big_vector_type(comm):
    # 256 KiB packed: wire time dwarfs the pack-launch gap between two Isends.
    return comm.Type_commit(Type_vector(1024, 256, 512, BYTE))


class TestEngineModes:
    def test_unknown_mode_rejected(self, summit_model):
        def program(ctx):
            with pytest.raises(ProgressError):
                ProgressEngine(ctx.comm, None, mode="psychic")
            return True

        assert all(World(1).run(program))

    def test_per_plan_reserve_is_uncontended(self, summit_model):
        def program(ctx):
            engine = ProgressEngine(ctx.comm, None, mode="per_plan")
            assert engine.reserve(0, ready=1.0, wire_s=5.0) == (1.0, 6.0)
            # A second reservation sees no port: PR-2 semantics.
            assert engine.reserve(1, ready=1.0, wire_s=5.0) == (1.0, 6.0)
            assert not engine.shared
            return True

        assert all(World(2).run(program))

    def test_shared_reserve_uses_world_nic(self, summit_model):
        def program(ctx):
            engine = ProgressEngine(ctx.comm, None, mode="shared")
            assert engine.nic is ctx.world.nic
            start, arrival = engine.reserve(1, ready=0.0, wire_s=10.0)
            assert (start, arrival) == (0.0, 10.0)
            start2, _ = engine.reserve(0, ready=0.0, wire_s=10.0)
            assert start2 == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)
            return True

        assert all(World(2).run(program))

    def test_batch_limit_validation(self, summit_model):
        def program(ctx):
            with pytest.raises(ProgressError):
                ProgressEngine(ctx.comm, None, batch_max_messages=0)
            return True

        assert all(World(1).run(program))

    def test_unknown_nic_mode_rejected(self, summit_model):
        def program(ctx):
            with pytest.raises(ProgressError):
                ProgressEngine(ctx.comm, None, nic_mode="psychic")
            return True

        assert all(World(1).run(program))

    def test_duplex_requires_the_shared_timeline(self, summit_model):
        """``nic="duplex"`` degrades to inject-only semantics in per-plan
        mode — there is no shared timeline to ingest against."""

        def program(ctx):
            shared = ProgressEngine(ctx.comm, None, mode="shared")
            per_plan = ProgressEngine(ctx.comm, None, mode="per_plan")
            inject = ProgressEngine(ctx.comm, None, mode="shared", nic_mode="inject_only")
            assert shared.duplex
            assert not per_plan.duplex
            assert not inject.duplex
            return True

        assert all(World(2).run(program))

    def test_reserve_wire_carries_the_nic_identity(self, summit_model):
        def program(ctx):
            engine = ProgressEngine(ctx.comm, None, mode="shared")
            slot = engine.reserve_wire(1, ready=0.0, wire_s=10.0, nbytes=64)
            assert (slot.start, slot.arrival, slot.wire_s) == (0.0, 10.0, 10.0)
            assert slot.seq == 0  # shared reservations are ingestable
            per_plan = ProgressEngine(ctx.comm, None, mode="per_plan")
            assert per_plan.reserve_wire(1, ready=0.0, wire_s=10.0).seq == -1
            return True

        assert all(World(2).run(program))


class TestDuplexIngestion:
    """Receive-side accounting at the engine level."""

    def _engine_pair(self, ctx, nic_mode):
        from repro.mpi.p2p import Envelope

        engine = ProgressEngine(ctx.comm, None, mode="shared", nic_mode=nic_mode)

        def envelope(source, seq, available_at, wire_s, post_time):
            import numpy as np

            return Envelope(
                source=source,
                dest=ctx.rank,
                tag=0,
                context=0,
                payload=np.zeros(1, dtype=np.uint8),
                available_at=available_at,
                device=True,
                wire_s=wire_s,
                post_time=post_time,
                source_seq=seq,
            )

        return engine, envelope

    def test_inject_only_is_the_identity(self, summit_model):
        def program(ctx):
            engine, envelope = self._engine_pair(ctx, "inject_only")
            e = envelope(1, 0, available_at=10.0, wire_s=10.0, post_time=0.0)
            assert engine.ingest_one(e) == 10.0
            assert engine.ingest_batch([e, e]) == [10.0, 10.0]
            assert engine.arrival_preview(e) == 10.0
            assert ctx.world.nic.ingests == 0
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_duplex_batch_is_served_in_key_order(self, summit_model):
        def program(ctx):
            from repro.machine.network import DEFAULT_WIRE_OVERLAP

            engine, envelope = self._engine_pair(ctx, "duplex")
            early = envelope(2, 0, available_at=10.0, wire_s=10.0, post_time=0.0)
            late = envelope(1, 0, available_at=10.5, wire_s=10.0, post_time=0.5)
            # Input order is reversed relative to key order: the early post
            # must still be served first.
            landings = engine.ingest_batch([late, early])
            assert landings[1] == 10.0
            assert landings[0] == pytest.approx(
                max(10.5, DEFAULT_WIRE_OVERLAP * 10.0 + 10.0)
            )
            return True

        assert all(World(3, ranks_per_node=1).run(program))

    def test_system_path_envelopes_opt_out(self, summit_model):
        """Envelopes without NIC identity (wire_s == 0 or seq < 0) are never
        ingested — the system MPI path keeps its PR-4 semantics."""

        def program(ctx):
            engine, envelope = self._engine_pair(ctx, "duplex")
            plain = envelope(1, -1, available_at=7.0, wire_s=0.0, post_time=0.0)
            assert engine.ingest_one(plain) == 7.0
            assert ctx.world.nic.ingests == 0
            return True

        assert all(World(2, ranks_per_node=1).run(program))


class TestCrossPlanSerialisation:
    """The acceptance claim: concurrent plans contend for the injection port."""

    def _two_isend_arrivals(self, summit_model, config):
        """Rank 0 fires two large Isends at peers 1 and 2 back-to-back; the
        peers report their messages' wire arrival times."""

        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = big_vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                first = comm.Isend((buf, 1, t), dest=1)
                second = comm.Isend((buf, 1, t), dest=2)
                Request.Waitall([first, second])
                comm.Barrier()
                return None
            comm.Recv((buf, 1, t), source=0)
            arrival = ctx.clock.now
            comm.Barrier()
            return arrival

        results = World(3, ranks_per_node=1).run(program)
        return results[1], results[2]

    def test_concurrent_isends_respect_serialised_bound(self, summit_model):
        shared_1, shared_2 = self._two_isend_arrivals(summit_model, TempiConfig())
        per_plan_1, per_plan_2 = self._two_isend_arrivals(
            summit_model, TempiConfig(progress="per_plan")
        )

        def wire(world_like_nbytes):
            from repro.machine.network import NetworkModel

            return NetworkModel().message_time(
                world_like_nbytes, same_node=False, device_buffers=True
            )

        wire_s = wire(1024 * 256)
        # Per-plan pricing: the second Isend never sees the first one's wire.
        assert per_plan_2 - per_plan_1 < DEFAULT_WIRE_OVERLAP * wire_s
        # Shared pricing: the second message waits for the port, so the two
        # arrivals are at least the serialised occupancy apart — it can never
        # complete earlier than the NicTimeline bound.
        assert shared_2 - shared_1 >= DEFAULT_WIRE_OVERLAP * wire_s * (1 - 1e-9)
        assert shared_2 >= per_plan_2

    def _concurrent_collectives(self, summit_model, config, plans):
        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = big_vector_type(comm)
            size = comm.Get_size()
            send = ctx.gpu.malloc(t.extent * size)
            recvs = [ctx.gpu.malloc(t.extent * size) for _ in range(plans)]
            counts = [1] * size
            displs = [p * t.extent for p in range(size)]
            comm.Barrier()
            start = ctx.clock.now
            requests = [
                comm.Ialltoallv(
                    send, counts, displs, recv, counts, displs,
                    sendtypes=t, recvtypes=t,
                )
                for recv in recvs
            ]
            Request.Waitall(requests)
            return ctx.clock.now - start

        return max(World(3, ranks_per_node=1).run(program))

    def test_two_ialltoallv_cost_at_least_one(self, summit_model):
        one = self._concurrent_collectives(summit_model, TempiConfig(), 1)
        two = self._concurrent_collectives(summit_model, TempiConfig(), 2)
        uncontended = self._concurrent_collectives(
            summit_model, TempiConfig(progress="per_plan"), 2
        )
        # Two concurrent plans price the wire at or above the single-plan
        # case, and at or above the PR-2 per-plan accounting.
        assert two >= one * (1 + 1e-6)
        assert two >= uncontended

    def test_stall_counter_surfaces_contention(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = big_vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                requests = [comm.Isend((buf, 1, t), dest=peer) for peer in (1, 2)]
                Request.Waitall(requests)
                comm.Barrier()
                return comm.stats.contention_stalls, repr(comm.stats)
            comm.Recv((buf, 1, t), source=0)
            comm.Barrier()
            return comm.stats.contention_stalls, repr(comm.stats)

        results = World(3, ranks_per_node=1).run(program)
        stalls, text = results[0]
        assert stalls >= 1
        assert f"stalls={stalls}" in text


class TestSmallPlanBatcher:
    def _burst(self, summit_model, config, nmessages=4):
        def program(ctx):
            comm = interpose(ctx, config, model=summit_model)
            t = vector_type(comm)
            bufs = [ctx.gpu.malloc(t.extent) for _ in range(nmessages)]
            if ctx.rank == 0:
                for index, buf in enumerate(bufs):
                    buf.data[:] = (index + 1) % 251
                requests = [
                    comm.Isend((buf, 1, t), dest=1, tag=index)
                    for index, buf in enumerate(bufs)
                ]
                Request.Waitall(requests)
                return comm.stats.batched_plans, None
            received = []
            for index, buf in enumerate(bufs):
                comm.Recv((buf, 1, t), source=0, tag=index)
                received.append(buf.data.copy())
            return comm.stats.batched_plans, received

        world = World(2, ranks_per_node=1)
        results = world.run(program)
        return world, results

    def test_burst_coalesces_into_one_wire_message(self, summit_model):
        world, results = self._burst(summit_model, TempiConfig())
        (batched, _), (_, received) = results
        assert batched == 4
        # One NIC reservation for the whole burst.
        assert world.nic.reservations == 1
        for index, payload in enumerate(received):
            assert (payload[:8] == (index + 1) % 251).all()

    def test_batching_preserves_bytes_and_order(self, summit_model):
        _, with_batch = self._burst(summit_model, TempiConfig())
        _, without = self._burst(summit_model, TempiConfig(batch_eager_sends=False))
        for a, b in zip(with_batch[1][1], without[1][1]):
            assert np.array_equal(a, b)

    def test_batch_flushes_at_limit(self, summit_model):
        config = TempiConfig(batch_max_messages=2)
        world, results = self._burst(summit_model, config, nmessages=5)
        (batched, _), _ = results
        # 5 messages under a 2-message cap: two full batches flushed at the
        # cap plus a singleton at Waitall (singletons are not "batched").
        assert batched == 4
        assert world.nic.reservations == 3

    def test_eager_threshold_bypasses_batcher(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = big_vector_type(comm)  # 256 KiB >= eager threshold
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                comm.Isend((buf, 1, t), dest=1).Wait()
                return comm.stats.batched_plans, comm.progress_engine.pending_sends()
            comm.Recv((buf, 1, t), source=0)
            return comm.stats.batched_plans, 0

        for batched, pending in World(2, ranks_per_node=1).run(program):
            assert batched == 0
            assert pending == 0

    def test_test_flushes_pending_batches(self, summit_model):
        """``Request.Test`` is a progress point: it posts deferred sends."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = 7
                request = comm.Isend((buf, 1, t), dest=1)
                assert comm.progress_engine.pending_sends(1) == 1
                request.Test()
                assert comm.progress_engine.pending_sends(1) == 0
                comm.Barrier()
                request.Wait()
                return True
            comm.Recv((buf, 1, t), source=0)  # completes without rank 0's Wait
            comm.Barrier()
            assert (buf.data[:8] == 7).all()
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_barrier_fallthrough_flushes_batches(self, summit_model):
        """Regression (deadlock): a system call reached through the
        passthrough — here ``Barrier`` — must flush deferred sends.  Rank 1
        blocks in ``Recv`` before ever reaching the barrier, so without the
        flush rank 0 would park in the barrier with the message still
        batched and both ranks would hang forever."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = 3
                request = comm.Isend((buf, 1, t), dest=1)
                comm.Barrier()  # progress point: posts the batched send
                request.Wait()
                return True
            comm.Recv((buf, 1, t), source=0)
            assert (buf.data[:8] == 3).all()
            comm.Barrier()
            return True

        assert all(World(2, ranks_per_node=1).run(program, timeout=30.0))

    def test_blocking_send_flushes_batches_first(self, summit_model):
        """Non-overtaking: a later blocking send cannot pass a deferred one."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            first = ctx.gpu.malloc(t.extent)
            second = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                first.data[:] = 1
                second.data[:] = 2
                request = comm.Isend((first, 1, t), dest=1, tag=5)
                comm.Send((second, 1, t), dest=1, tag=5)  # same tag: order matters
                request.Wait()
                return True
            comm.Recv((first, 1, t), source=0, tag=5)
            comm.Recv((second, 1, t), source=0, tag=5)
            assert (first.data[:8] == 1).all()
            assert (second.data[:8] == 2).all()
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_mixed_methods_keep_same_tag_fifo_order(self, summit_model):
        """Regression: batches split by wire path must not reorder same-tag
        messages to one peer when the method selector alternates — enqueueing
        on one path flushes the other path's pending batch first."""
        from repro.tempi import plan as _plan
        from repro.tempi.config import PackMethod

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            if ctx.rank == 0:
                engine = comm.progress_engine
                executor = comm.executor
                handler = comm.handler_of(t)
                bufs = []
                methods = [PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.DEVICE]
                for index, method in enumerate(methods):
                    buf = ctx.gpu.malloc(t.extent)
                    buf.data[:] = index + 1
                    bufs.append(buf)
                    plan = _plan.compile_send(
                        handler.packer, buf, 1, 1, 7, method, nonblocking=True
                    )
                    assert engine.offer_send(plan) is not None
                # The ONESHOT enqueue must have flushed the first DEVICE
                # message already; flush the rest and check wire order.
                engine.progress()
                assert executor is comm.executor
                comm.Barrier()
                return True
            order = []
            buf = ctx.gpu.malloc(t.extent)
            for _ in range(3):
                comm.Recv((buf, 1, t), source=0, tag=7)  # FIFO same-tag matching
                order.append(int(buf.data[0]))
            assert order == [1, 2, 3]
            comm.Barrier()
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_serial_engine_never_batches(self, summit_model):
        world, results = self._burst(summit_model, TempiConfig(overlap=False))
        (batched, _), _ = results
        assert batched == 0

    def test_per_plan_engine_never_batches(self, summit_model):
        world, results = self._burst(summit_model, TempiConfig(progress="per_plan"))
        (batched, _), _ = results
        assert batched == 0
        assert world.nic.reservations == 0

    def test_batched_flush_leaves_no_pending_ingest(self, summit_model):
        """Regression: the batch's reservation-time pending record must be
        consumed when its constituents are ingested — a fully-landed burst
        cannot keep looking like receive-side backlog at its peer."""
        world, _ = self._burst(summit_model, TempiConfig())
        assert world.nic.pending_ingest(1) == 0

    def test_inject_only_never_feeds_the_pending_ledger(self, summit_model):
        world, _ = self._burst(summit_model, TempiConfig(nic="inject_only"))
        assert world.nic.pending_ingest(1) == 0
        assert world.nic.ingests == 0


class TestSendrecvThroughPlans:
    def test_ring_exchange_bytes_and_counters(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            out = ctx.gpu.malloc(t.extent)
            into = ctx.gpu.malloc(t.extent)
            out.data[:] = (ctx.rank + 1) % 251
            size = comm.Get_size()
            status = comm.Sendrecv(
                (out, 1, t), (ctx.rank + 1) % size, 3,
                (into, 1, t), (ctx.rank - 1) % size, 3,
            )
            assert status.Get_source() == (ctx.rank - 1) % size
            assert (into.data[:8] == ((ctx.rank - 1) % size + 1) % 251).all()
            return comm.stats.sends, comm.stats.recvs

        for sends, recvs in World(3, ranks_per_node=1).run(program):
            assert sends == 1
            assert recvs == 1

    def test_host_buffers_fall_back(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            out = np.full(64, ctx.rank + 1, dtype=np.uint8)
            into = np.zeros(64, dtype=np.uint8)
            size = comm.Get_size()
            comm.Sendrecv(
                out, (ctx.rank + 1) % size, 0, into, (ctx.rank - 1) % size, 0
            )
            assert (into == (ctx.rank - 1) % size + 1).all()
            return comm.stats.sends + comm.stats.recvs

        assert World(2, ranks_per_node=1).run(program) == [0, 0]


class TestBcastThroughPlans:
    def test_strided_bcast_scatters_elementwise(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint16).astype(np.uint8)
            reference = buf.data.copy()
            comm.Bcast((buf, 1, t), root=0)
            return buf.data.copy(), reference, comm.stats.collective_hits

        results = World(3, ranks_per_node=1).run(program)
        root_data = results[0][1]
        for data, _, hits in results:
            assert hits == 1
            # Every strided element equals the root's; the gaps stay local.
            for block in range(64):
                begin = block * 64
                assert np.array_equal(data[begin : begin + 8], root_data[begin : begin + 8])

    def test_contiguous_type_falls_back_to_system_bcast(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_contiguous(128, BYTE))
            buf = ctx.gpu.malloc(128)
            if ctx.rank == 0:
                buf.data[:] = 9
            comm.Bcast((buf, 1, t), root=0)
            assert (buf.data == 9).all()
            return comm.stats.collective_hits

        assert World(2, ranks_per_node=1).run(program) == [0, 0]

    def test_single_rank_bcast_is_a_noop_fallback(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            comm.Bcast((buf, 1, t), root=0)
            return comm.stats.collective_hits

        assert World(1).run(program) == [0]

    def test_serial_ablation_prices_bcast_without_nic(self, summit_model):
        """``overlap=False`` broadcasts price each transfer independently,
        like serial sends — no NIC reservations, bytes still correct."""

        def program(ctx):
            comm = interpose(ctx, TempiConfig(overlap=False), model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = 5
            comm.Bcast((buf, 1, t), root=0)
            assert (buf.data[:8] == 5).all()
            return comm.stats.collective_hits

        world = World(3, ranks_per_node=1)
        assert world.run(program) == [1, 1, 1]
        assert world.nic.reservations == 0

    def test_bcast_charges_serialised_wire_per_peer(self, summit_model):
        """The root's fan-out reserves one NIC slot per peer."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            comm.Bcast((buf, 1, t), root=0)
            comm.Barrier()
            return True

        world = World(4, ranks_per_node=1)
        assert all(world.run(program))
        assert world.nic.reservations == 3  # root → each of 3 peers
