"""Path-resolution edge cases of the topology subsystem.

The placement tests live in ``test_topology.py``; this module pins the
resolver's corners: self paths bind nothing, single-node worlds never grow
fabric classes, islands that do not divide the node still cover every rank,
and the rail assignment is a pure function of the (node, local rank) slot —
renumbering the world cannot move a slot's rail.
"""

from __future__ import annotations

import math

import pytest

from repro.machine.network import NetworkModel
from repro.machine.spec import SUMMIT
from repro.machine.topology import (
    PATH_KINDS,
    Topology,
    TopologyError,
    TopologySpec,
)

HIER = TopologySpec(
    ranks_per_node=4, island_size=2, rails_per_node=2,
    leaf_radix=2, oversubscription=4.0,
)


class TestSelfPaths:
    def test_self_path_binds_nothing(self):
        topo = Topology(16, spec=HIER)
        for rank in (0, 7, 15):
            for device in (False, True):
                path = topo.resolve(rank, rank, device_buffers=device)
                assert path.kind == "self"
                assert path.rail is None
                assert path.ingest_rail is None
                assert path.shared == ()

    def test_self_path_prices_like_the_nearest_hop(self):
        topo = Topology(8, spec=HIER)
        device = topo.resolve(3, 3, device_buffers=True)
        host = topo.resolve(3, 3, device_buffers=False)
        gpu_gpu, intra = SUMMIT.node.gpu_gpu, SUMMIT.node.intra_cpu
        assert device.latency_s == gpu_gpu.latency_s + gpu_gpu.per_message_overhead_s
        assert host.latency_s == intra.latency_s + intra.per_message_overhead_s

    def test_self_path_has_finite_bandwidth(self):
        path = Topology(4, spec=HIER).resolve(0, 0, device_buffers=True)
        assert 0 < path.bandwidth_Bps < math.inf


class TestSingleNodeWorlds:
    def test_no_fabric_classes(self):
        topo = Topology(4, spec=HIER)
        pairs = topo.representative_pairs()
        assert "leaf" not in pairs
        assert "spine" not in pairs
        assert set(pairs) <= set(PATH_KINDS)

    def test_all_paths_stay_on_node(self):
        topo = Topology(4, spec=HIER)
        for src in range(4):
            for dst in range(4):
                path = topo.resolve(src, dst, device_buffers=True)
                assert path.kind in ("self", "island", "node")
                assert path.rail is None and path.ingest_rail is None
                assert path.shared == ()

    def test_single_rank_world(self):
        topo = Topology(1, spec=TopologySpec(ranks_per_node=1, leaf_radix=2))
        assert topo.representative_pairs() == {"self": (0, 0)}

    def test_cross_island_device_path_bounces_through_the_bridge(self):
        topo = Topology(4, spec=HIER)
        path = topo.resolve(0, 2, device_buffers=True)  # islands {0,1} vs {2,3}
        assert path.kind == "node"
        assert tuple(hop.kind for hop in path.hops) == ("nvlink", "bridge")

    def test_host_buffers_ignore_islands(self):
        topo = Topology(4, spec=HIER)
        path = topo.resolve(0, 2, device_buffers=False)
        assert path.kind == "node"
        assert tuple(hop.kind for hop in path.hops) == ("shm",)


class TestOddShapes:
    def test_island_size_not_dividing_node(self):
        spec = TopologySpec(ranks_per_node=6, island_size=4)
        topo = Topology(6, spec=spec)
        islands = [topo.placement(r).island for r in range(6)]
        assert islands == [0, 0, 0, 0, 1, 1]  # a full island and a remnant

    def test_partial_last_node_resolves_every_pair(self):
        spec = TopologySpec(ranks_per_node=4, island_size=2, rails_per_node=2,
                            leaf_radix=2, oversubscription=2.0)
        topo = Topology(11, spec=spec)  # 3 nodes, the last holding 3 ranks
        assert topo.nnodes == 3
        kinds = {
            topo.resolve(src, dst, device_buffers=True).kind
            for src in range(11) for dst in range(11)
        }
        assert kinds == {"self", "island", "node", "leaf", "spine"}

    def test_island_larger_than_node_is_one_island(self):
        spec = TopologySpec(ranks_per_node=2, island_size=4)
        topo = Topology(4, spec=spec)
        assert topo.same_island(0, 1)
        assert not topo.same_island(0, 2)  # different nodes, never one island

    def test_more_rails_than_islands_leaves_rails_idle(self):
        spec = TopologySpec(ranks_per_node=2, island_size=0, rails_per_node=4)
        topo = Topology(4, spec=spec)
        # One island per node under the island policy: every rank rides rail 0.
        assert {topo.rail_of(r) for r in range(4)} == {0}

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec.from_dict({"ranks_per_node": 2, "rails": 1})


class TestRailDeterminism:
    @pytest.mark.parametrize("policy", ["island", "local"])
    def test_rail_is_a_pure_function_of_the_slot(self, policy):
        spec = TopologySpec(ranks_per_node=4, island_size=2, rails_per_node=2,
                            rail_policy=policy, leaf_radix=2)
        small = Topology(8, spec=spec)
        large = Topology(32, spec=spec)
        for rank in range(8):
            place = small.placement(rank)
            rail = small.rail_of(rank)
            # The same (node, local rank) slot in any world gets the same rail.
            for node in range(large.nnodes):
                twin = node * spec.ranks_per_node + place.local_rank
                assert large.rail_of(twin) == rail

    def test_rail_key_carries_the_node(self):
        topo = Topology(16, spec=HIER)
        for rank in range(16):
            key = topo.rail_key(rank)
            assert key is not None
            assert key[0] == topo.node_of(rank)

    def test_local_policy_round_robins(self):
        spec = TopologySpec(ranks_per_node=4, rails_per_node=3, rail_policy="local")
        topo = Topology(4, spec=spec)
        assert [topo.rail_of(r) for r in range(4)] == [0, 1, 2, 0]

    def test_flat_spec_has_no_rails(self):
        topo = Topology(8, ranks_per_node=2)
        assert all(topo.rail_of(r) is None for r in range(8))
        assert all(topo.rail_key(r) is None for r in range(8))


class TestResolutionContracts:
    def test_resolution_is_memoised(self):
        topo = Topology(16, spec=HIER)
        assert topo.resolve(0, 9) is topo.resolve(0, 9)
        assert topo.resolve(0, 9) is not topo.resolve(0, 9, device_buffers=True)

    def test_spine_path_shares_both_uplink_bundles(self):
        topo = Topology(16, spec=HIER)
        src, dst = 0, 8  # leaf 0 -> leaf 1
        path = topo.resolve(src, dst, device_buffers=True)
        assert path.kind == "spine"
        assert dict(path.shared).keys() == {("up", 0), ("down", 1)}
        uplink = topo.uplink_bandwidth_Bps(SUMMIT.inter_gpu)
        assert path.bandwidth_Bps == min(SUMMIT.inter_gpu.bandwidth_Bps, uplink)

    def test_flat_message_time_matches_the_flat_model(self):
        topo = Topology(8, ranks_per_node=2)
        network = NetworkModel(SUMMIT)
        for src, dst in ((0, 1), (0, 2), (3, 3)):
            same = topo.same_node(src, dst)
            for device in (False, True):
                for nbytes in (0, 4096, SUMMIT.eager_threshold + 1):
                    assert topo.message_time(
                        src, dst, nbytes, device_buffers=device
                    ) == network.message_time(nbytes, same_node=same, device_buffers=device)

    def test_out_of_range_resolution_rejected(self):
        topo = Topology(4, spec=HIER)
        with pytest.raises(ValueError):
            topo.resolve(0, 4)
        with pytest.raises(ValueError):
            topo.message_time(-1, 0, 64)

    def test_negative_nbytes_rejected(self):
        with pytest.raises(ValueError):
            Topology(4).message_time(0, 1, -1)
