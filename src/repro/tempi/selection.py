"""The unified method-selection subsystem (Sec. 4, Sec. 6.3, and beyond).

Until this module existed the per-message packing-method decision was smeared
across three layers: :meth:`~repro.tempi.perf_model.PerformanceModel.choose_method`
held the contention-free Eqs. 1-3 comparison, ``tempi/plan.py`` declared the
selector callback type, and the interposer wired cache memoisation and
query-overhead charging ad hoc.  Worse, every candidate was priced as if the
NIC were idle even though the shared :class:`~repro.machine.nic.NicTimeline`
knows the rank's live injection-port occupancy.  This module owns all of it:

* :class:`MethodSelector` — the protocol every selector satisfies (and the
  callback type the :mod:`repro.tempi.plan` compilers take);
* :class:`FixedSelector` — a forced method, never queries the model
  (``TempiConfig(selection="fixed", method=...)``);
* :class:`ModelSelector` — the contention-free model path: memoises the
  ``(nbytes, block_length)`` query through the resource cache and charges the
  measured query overhead on the rank's clock, exactly as the paper charges
  it (kept as the default and for ablations);
* :class:`ContendedSelector` — prices each candidate against the live NIC
  state this rank can see, through the one pricing equation
  :func:`contended_estimate` implements::

      T_method = max(T_pack, B_inject, B_link, B_ingest) + T_wire + T_unpack

  where ``B_inject`` is this rank's injection-port backlog, ``B_link`` the
  remaining occupancy of this rank's link to the destination peer, and
  ``B_ingest`` the destination's ingestion-port backlog (the hot-peer
  signal; read from the posted-but-not-yet-ingested ledger, and folded in
  only under ``TempiConfig(nic="duplex")`` — the ``"inject_only"`` ablation
  prices ``max(pack, B_inject) + wire + unpack``, bit-identical to PR 4).
  A queued port — at either end — hides pack time (the pack runs while
  earlier messages drain), so under load the decision tilts toward the
  method with the cheaper wire-plus-unpack tail and the one-shot/device
  crossover of Fig. 9 shifts; a single hot *receiver* does the same to
  every sender targeting it (``bench_incast.py``).
  ``bench_fig9_selection.py`` measures the injection-side shift,
  :func:`repro.apps.exchange_model.model_selected_exchange` prices it
  analytically through the *same* :func:`contended_estimate`;
* :class:`CalibrationRegistry` — measurement files keyed per
  :class:`~repro.machine.spec.MachineSpec`, so several machines' models
  coexist in one process (machine sweeps measure each system once, in the
  spirit of the paper's run-once measurement binary).

Every selector accepts ``(packer, nbytes, peer=...)`` — ``peer`` being the
destination rank of a send-side decision, or ``None`` when the message has
no single destination (receives, fan-outs) — and returns a concrete
:class:`~repro.tempi.config.PackMethod`.  Zero-byte sections short-circuit to
:data:`NOOP_METHOD` without touching model or clock — an empty section moves
nothing, so any staging kind is trivially correct and pricing primitives
(which reject ``nbytes <= 0``) are never consulted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, ContextManager, Dict, Optional, Protocol, Union, cast

from repro.machine.nic import NicTimeline
from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology
from repro.tempi.config import SELECTION_MODES, PackMethod, TempiConfig
from repro.tempi.measurement import SystemMeasurement, measure_system
from repro.tempi.perf_model import PerformanceModel

#: The trivial selection for a zero-byte section: nothing is packed and
#: nothing is posted, so the method only names a staging kind that is never
#: allocated.  DEVICE keeps such sections on the same path self-sections use.
NOOP_METHOD = PackMethod.DEVICE


#: Granularity at which :class:`ContendedSelector` reads the port backlog:
#: coarse enough that stable queue depths share one memoised decision (and
#: one cached-query charge), fine enough (0.1 µs, far below the microseconds
#: at which selections flip) never to matter for the decision itself.
BACKLOG_RESOLUTION_S = 1e-7


class SelectionError(ValueError):
    """A selector or registry was configured impossibly."""


class MethodSelector(Protocol):
    """The per-message method policy: ``(packer, nbytes, peer=...) -> method``.

    The plan compilers call the selector once per wire message at compile
    time, so model-query overhead stays charged where the paper charges it
    (inside the interposed call, before any bytes move).  ``peer`` names the
    destination rank of a send-side decision so NIC-aware selectors can price
    the link to — and the ingestion backlog of — that specific peer; pass
    ``None`` (the default) when the message has no single destination.
    """

    def __call__(
        self, packer: Any, nbytes: int, peer: Optional[int] = None
    ) -> PackMethod:  # pragma: no cover - protocol
        ...


# --------------------------------------------------------------------------- #
# Contended pricing (shared by the selector, the benchmark and the analytic
# exchange model — one function, so the three can never drift)
# --------------------------------------------------------------------------- #

#: The pricing terms a contended candidate can be bound by, in tie-break
#: priority order: its own pack kernel, this rank's injection-port backlog,
#: the remaining occupancy of the link to the destination, the destination's
#: ingestion-port backlog (duplex accounting only), this rank's shared NIC
#: rail, or the shared leaf-uplink bundles on the path (both topology-aware
#: selection only — appended last so every pre-topology tie breaks exactly
#: as before).
BACKLOG_PORTS = ("pack", "inject", "link", "ingest", "rail", "uplink")


@dataclass(frozen=True)
class ContendedEstimate:
    """End-to-end candidate latencies under live NIC backlog.

    A message cannot enter the wire before its pack completes, nor before
    this rank's injection port and its link to the destination drain; and its
    landing cannot outrun the destination's ingestion-port backlog (whose
    mirror-rule wait algebraically folds into the same ``max`` — see
    :mod:`repro.machine.nic`).  Queued time therefore hides pack time, and
    each candidate's effective latency is::

        max(pack, B_inject, B_link, B_ingest) + wire + unpack

    At zero backlogs this is exactly the contention-free Eqs. 1-3 total;
    with ``link_backlog_s == ingest_backlog_s == 0`` it is exactly the PR-4
    injection-only pricing, bit-for-bit.  ``oneshot_bound``/``device_bound``
    name the term that bound each candidate (ties break in
    :data:`BACKLOG_PORTS` order), which is what ``repro select-table --nic``
    prints per cell.
    """

    oneshot: float
    device: float
    backlog_s: float
    link_backlog_s: float = 0.0
    ingest_backlog_s: float = 0.0
    rail_backlog_s: float = 0.0
    uplink_backlog_s: float = 0.0
    oneshot_bound: str = "pack"
    device_bound: str = "pack"

    def best(self) -> PackMethod:
        """Ties break toward one-shot, matching :class:`MethodEstimate`."""
        return PackMethod.ONESHOT if self.oneshot <= self.device else PackMethod.DEVICE

    def bound(self) -> str:
        """The term (:data:`BACKLOG_PORTS`) that bound the selected method."""
        return self.oneshot_bound if self.best() is PackMethod.ONESHOT else self.device_bound


def contended_estimate(
    model: PerformanceModel,
    nbytes: int,
    block_length: int,
    backlog_s: float,
    *,
    link_backlog_s: float = 0.0,
    ingest_backlog_s: float = 0.0,
    rail_backlog_s: float = 0.0,
    uplink_backlog_s: float = 0.0,
    oneshot_wire_s: Optional[float] = None,
    device_wire_s: Optional[float] = None,
) -> ContendedEstimate:
    """Price the one-shot and device candidates under live NIC backlog.

    ``backlog_s`` is the sender's injection-port queue (the PR-4 term);
    ``link_backlog_s`` the remaining occupancy of the sender's link to the
    destination; ``ingest_backlog_s`` the destination's ingestion-port queue;
    ``rail_backlog_s`` the sender's shared NIC-rail queue and
    ``uplink_backlog_s`` the worst shared leaf-uplink bundle on the path
    (both zero outside a hierarchical topology).  All backlogs default to
    zero, in which case the function is exactly the PR-4
    ``max(pack, backlog) + wire + unpack`` pricing.  ``oneshot_wire_s`` /
    ``device_wire_s`` replace the measured flat transfer time with a
    path-resolved wire price (:meth:`~repro.machine.topology.Topology.message_time`),
    which is what moves the Fig. 9 crossover per path class; ``None`` (the
    default) keeps the flat ``model.transfer_time`` pricing bit-for-bit.
    """
    for name, value in (
        ("backlog", backlog_s),
        ("link backlog", link_backlog_s),
        ("ingest backlog", ingest_backlog_s),
        ("rail backlog", rail_backlog_s),
        ("uplink backlog", uplink_backlog_s),
    ):
        if value < 0:
            raise SelectionError(f"{name} must be non-negative, got {value}")

    def candidate(
        strategy: str, wire_kind: str, wire_override: Optional[float]
    ) -> tuple[float, str]:
        """One strategy's effective latency and its binding term."""
        pack = model.pack_time(strategy, "pack", nbytes, block_length)
        terms = (
            pack, backlog_s, link_backlog_s, ingest_backlog_s,
            rail_backlog_s, uplink_backlog_s,
        )
        entry = max(terms)
        bound = BACKLOG_PORTS[terms.index(entry)]
        wire = (
            model.transfer_time(wire_kind, nbytes)
            if wire_override is None
            else wire_override
        )
        total = entry + wire + model.pack_time(strategy, "unpack", nbytes, block_length)
        return total, bound

    oneshot, oneshot_bound = candidate("oneshot", "cpu_cpu", oneshot_wire_s)
    device, device_bound = candidate("device", "gpu_gpu", device_wire_s)
    return ContendedEstimate(
        oneshot=oneshot,
        device=device,
        backlog_s=backlog_s,
        link_backlog_s=link_backlog_s,
        ingest_backlog_s=ingest_backlog_s,
        rail_backlog_s=rail_backlog_s,
        uplink_backlog_s=uplink_backlog_s,
        oneshot_bound=oneshot_bound,
        device_bound=device_bound,
    )


# --------------------------------------------------------------------------- #
# Selectors
# --------------------------------------------------------------------------- #

class FixedSelector:
    """Always the configured method — ``TEMPI_PLACE_*``-style forcing."""

    #: Decisions ignore ``peer`` entirely, so one selection prices a whole
    #: equivalence class (the batch-booking contract :meth:`select_many`
    #: relies on).
    peer_invariant = True

    def __init__(self, method: PackMethod) -> None:
        if method is PackMethod.AUTO:
            raise SelectionError("a fixed selector needs a concrete method, not AUTO")
        self.method = method

    def __call__(self, packer: Any, nbytes: int, peer: Optional[int] = None) -> PackMethod:
        """Return the forced method (zero-byte sections are no-ops)."""
        if nbytes <= 0:
            return NOOP_METHOD
        return self.method

    def select_many(
        self, packer: Any, nbytes: int, peer: Optional[int] = None, count: int = 1
    ) -> PackMethod:
        """Select for ``count`` same-shape messages — free, nothing is priced."""
        return self(packer, nbytes, peer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FixedSelector {self.method.value}>"


class ModelSelector:
    """The contention-free model path (Eqs. 1-3), with paper-faithful costs.

    Results are memoised through the resource cache keyed by
    ``(nbytes, block_length)``; the rank's clock is charged the measured
    ~277 ns for cached queries and a few microseconds for cold ones — the
    overhead accounting that used to live inside the interposer.
    ``model`` may be a :class:`~repro.tempi.perf_model.PerformanceModel` or a
    zero-argument callable producing one (so construction never forces the
    measurement sweep).
    """

    #: The contention-free decision is a pure function of
    #: ``(nbytes, block_length)`` — ``peer`` never participates — so one
    #: representative prices a whole homogeneous batch (:meth:`select_many`).
    peer_invariant = True

    def __init__(
        self,
        model: Union[PerformanceModel, Callable[[], PerformanceModel]],
        *,
        cache: Any = None,
        clock: Any = None,
        config: Optional[TempiConfig] = None,
        stats: Any = None,
    ) -> None:
        self._model = model
        self.cache = cache
        self.clock = clock
        self.config = config if config is not None else TempiConfig()
        #: Optional :class:`~repro.tempi.interposer.InterposerStats` whose
        #: ``selection_memo_hits``/``selection_memo_misses`` counters this
        #: selector bumps (a hit means the *value* came from the memo).
        self.stats = stats

    @property
    def model(self) -> PerformanceModel:
        """The performance model (lazily constructed on first use)."""
        if not isinstance(self._model, PerformanceModel):
            self._model = self._model()
        return self._model

    # ------------------------------------------------------------- accounting
    def _note_memo(self, hit: bool) -> None:
        """Count a memo hit/miss on the interposer stats (when wired)."""
        if self.stats is None:
            return
        if hit:
            self.stats.selection_memo_hits += 1
        else:
            self.stats.selection_memo_misses += 1

    def _memoize(
        self, key: tuple[Any, ...], compute: Callable[[], PackMethod]
    ) -> tuple[PackMethod, bool]:
        """Memoise a decision and charge the query overhead on the clock.

        With ``config.selection_memo`` off the value is recomputed on every
        call, but the *charge schedule* is untouched: the resource cache
        still remembers which keys were queried (:meth:`ResourceCache.note_query`),
        so a repeated query is priced at the cached-query cost either way and
        the knob can never move a priced result.
        """
        if self.cache is None:
            self._note_memo(False)
            return compute(), False
        if self.config.selection_memo:
            hits_before = self.cache.stats.query_hits
            value = cast(PackMethod, self.cache.memoize(key, compute))
            cached = bool(self.cache.stats.query_hits > hits_before)
            self._note_memo(cached)
            return value, cached
        cached = bool(self.cache.note_query(key))
        self._note_memo(False)
        return compute(), cached

    def _charge(self, cached: bool) -> None:
        """Advance the rank's clock by the (cached or cold) query cost."""
        if self.clock is not None:
            cfg = self.config
            self.clock.advance(cfg.model_cached_query_s if cached else cfg.model_query_s)

    # -------------------------------------------------------------- selection
    def _decide(self, nbytes: int, block_length: int) -> PackMethod:
        """The contention-free Eqs. 1-3 comparison."""
        return self.model.choose_method(nbytes, block_length)

    def __call__(self, packer: Any, nbytes: int, peer: Optional[int] = None) -> PackMethod:
        """Select the contention-free best method (``peer`` is ignored)."""
        if nbytes <= 0:
            return NOOP_METHOD
        block_length = packer.block.block_length
        method, cached = self._memoize(
            ("method", int(nbytes), int(block_length)),
            lambda: self._decide(int(nbytes), int(block_length)),
        )
        self._charge(cached)
        return method

    def select_many(
        self, packer: Any, nbytes: int, peer: Optional[int] = None, count: int = 1
    ) -> PackMethod:
        """Select once for ``count`` same-shape messages, replaying the charges.

        Defined as exactly ``count`` scalar calls: the representative call
        runs first (memoising the decision, charging hit or miss as the cache
        finds it), and because the decision for a ``(nbytes, block_length)``
        class is then guaranteed memoised, members ``2..count`` are replayed
        as the bookkeeping a scalar hit performs — one cache query hit, one
        memo-hit note and one cached-query clock charge each, with the clock
        advanced *per member* so event counts (and thus priced clocks) cannot
        drift from the loop.  When the memo cannot guarantee hits (cache off
        or absent, ``selection_memo`` disabled) the members simply run as the
        scalar loop.
        """
        if nbytes <= 0:
            return NOOP_METHOD
        cache = self.cache
        replayable = (
            self.peer_invariant
            and cache is not None
            and cache.enabled
            and self.config.selection_memo
        )
        if replayable:
            # Fast path: probe the memo store directly.  A present key means
            # the representative and every member would each replay as one
            # scalar hit — one query hit, one memo-hit note and one
            # cached-query clock charge — so writing those books ``count``
            # times here is bit-identical to the decomposition below, minus
            # the per-member call chain.  An absent key falls through to the
            # representative call, which memoises and charges the miss.
            value = cache._queries.get(
                ("method", int(nbytes), int(packer.block.block_length))
            )
            if value is not None:
                cache.stats.query_hits += count
                if self.stats is not None:
                    self.stats.selection_memo_hits += count
                clock = self.clock
                if clock is not None:
                    cost = self.config.model_cached_query_s
                    if cost < 0:
                        clock.advance(cost)  # raises ClockError, as the loop would
                    # Unrolled clock.advance(cost) x count: the same serial
                    # float additions (and event count) a per-member advance
                    # loop performs, without the per-call overhead.
                    now = clock.now
                    for _ in range(count):
                        now += cost
                    clock.now = now
                    clock._events += count
                return cast(PackMethod, value)
        method = self(packer, nbytes, peer)
        extra = count - 1
        if extra <= 0:
            return method
        if not replayable:
            for _ in range(extra):
                method = self(packer, nbytes, peer)
            return method
        self.cache.stats.query_hits += extra
        if self.stats is not None:
            self.stats.selection_memo_hits += extra
        clock = self.clock
        if clock is not None:
            # Inlined self._charge(True) per member: the clock must advance
            # once per replayed query so event counts match the scalar loop.
            cost = self.config.model_cached_query_s
            for _ in range(extra):
                clock.advance(cost)
        return method

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class ContendedSelector(ModelSelector):
    """NIC-aware selection: folds live port and link backlog into Eqs. 1-3.

    Backlogs are read off the shared :class:`~repro.machine.nic.NicTimeline`
    at selection time, each clamped at zero against this rank's clock: the
    rank's own injection-port queue (``port_free_at(rank) - now``, the PR-4
    term, always); and — under ``TempiConfig(nic="duplex")``, when the
    destination ``peer`` is known — the remaining occupancy of this rank's
    link to that peer (``link_free_at(rank, peer) - now``) and the peer's
    ingestion-port backlog (:meth:`~repro.machine.nic.NicTimeline.ingest_backlog`,
    the advisory incast signal), so selection reacts to a single hot peer.
    At zero backlog the decision is *identical* to :class:`ModelSelector`'s
    (the memoised contention-free path — the equivalence the property suite
    pins down); under load the shared :func:`contended_estimate` pricing
    takes over.  Backlogs are quantised to :data:`BACKLOG_RESOLUTION_S`
    *before* pricing, so the memo key and the decision always agree,
    repeated selections at a stable queue depth genuinely hit the cache (and
    pay the cached-query charge), and the memo cannot grow one entry per
    float jitter over a long run — far below any flip threshold, the
    resolution never changes a decision.

    Determinism note: the link term reads this rank's own send state and the
    ingestion term reads posted traffic; both are exact for traffic whose
    posts happened-before the selection (e.g. across a barrier), which is
    how ``bench_incast.py`` drives them.
    """

    #: Pricing reads the link to — and the ingestion backlog of — the
    #: specific ``peer`` at the *current* clock, so no single representative
    #: can stand in for a batch: :meth:`select_many` degrades to the scalar
    #: loop and the batched post path never engages.
    peer_invariant = False

    def __init__(
        self,
        model: Union[PerformanceModel, Callable[[], PerformanceModel]],
        nic: NicTimeline,
        rank: int,
        *,
        cache: Any = None,
        clock: Any = None,
        config: Optional[TempiConfig] = None,
        stats: Any = None,
        topology: Optional[Topology] = None,
    ) -> None:
        super().__init__(model, cache=cache, clock=clock, config=config, stats=stats)
        if nic is None:
            raise SelectionError("a contended selector needs the shared NIC timeline")
        self.nic = nic
        self.rank = rank
        #: A *hierarchical* topology makes pricing per-path-class: the wire
        #: term comes from the resolved path and the rail/uplink cursors join
        #: the backlog max.  ``None`` or a flat topology keeps the flat
        #: pricing bit-for-bit.
        self.topology = topology
        #: Bounded LRU over quantized-backlog selection keys.  Unlike the
        #: unbounded resource-cache memo a long contended run cannot grow one
        #: entry per observed queue depth; ``config.selection_memo_size``
        #: bounds residency.  With ``selection_memo`` off only the *keys* are
        #: retained (values recomputed), keeping the charge schedule — and
        #: the eviction order — identical in both modes.
        self._memo: OrderedDict[tuple[Any, ...], Optional[PackMethod]] = OrderedDict()

    @staticmethod
    def _quantise(raw: float) -> float:
        """Round a backlog to the memoisation resolution."""
        return round(raw / BACKLOG_RESOLUTION_S) * BACKLOG_RESOLUTION_S

    @property
    def _now(self) -> float:
        """This rank's virtual time (0.0 when driven without a clock)."""
        return self.clock.now if self.clock is not None else 0.0

    @property
    def duplex(self) -> bool:
        """True when link and ingestion backlog are folded into pricing."""
        return self.config.nic == "duplex"

    def backlog(self) -> float:
        """Seconds of queued injection on this rank's port, as of its clock.

        Quantised to :data:`BACKLOG_RESOLUTION_S` so stable queue depths
        memoise (method flip thresholds sit orders of magnitude higher).
        """
        return self._quantise(max(0.0, self.nic.port_free_at(self.rank) - self._now))

    def link_backlog(self, peer: Optional[int]) -> float:
        """Remaining occupancy of this rank's link to ``peer`` (quantised)."""
        if peer is None or not self.duplex:
            return 0.0
        return self._quantise(max(0.0, self.nic.link_free_at(self.rank, peer) - self._now))

    def ingest_backlog(self, peer: Optional[int]) -> float:
        """``peer``'s ingestion-port backlog — the hot-peer term (quantised)."""
        if peer is None or not self.duplex:
            return 0.0
        return self._quantise(self.nic.ingest_backlog(peer, self._now))

    @property
    def topology_aware(self) -> bool:
        """True when a hierarchical topology reshapes the pricing."""
        return self.topology is not None and self.topology.hierarchical

    def rail_backlog(self, peer: Optional[int]) -> float:
        """Queue on this rank's shared NIC rail toward ``peer`` (quantised).

        The rail key is a pure function of placement (identical for host and
        device wire paths), so the device-path resolution stands in for both.
        Zero without a hierarchical topology, for intra-node peers, and for
        dedicated (un-railed) NICs.
        """
        topology = self.topology
        if peer is None or topology is None or not topology.hierarchical:
            return 0.0
        path = topology.resolve(self.rank, peer, device_buffers=True)
        if path.rail is None:
            return 0.0
        return self._quantise(max(0.0, self.nic.rail_free_at(path.rail) - self._now))

    def uplink_backlog(self, peer: Optional[int]) -> float:
        """Worst shared leaf-uplink occupancy on the path to ``peer``.

        Reads the shared fabric ledgers other ranks also write; like the
        ingestion term this is exact for traffic whose posts happened-before
        the selection (the barrier-phased drivers the benchmarks use).
        """
        topology = self.topology
        if peer is None or topology is None or not topology.hierarchical:
            return 0.0
        path = topology.resolve(self.rank, peer, device_buffers=True)
        worst = 0.0
        for key, _bandwidth in path.shared:
            worst = max(worst, self.nic.shared_free_at(key) - self._now)
        return self._quantise(max(0.0, worst))

    def _pricing_guard(self) -> ContextManager[None]:
        """The NIC's pricing purity guard, when it offers one.

        Under the clock sanitizer (``TempiConfig(sanitize=True)``) ``self.nic``
        is a :class:`~repro.tempi.sanitizer.SanitizedNic` whose guard
        checksums this rank's ledger slice around the pricing reads and
        raises if anything mutated mid-decision; a bare
        :class:`~repro.machine.nic.NicTimeline` has no guard and the
        selection runs unwatched.
        """
        guard = getattr(self.nic, "pricing_guard", None)
        if guard is None:
            return nullcontext()
        return cast(ContextManager[None], guard())

    def _contended_memoize(
        self, key: tuple[Any, ...], compute: Callable[[], PackMethod]
    ) -> tuple[PackMethod, bool]:
        """Bounded-LRU memoisation with a knob-independent charge schedule.

        Mirrors the resource cache's ``query_hits``/``query_misses`` counters
        (and its ``use_cache=False`` always-cold semantics) so existing
        ablation accounting is unchanged; eviction follows strict LRU order
        with ``config.selection_memo_size`` entries.  With ``selection_memo``
        off the key is tracked but the value discarded, so repeats charge the
        cached-query cost in both modes while the decision is recomputed.
        """
        if self.cache is None:
            self._note_memo(False)
            return compute(), False
        stats = self.cache.stats
        if not self.cache.enabled:
            stats.query_misses += 1
            self._note_memo(False)
            return compute(), False
        remember = self.config.selection_memo
        if key in self._memo:
            self._memo.move_to_end(key)
            stats.query_hits += 1
            if remember:
                self._note_memo(True)
                return cast(PackMethod, self._memo[key]), True
            self._note_memo(False)
            return compute(), True
        stats.query_misses += 1
        self._note_memo(False)
        value = compute()
        self._memo[key] = value if remember else None
        while len(self._memo) > self.config.selection_memo_size:
            self._memo.popitem(last=False)
        return value, False

    def __call__(self, packer: Any, nbytes: int, peer: Optional[int] = None) -> PackMethod:
        """Select under live NIC backlog (identical to the model path at idle).

        With a hierarchical topology and a known ``peer`` the zero-backlog
        short-circuit is disabled: even an idle NIC prices the two candidates
        along the *resolved path* (intra-island NVLink vs cross-switch rail),
        so the crossover differs per path class — the divergence
        ``bench_topology.py`` measures.
        """
        if nbytes <= 0:
            return NOOP_METHOD
        with self._pricing_guard():
            backlog = self.backlog()
            link = self.link_backlog(peer)
            ingest = self.ingest_backlog(peer)
            rail = self.rail_backlog(peer)
            uplink = self.uplink_backlog(peer)
            oneshot_wire: Optional[float] = None
            device_wire: Optional[float] = None
            kind: Optional[str] = None
            topology = self.topology
            if peer is not None and topology is not None and topology.hierarchical:
                oneshot_wire = topology.message_time(
                    self.rank, peer, int(nbytes), device_buffers=False
                )
                device_wire = topology.message_time(
                    self.rank, peer, int(nbytes), device_buffers=True
                )
                kind = topology.resolve(self.rank, peer, device_buffers=True).kind
            elif backlog <= 0.0 and link <= 0.0 and ingest <= 0.0:
                return super().__call__(packer, nbytes)
            block_length = packer.block.block_length
            method, cached = self._contended_memoize(
                (
                    "method-contended",
                    int(nbytes),
                    int(block_length),
                    float(backlog),
                    float(link),
                    float(ingest),
                    float(rail),
                    float(uplink),
                    # The path class (with nbytes) determines both wire
                    # overrides, so it closes the key over them.
                    kind,
                ),
                lambda: contended_estimate(
                    self.model,
                    int(nbytes),
                    int(block_length),
                    backlog,
                    link_backlog_s=link,
                    ingest_backlog_s=ingest,
                    rail_backlog_s=rail,
                    uplink_backlog_s=uplink,
                    oneshot_wire_s=oneshot_wire,
                    device_wire_s=device_wire,
                ).best(),
            )
        self._charge(cached)
        return method


def make_selector(
    config: TempiConfig,
    model: Union[PerformanceModel, Callable[[], PerformanceModel]],
    *,
    cache: Any = None,
    clock: Any = None,
    nic: Optional[NicTimeline] = None,
    rank: int = 0,
    stats: Any = None,
    topology: Optional[Topology] = None,
) -> MethodSelector:
    """Build the selector ``config`` asks for (the interposer's factory).

    A non-``AUTO`` ``config.method`` always forces that method, whatever the
    selection policy — the ablation knob the benchmarks rely on.  Policy
    ``"contended"`` degrades to the model path when no NIC timeline exists to
    consult (an executor driven outside a :class:`~repro.mpi.world.World`).
    """
    if config.selection not in SELECTION_MODES:
        raise SelectionError(
            f"unknown selection policy {config.selection!r}; expected one of {SELECTION_MODES}"
        )
    if config.method is not PackMethod.AUTO:
        return FixedSelector(config.method)
    if config.selection == "fixed":
        raise SelectionError("selection='fixed' needs a concrete config.method")
    if config.selection == "contended" and nic is not None:
        return ContendedSelector(
            model, nic, rank, cache=cache, clock=clock, config=config, stats=stats,
            topology=topology,
        )
    return ModelSelector(model, cache=cache, clock=clock, config=config, stats=stats)


#: Vectors at or below this many bytes are latency-bound: the binomial tree's
#: ``ceil(log2 N)`` full-vector hops beat the ring's ``2(N-1)`` chunk hops
#: because every chunk hop still pays the per-message latency floor.
ALLREDUCE_TREE_CUTOFF_BYTES = 16384


def choose_allreduce_algorithm(
    nranks: int,
    nbytes: int,
    *,
    topology: Optional[Topology] = None,
    algorithm: str = "auto",
    tree_cutoff: int = ALLREDUCE_TREE_CUTOFF_BYTES,
) -> str:
    """Pick the allreduce schedule for one call (``config.allreduce_algorithm``).

    A non-``"auto"`` ``algorithm`` always wins — the ablation knob
    ``bench_allreduce.py`` sweeps.  Under ``"auto"`` the policy is pure
    (no clock charge, no NIC read, deterministic in its arguments):

    * two ranks (or fewer) degenerate to the tree — the ring's chunking
      buys nothing at that scale;
    * a hierarchical topology whose islands actually group ranks (more
      than one island, fewer islands than ranks) takes the hierarchical
      schedule, concentrating cross-island traffic on one leader per
      island so oversubscribed uplinks carry ``L-1`` messages per round
      instead of ``N-1``;
    * latency-bound vectors (``nbytes <= tree_cutoff``) take the binomial
      tree's ``O(log N)`` rounds;
    * everything else takes the bandwidth-optimal chunked ring.
    """
    if algorithm != "auto":
        if algorithm not in ("ring", "tree", "hierarchical"):
            raise SelectionError(
                f"unknown allreduce algorithm {algorithm!r}; "
                "expected 'auto', 'ring', 'tree' or 'hierarchical'"
            )
        return algorithm
    if nranks <= 2:
        return "tree"
    if topology is not None and topology.hierarchical:
        islands = {topology.island_of(rank) for rank in range(nranks)}
        if 1 < len(islands) < nranks:
            return "hierarchical"
    if nbytes <= tree_cutoff:
        return "tree"
    return "ring"


# --------------------------------------------------------------------------- #
# Calibration registry
# --------------------------------------------------------------------------- #

class CalibrationRegistry:
    """Per-machine performance models, measured once and shared process-wide.

    The paper's measurement binary runs once per *system*; this registry is
    that discipline as an object: the first query for a machine runs the
    sweep (or loads its measurement file) and every later query — from any
    rank, any communicator, any thread — reuses the interpolated model.
    Distinct machines coexist, so a halo/exchange study can sweep
    :func:`~repro.machine.spec.summit_like` variants in one process.

    ``directory`` (optional) gives measurement files a home, one JSON per
    machine named ``<machine>.json``: models are loaded from there when
    present and the sweep's result is persisted there when not.
    """

    def __init__(self, directory: Optional[Path | str] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._models: Dict[str, PerformanceModel] = {}
        self._lock = threading.Lock()

    @staticmethod
    def measurement_path(directory: Path | str, machine_name: str) -> Path:
        """Where one machine's measurement file lives under ``directory``."""
        return Path(directory) / f"{machine_name}.json"

    # ------------------------------------------------------------------ query
    def model_for(self, machine: MachineSpec) -> PerformanceModel:
        """The machine's model: cached, else loaded from disk, else measured."""
        with self._lock:
            model = self._models.get(machine.name)
            if model is not None:
                return model
            measurement = self._load_or_measure(machine)
            model = PerformanceModel(measurement)
            self._models[machine.name] = model
            return model

    def _load_or_measure(self, machine: MachineSpec) -> SystemMeasurement:
        """Load the machine's measurement file, else run the sweep."""
        if self.directory is not None:
            path = self.measurement_path(self.directory, machine.name)
            if path.exists():
                return self._check(SystemMeasurement.load(path), machine.name)
            measurement = measure_system(machine)
            measurement.save(path)
            return measurement
        return measure_system(machine)

    # --------------------------------------------------------------- mutation
    def register(self, measurement: SystemMeasurement) -> PerformanceModel:
        """Adopt an existing measurement (tests, pre-measured files)."""
        if measurement.machine_name == "unknown":
            raise SelectionError(
                "a registry measurement must carry its machine_name "
                "(re-run measure_system, or set it before registering)"
            )
        model = PerformanceModel(measurement)
        with self._lock:
            self._models[measurement.machine_name] = model
        return model

    def load(self, path: Path | str, machine: Optional[MachineSpec] = None) -> PerformanceModel:
        """Register a measurement file, optionally checking its machine."""
        measurement = SystemMeasurement.load(path)
        if machine is not None:
            self._check(measurement, machine.name)
        return self.register(measurement)

    @staticmethod
    def _check(measurement: SystemMeasurement, machine_name: str) -> SystemMeasurement:
        """Reject a measurement recorded for a different machine."""
        if measurement.machine_name not in ("unknown", machine_name):
            raise SelectionError(
                f"measurement file is for machine {measurement.machine_name!r}, "
                f"not {machine_name!r}"
            )
        return measurement

    # ------------------------------------------------------------- inspection
    def machines(self) -> list[str]:
        """Names of the machines calibrated so far."""
        with self._lock:
            return sorted(self._models)

    def __contains__(self, machine: Union[MachineSpec, str]) -> bool:
        name = machine.name if isinstance(machine, MachineSpec) else machine
        with self._lock:
            return name in self._models

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CalibrationRegistry machines={self.machines()}>"


_DEFAULT_REGISTRY = CalibrationRegistry()


def default_registry() -> CalibrationRegistry:
    """The process-wide registry (performance models are expensive to build)."""
    return _DEFAULT_REGISTRY
