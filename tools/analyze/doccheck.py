"""SIM004 — the documentation must cover every knob and every counter.

Promotes the original ``tests/test_docs.py`` coverage assertions into the
analyzer: every ``TempiConfig`` dataclass field must appear (as a
backtick-quoted name) in ``docs/CONFIG.md``, and every ``InterposerStats``
counter in ``docs/ARCHITECTURE.md``.  The dataclasses are read from the AST
— no project import is needed, so the rule runs on any checkout (and on the
fixture trees the unit tests build).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional

from tools.analyze.core import Violation

#: (source file, dataclass, document that must name every field) triples.
DOC_CONTRACTS = (
    ("src/repro/tempi/config.py", "TempiConfig", "docs/CONFIG.md"),
    ("src/repro/tempi/interposer.py", "InterposerStats", "docs/ARCHITECTURE.md"),
)


def _dataclass_fields(tree: ast.Module, class_name: str) -> list[tuple[str, int]]:
    """The annotated field names (and lines) of one top-level dataclass."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                (item.target.id, item.lineno)
                for item in node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
            ]
    return []


def _parse(path: Path) -> Optional[ast.Module]:
    """Parse one source file, or ``None`` when absent/unparseable."""
    if not path.is_file():
        return None
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:  # pragma: no cover - ruff/compileall gate first
        return None


def check_doc_coverage(root: Path) -> list[Violation]:
    """Flag every dataclass field its contract document fails to name."""
    findings: list[Violation] = []
    for source_rel, class_name, doc_rel in DOC_CONTRACTS:
        tree = _parse(root / source_rel)
        if tree is None:
            continue
        fields = _dataclass_fields(tree, class_name)
        if not fields:
            continue
        doc_path = root / doc_rel
        doc_text = doc_path.read_text(encoding="utf-8") if doc_path.is_file() else ""
        for name, line in fields:
            if f"`{name}`" not in doc_text:
                findings.append(
                    Violation(
                        source_rel,
                        line,
                        "SIM004",
                        f"{class_name} field `{name}` is not documented in "
                        f"{doc_rel}",
                    )
                )
    return findings
