"""Figure 9 (extended): the method crossover, contention-free and under load.

Fig. 9b of the paper plots the three modelled send latencies and the method
the model selects per (object size, contiguous-block length) — measured on an
idle machine.  PR 4's selection subsystem adds what the paper's model leaves
out: the rank's **injection port is not always idle**.  A queued port hides
pack time (the pack kernels run while earlier cross-plan messages drain), so
under load the decision tilts toward the method with the cheaper
wire-plus-unpack tail, and the one-shot/device crossover of Fig. 9 moves.

Two harnesses share the acceptance claims:

* **grid sweep** — a :class:`~repro.tempi.selection.ModelSelector` and a
  :class:`~repro.tempi.selection.ContendedSelector` (over a NIC timeline
  pre-loaded with 0 / 4 / 8 concurrent plans' worth of injections) pick a
  method for every (size, block) cell.  At zero load the two agree cell for
  cell with :meth:`PerformanceModel.choose_method` — the PR-3 selection —
  and at ≥4 plans at least one cell flips;
* **functional burst** — each rank of a world launches *k* concurrent
  wire-bound background ``Ialltoallv`` plans and then one crossover-zone
  *probe* plan, under ``TempiConfig(selection="contended")`` vs
  ``selection="model"``: behind ≥4 background plans the probe's selected
  method shifts (device → one-shot, its pack penalty hidden by the queued
  port), while the ``selection="model"`` run stays bit-identical (clocks
  and counts) to the default configuration, i.e. PR-3's numbers.

The analytic companion is
:func:`repro.apps.exchange_model.model_selected_exchange`, which routes its
per-message decisions through the same
:func:`repro.tempi.selection.contended_estimate`.

Run as a script (the CI smoke check) or under pytest:

    PYTHONPATH=src python benchmarks/bench_fig9_selection.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_fig9_selection.py -q -s

Set ``REPRO_BENCH_FULL=1`` for the larger sweep.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

from repro.bench.harness import format_table
from repro.machine.network import NetworkModel
from repro.machine.nic import NicTimeline
from repro.machine.spec import SUMMIT
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.packer import Packer
from repro.tempi.selection import ContendedSelector, ModelSelector
from repro.tempi.strided_block import StridedBlock

#: Crossover-zone probe message: 4 KiB packed per peer in single-byte runs —
#: the model picks *device* on an idle port, but the one-shot pack penalty
#: hides behind a few microseconds of queued injections.
PROBE = dict(nblocks=4096, block=1, pitch=2)
#: Wire-bound background traffic (256 KiB per peer, the Fig. 15 shape): each
#: concurrent plan parks ~60 µs of injection on the port, far outrunning the
#: host-side compile cost, so backlog genuinely accumulates across plans.
BACKGROUND = dict(nblocks=1024, block=256, pitch=512)

NRANKS = 4  # one rank per node: every wire peer is inter-node
LOAD_SWEEP = (0, 4, 8)
PLAN_SWEEP_SUBSET = (0, 4)
PLAN_SWEEP_FULL = (0, 1, 2, 4, 8)

GRID_BLOCKS_SUBSET = (1, 8, 64, 512)
GRID_BLOCKS_FULL = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
GRID_SIZES_SUBSET = tuple(1 << p for p in range(8, 23, 2))
GRID_SIZES_FULL = tuple(1 << p for p in range(8, 23))


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def measurement_packer(size: int, block_length: int) -> Packer:
    """The strided object of one grid cell (the measurement sweep's shape)."""
    block_length = min(block_length, size)
    nblocks = size // block_length
    if nblocks <= 1:
        shape = StridedBlock(start=0, counts=(block_length,), strides=(1,))
    else:
        shape = StridedBlock(
            start=0, counts=(block_length, nblocks), strides=(1, 2 * block_length)
        )
    return Packer(shape, object_extent=shape.start + shape.extent)


def loaded_nic(size: int, plans: int, *, machine=SUMMIT) -> NicTimeline:
    """A NIC timeline carrying ``plans`` concurrent plans' worth of backlog.

    Each in-flight plan is represented by one inter-node message of ``size``
    bytes to a distinct peer, on the wire path of the method the idle model
    picks for that size — the traffic a burst of ``plans`` typed collectives
    would have injected just before this selection runs.
    """
    network = NetworkModel(machine)
    nic = NicTimeline()
    for peer in range(plans):
        wire = network.message_time(size, same_node=False, device_buffers=True)
        nic.reserve(0, peer + 1, 0.0, wire, size)
    return nic


# --------------------------------------------------------------------------- #
# Grid sweep (selector objects against a pre-loaded timeline)
# --------------------------------------------------------------------------- #

def run_grid(model, sizes, blocks, loads) -> dict[tuple[int, int], dict[int, str]]:
    """Selected method per (size, block) cell at each concurrent-plan load."""
    grid: dict[tuple[int, int], dict[int, str]] = {}
    for block in blocks:
        for size in sizes:
            packer = measurement_packer(size, block)
            nbytes = packer.packed_size(1)
            cell: dict[int, str] = {}
            for plans in loads:
                if plans == 0:
                    selector = ModelSelector(model)
                else:
                    selector = ContendedSelector(
                        model, loaded_nic(nbytes, plans), 0
                    )
                cell[plans] = selector(packer, nbytes).value
            grid[(size, block)] = cell
    return grid


def check_grid(grid, model, loads) -> list[tuple[int, int, int]]:
    """The grid's acceptance claims; returns the flipped cells."""
    flips = []
    for (size, block), cell in grid.items():
        # Zero load is the PR-3 path: identical to the model's idle decision.
        packer = measurement_packer(size, block)
        nbytes = packer.packed_size(1)
        idle = model.choose_method(nbytes, min(block, size)).value
        assert cell[0] == idle, f"ModelSelector diverged from choose_method at {size}/{block}"
        zero_load = ContendedSelector(model, NicTimeline(), 0)(packer, nbytes).value
        assert zero_load == idle, f"idle ContendedSelector diverged at {size}/{block}"
        for plans in loads:
            if plans and cell[plans] != cell[0]:
                flips.append((size, block, plans))
    heavy = [f for f in flips if f[2] >= 4]
    assert heavy, "no (size, block) cell changed method at >=4 concurrent plans"
    return flips


def render_grid(grid, loads) -> str:
    rows = []
    for (size, block), cell in sorted(grid.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        marker = "  <-- flip" if len(set(cell.values())) > 1 else ""
        rows.append(
            [f"{size:>9}", f"{block:>5}"]
            + [f"{cell[plans]:>8}" for plans in loads]
            + [marker]
        )
    return format_table(
        ["bytes", "block"] + [f"k={plans}" for plans in loads] + [""], rows
    )


# --------------------------------------------------------------------------- #
# Functional burst (the interposer under TempiConfig.selection)
# --------------------------------------------------------------------------- #

def measure_burst(nranks: int, background: int, model, config: TempiConfig):
    """Probe selection behind ``background`` concurrent wire-bound plans.

    Every rank launches ``background`` typed ``Ialltoallv`` plans of the
    256 KiB :data:`BACKGROUND` shape — each parking its injections on the
    shared NIC — and then one :data:`PROBE` plan whose compile-time selection
    sees whatever port backlog the background left.  Returns
    ``(probe_counts, method_counts, makespan_s)``: the probe plan's own
    per-method wire-message counts, the burst-wide counts, and the latest
    rank clock at completion (all summed/maxed over ranks).
    """

    def program(ctx):
        comm = interpose(ctx, config, model=model)
        big = comm.Type_commit(
            Type_vector(BACKGROUND["nblocks"], BACKGROUND["block"], BACKGROUND["pitch"], BYTE)
        )
        probe = comm.Type_commit(
            Type_vector(PROBE["nblocks"], PROBE["block"], PROBE["pitch"], BYTE)
        )
        size = comm.Get_size()

        # Buffers are allocated up front: the burst itself must only compile
        # and launch, so the host clock cannot outrun the port backlog on
        # allocation costs no iterative application would pay per exchange.
        def buffers(datatype, count):
            return [
                (ctx.gpu.malloc(datatype.extent * size), ctx.gpu.malloc(datatype.extent * size))
                for _ in range(count)
            ]

        big_buffers = buffers(big, background)
        probe_buffers = buffers(probe, 1)

        def exchange(datatype, send, recv):
            counts = [1] * size
            displs = [peer * datatype.extent for peer in range(size)]
            return comm.Ialltoallv(
                send, counts, displs, recv, counts, displs,
                sendtypes=datatype, recvtypes=datatype,
            )

        requests = [exchange(big, send, recv) for send, recv in big_buffers]
        before = dict(comm.stats.method_counts)
        requests.append(exchange(probe, *probe_buffers[0]))
        probe_counts = {
            name: hits - before.get(name, 0)
            for name, hits in comm.stats.method_counts.items()
            if hits - before.get(name, 0)
        }
        Request.Waitall(requests)
        return probe_counts, dict(comm.stats.method_counts), ctx.clock.now

    world = World(nranks, ranks_per_node=1)
    results = world.run(program)
    probe_merged: dict[str, int] = {}
    merged: dict[str, int] = {}
    for probe_counts, counts, _ in results:
        for name, hits in probe_counts.items():
            probe_merged[name] = probe_merged.get(name, 0) + hits
        for name, hits in counts.items():
            merged[name] = merged.get(name, 0) + hits
    return probe_merged, merged, max(clock for _, _, clock in results)


def run_bursts(plan_counts, model, nranks: int = NRANKS):
    """The functional sweep: default / model / contended at each load."""
    table = {}
    for background in plan_counts:
        d_probe, d_counts, d_time = measure_burst(nranks, background, model, TempiConfig())
        m_probe, m_counts, m_time = measure_burst(
            nranks, background, model, TempiConfig(selection="model")
        )
        # The contended run isolates the *injection-side* shift this figure
        # is about: nic="inject_only" keeps the selector's reads on this
        # rank's own port, which is deterministic without any cross-rank
        # synchronisation.  The duplex ingestion term needs a happens-before
        # edge to the hot peer's traffic (this burst has none) and is
        # exercised by bench_incast.py behind a barrier instead.
        c_probe, c_counts, c_time = measure_burst(
            nranks, background, model, TempiConfig(selection="contended", nic="inject_only")
        )
        table[background] = dict(
            default_probe=d_probe,
            default_counts=d_counts,
            default_time=d_time,
            model_probe=m_probe,
            model_counts=m_counts,
            model_time=m_time,
            contended_probe=c_probe,
            contended_counts=c_counts,
            contended_time=c_time,
        )
    return table


def check_bursts(results) -> None:
    """The functional acceptance claims, shared by pytest and the CLI."""
    shifted = []
    for background, row in sorted(results.items()):
        # selection="model" *is* the PR-3 path: identical counts and clocks
        # to the default configuration, at every load.
        assert row["model_counts"] == row["default_counts"], (
            f"selection='model' changed method counts behind {background} plans"
        )
        assert row["model_time"] == row["default_time"], (
            f"selection='model' changed the burst makespan behind {background} plans"
        )
        if background == 0:
            # An idle port: contended selection == contention-free selection.
            assert row["contended_probe"] == row["model_probe"], (
                "an unloaded probe must select contention-free"
            )
        if row["contended_probe"] != row["model_probe"]:
            shifted.append(background)
    heavy = [background for background in shifted if background >= 4]
    assert heavy, "contended selection never shifted the probe at >=4 concurrent plans"


def render_bursts(results) -> str:
    def fmt(counts):
        return ",".join(f"{k}={v}" for k, v in sorted(counts.items())) or "-"

    rows = [
        [
            background,
            fmt(row["model_probe"]),
            fmt(row["contended_probe"]),
            f"{row['model_time'] * 1e6:10.1f}",
            f"{row['contended_time'] * 1e6:10.1f}",
            "shifted" if row["contended_probe"] != row["model_probe"] else "same",
        ]
        for background, row in sorted(results.items())
    ]
    return format_table(
        ["bg plans", "model probe", "contended probe", "model us", "contended us", ""],
        rows,
    )


# --------------------------------------------------------------------------- #
# Harnesses
# --------------------------------------------------------------------------- #

@pytest.mark.benchmark(group="fig9-selection")
def test_fig9_selection_crossover(benchmark, summit_model, report):
    sizes = GRID_SIZES_FULL if full_sweep() else GRID_SIZES_SUBSET
    blocks = GRID_BLOCKS_FULL if full_sweep() else GRID_BLOCKS_SUBSET
    plans = PLAN_SWEEP_FULL if full_sweep() else PLAN_SWEEP_SUBSET

    def run():
        grid = run_grid(summit_model, sizes, blocks, LOAD_SWEEP)
        bursts = run_bursts(plans, summit_model)
        return grid, bursts

    grid, bursts = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 9 (extended) — method selection vs injection-port load")
    print(render_grid(grid, LOAD_SWEEP))
    print(render_bursts(bursts))
    flips = check_grid(grid, summit_model, LOAD_SWEEP)
    check_bursts(bursts)
    report.add(
        "Fig. 9 (extended)",
        "one-shot/device crossover under NIC contention",
        "crossover shifts under load; idle selection reproduces Fig. 9b (no paper value)",
        f"{len(flips)} flipped cells",
        matches_shape=bool(flips),
        note="selection='model' bit-identical to the default (PR-3) configuration",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (CI bit-rot check): coarse grid, 1 and 4 plan bursts",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        sizes, blocks, plans = GRID_SIZES_SUBSET, (1, 64), (0, 4)
    else:
        sizes = GRID_SIZES_FULL if full_sweep() else GRID_SIZES_SUBSET
        blocks = GRID_BLOCKS_FULL if full_sweep() else GRID_BLOCKS_SUBSET
        plans = PLAN_SWEEP_FULL if full_sweep() else PLAN_SWEEP_SUBSET

    from repro.tempi.measurement import measure_system
    from repro.tempi.perf_model import PerformanceModel

    model = PerformanceModel(measure_system(SUMMIT))
    grid = run_grid(model, sizes, blocks, LOAD_SWEEP)
    bursts = run_bursts(plans, model)
    print("Figure 9 (extended) — method selection vs injection-port load")
    print(render_grid(grid, LOAD_SWEEP))
    print(render_bursts(bursts))
    flips = check_grid(grid, model, LOAD_SWEEP)
    check_bursts(bursts)
    print(
        f"OK: {len(flips)} cell(s) flipped under load; selection='model' reproduces "
        "the default (PR-3) numbers exactly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
