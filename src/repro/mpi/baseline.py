"""The Spectrum-like baseline datatype engine.

"Spectrum MPI 10.3.1.2 provides a baseline derived datatype handling approach
where each contiguous portion of the derived datatype is copied into a
contiguous buffer through cudaMemcpyAsync (or similar function)" (Sec. 6.2).
That behaviour — one driver call per contiguous block, regardless of how
small the block is — is what TEMPI's speedups are measured against, so the
simulated system MPI reproduces it faithfully in cost even when it shortcuts
the byte movement.

Cost accounting is analytic (``blocks × per-call overhead + bytes/bandwidth``)
so that datatypes with millions of blocks (Fig. 8's 4 MiB objects with 1 B
blocks) can be priced without enumerating the type map; the functional byte
movement is vectorised and can be disabled entirely (``move_data=False``)
for timing-only benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.cost_model import GpuCostModel
from repro.gpu.memory import Buffer
from repro.gpu.runtime import CudaRuntime
from repro.mpi import typemap
from repro.mpi.datatype import Datatype
from repro.mpi.errors import MpiArgumentError


@dataclass(frozen=True)
class BaselineCost:
    """Breakdown of one baseline pack or unpack."""

    blocks: int
    bytes: int
    per_block_s: float
    bandwidth_s: float

    @property
    def total_s(self) -> float:
        return self.blocks * self.per_block_s + self.bandwidth_s


class BaselineDatatypeEngine:
    """Per-block ``cudaMemcpyAsync`` datatype handling (the system MPI's path)."""

    def __init__(self, runtime: CudaRuntime, *, move_data: bool = True) -> None:
        self.runtime = runtime
        self.move_data = move_data

    # ------------------------------------------------------------------ costs
    def pack_cost(
        self,
        datatype: Datatype,
        count: int,
        *,
        device: bool = True,
    ) -> BaselineCost:
        """Cost of packing ``count`` elements with one memcpy per block."""
        cost: GpuCostModel = self.runtime.cost
        blocks = typemap.block_count(datatype, count)
        nbytes = typemap.packed_size(datatype, count)
        bandwidth = cost.d2d_bandwidth if device else cost.d2h_bandwidth
        return BaselineCost(
            blocks=blocks,
            bytes=nbytes,
            per_block_s=cost.memcpy_call_s,
            bandwidth_s=nbytes / bandwidth,
        )

    # ------------------------------------------------------------------- pack
    def pack(
        self,
        inbuf: Buffer,
        datatype: Datatype,
        count: int,
        outbuf: Buffer,
        out_offset: int = 0,
        *,
        in_offset: int = 0,
    ) -> int:
        """Pack ``count`` elements of ``datatype`` from ``inbuf`` into ``outbuf``.

        Returns the new position (``out_offset`` plus bytes written), matching
        ``MPI_Pack`` position semantics.  The caller's virtual clock advances
        by the analytic baseline cost.
        """
        datatype._check_committed()
        nbytes = typemap.packed_size(datatype, count)
        if out_offset < 0 or out_offset + nbytes > outbuf.nbytes:
            raise MpiArgumentError(
                f"pack of {nbytes} bytes at position {out_offset} escapes the "
                f"{outbuf.nbytes}-byte output buffer"
            )
        device = inbuf.is_device or outbuf.is_device
        cost = self.pack_cost(datatype, count, device=device)
        if self.move_data:
            self._gather(inbuf, datatype, count, outbuf, out_offset, in_offset)
        self.runtime.clock.advance(cost.total_s)
        return out_offset + nbytes

    def unpack(
        self,
        inbuf: Buffer,
        in_offset: int,
        outbuf: Buffer,
        datatype: Datatype,
        count: int,
        *,
        out_offset: int = 0,
    ) -> int:
        """Unpack ``count`` elements from ``inbuf`` into strided ``outbuf``.

        Returns the new input position.  Mirrors :meth:`pack`.
        """
        datatype._check_committed()
        nbytes = typemap.packed_size(datatype, count)
        if in_offset < 0 or in_offset + nbytes > inbuf.nbytes:
            raise MpiArgumentError(
                f"unpack of {nbytes} bytes at position {in_offset} escapes the "
                f"{inbuf.nbytes}-byte input buffer"
            )
        device = inbuf.is_device or outbuf.is_device
        cost = self.pack_cost(datatype, count, device=device)
        if self.move_data:
            self._scatter(inbuf, in_offset, outbuf, datatype, count, out_offset)
        self.runtime.clock.advance(cost.total_s)
        return in_offset + nbytes

    # ------------------------------------------------------------ byte moving
    # The *cost* is per-block, but the functional byte movement is vectorised
    # whenever every block has the same length (true for all strided types),
    # so simulating a million-block baseline pack does not take minutes of
    # wall time for what is nanoseconds of virtual time accounting.
    @staticmethod
    def _block_indices(offsets: np.ndarray, lengths: np.ndarray) -> Optional[np.ndarray]:
        if len(lengths) == 0:
            return None
        length = int(lengths[0])
        if not np.all(lengths == length):
            return None
        return (offsets[:, None] + np.arange(length, dtype=np.int64)[None, :]).reshape(-1)

    @staticmethod
    def _gather(
        inbuf: Buffer,
        datatype: Datatype,
        count: int,
        outbuf: Buffer,
        out_offset: int,
        in_offset: int,
    ) -> None:
        offsets, lengths = typemap.offsets_and_lengths(datatype, count)
        src = inbuf.data
        dst = outbuf.data
        indices = BaselineDatatypeEngine._block_indices(offsets, lengths)
        if indices is not None:
            total = indices.size
            dst[out_offset : out_offset + total] = src[in_offset + indices]
            return
        cursor = out_offset
        for offset, length in zip(offsets, lengths):
            begin = in_offset + int(offset)
            dst[cursor : cursor + length] = src[begin : begin + int(length)]
            cursor += int(length)

    @staticmethod
    def _scatter(
        inbuf: Buffer,
        in_offset: int,
        outbuf: Buffer,
        datatype: Datatype,
        count: int,
        out_offset: int,
    ) -> None:
        offsets, lengths = typemap.offsets_and_lengths(datatype, count)
        src = inbuf.data
        dst = outbuf.data
        indices = BaselineDatatypeEngine._block_indices(offsets, lengths)
        if indices is not None:
            total = indices.size
            dst[out_offset + indices] = src[in_offset : in_offset + total]
            return
        cursor = in_offset
        for offset, length in zip(offsets, lengths):
            begin = out_offset + int(offset)
            dst[begin : begin + int(length)] = src[cursor : cursor + int(length)]
            cursor += int(length)

    # ------------------------------------------------------------- validation
    @staticmethod
    def check_fits(buffer: Buffer, datatype: Datatype, count: int, offset: int = 0) -> None:
        """Verify ``count`` elements of ``datatype`` fit in ``buffer`` at ``offset``."""
        needed = offset + datatype.lb + (count - 1) * datatype.extent + datatype.ub - datatype.lb
        if needed > buffer.nbytes:
            raise MpiArgumentError(
                f"{count} element(s) of extent {datatype.extent} need {needed} bytes "
                f"but the buffer holds {buffer.nbytes}"
            )


def contiguous_payload(
    buffer: Buffer, datatype: Datatype, count: int, offset: int = 0
) -> Optional[np.ndarray]:
    """Return a zero-copy view of the payload when the datatype is contiguous.

    The system MPI uses this fast path to skip the baseline engine whenever
    the application's datatype is contiguous bytes (named types, contiguous
    compositions); returns ``None`` otherwise.
    """
    if not datatype.is_contiguous_bytes:
        return None
    nbytes = datatype.size * count
    if offset + nbytes > buffer.nbytes:
        raise MpiArgumentError(
            f"{count} contiguous element(s) of {datatype.size} bytes at offset {offset} "
            f"escape the {buffer.nbytes}-byte buffer"
        )
    return buffer.data[offset : offset + nbytes]
