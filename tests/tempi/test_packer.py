"""Tests for the Packer (committed-datatype handler)."""

import numpy as np
import pytest

from repro.gpu.memory import MemoryKind
from repro.tempi.packer import PackError, Packer
from repro.tempi.strided_block import StridedBlock


def block_2d(block=16, count=8, pitch=64) -> StridedBlock:
    return StridedBlock(start=0, counts=(block, count), strides=(1, pitch))


class TestSizes:
    def test_packed_size(self):
        packer = Packer(block_2d(), object_extent=512)
        assert packer.packed_size(1) == 128
        assert packer.packed_size(3) == 384

    def test_required_input(self):
        packer = Packer(block_2d(), object_extent=512)
        assert packer.required_input(1) == 7 * 64 + 16
        assert packer.required_input(2) == 512 + 7 * 64 + 16

    def test_invalid_arguments(self):
        packer = Packer(block_2d(), object_extent=512)
        with pytest.raises(PackError):
            packer.packed_size(0)
        with pytest.raises(PackError):
            Packer(block_2d(), object_extent=0)


class TestFunctionalPack:
    def test_pack_gathers_to_device(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        src = free_runtime.malloc(packer.required_input(1))
        dst = free_runtime.malloc(packer.packed_size(1))
        src.data[:] = np.arange(src.nbytes, dtype=np.uint32).astype(np.uint8)
        written = packer.pack(free_runtime, src, dst)
        assert written == 128
        expected = np.concatenate([src.data[i * 64 : i * 64 + 16] for i in range(8)])
        assert np.array_equal(dst.data, expected)

    def test_pack_to_mapped_host(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        src = free_runtime.malloc(packer.required_input(1))
        dst = free_runtime.host_alloc(packer.packed_size(1), MemoryKind.HOST_MAPPED)
        src.data[:] = 3
        packer.pack(free_runtime, src, dst)
        assert (dst.data == 3).all()

    def test_unpack_roundtrip(self, free_runtime):
        packer = Packer(block_2d(8, 4, 32), object_extent=256)
        original = free_runtime.malloc(packer.required_input(1))
        original.data[:] = np.random.default_rng(7).integers(0, 255, original.nbytes, dtype=np.uint8)
        packed = free_runtime.malloc(packer.packed_size(1))
        packer.pack(free_runtime, original, packed)
        scattered = free_runtime.malloc(packer.required_input(1))
        packer.unpack(free_runtime, packed, scattered)
        repacked = free_runtime.malloc(packer.packed_size(1))
        packer.pack(free_runtime, scattered, repacked)
        assert np.array_equal(packed.data, repacked.data)

    def test_multiple_objects_spaced_by_extent(self, free_runtime):
        packer = Packer(block_2d(4, 2, 16), object_extent=100)
        src = free_runtime.malloc(packer.required_input(3))
        src.data[:] = np.arange(src.nbytes, dtype=np.uint16).astype(np.uint8)
        dst = free_runtime.malloc(packer.packed_size(3))
        packer.pack(free_runtime, src, dst, count=3)
        expected = []
        for obj in range(3):
            for row in range(2):
                start = obj * 100 + row * 16
                expected.append(src.data[start : start + 4])
        assert np.array_equal(dst.data, np.concatenate(expected))

    def test_dst_offset(self, free_runtime):
        packer = Packer(block_2d(4, 2, 16), object_extent=64)
        src = free_runtime.malloc(64)
        dst = free_runtime.malloc(64)
        src.data[:] = 9
        packer.pack(free_runtime, src, dst, dst_offset=32)
        assert (dst.data[32:40] == 9).all()
        assert not dst.data[:32].any()

    def test_contiguous_block_uses_memcpy(self, free_runtime):
        packer = Packer(StridedBlock(4, (64,), (1,)), object_extent=128)
        src = free_runtime.malloc(128)
        dst = free_runtime.malloc(64)
        src.data[:] = np.arange(128, dtype=np.uint8)
        packer.pack(free_runtime, src, dst)
        assert np.array_equal(dst.data, src.data[4:68])
        assert free_runtime.kernel_launches == 0
        assert free_runtime.memcpy_calls == 1

    def test_stats_counters(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        src = free_runtime.malloc(packer.required_input(1))
        dst = free_runtime.malloc(packer.packed_size(1))
        packer.pack(free_runtime, src, dst)
        packer.unpack(free_runtime, dst, src)
        assert packer.stats.packs == 1
        assert packer.stats.unpacks == 1
        assert packer.stats.bytes_packed == 128


class TestValidation:
    def test_source_too_small(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        src = free_runtime.malloc(16)
        dst = free_runtime.malloc(packer.packed_size(1))
        with pytest.raises(PackError):
            packer.pack(free_runtime, src, dst)

    def test_destination_too_small(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        src = free_runtime.malloc(packer.required_input(1))
        dst = free_runtime.malloc(8)
        with pytest.raises(PackError):
            packer.pack(free_runtime, src, dst)

    def test_unpack_source_too_small(self, free_runtime):
        packer = Packer(block_2d(), object_extent=512)
        packed = free_runtime.malloc(8)
        out = free_runtime.malloc(packer.required_input(1))
        with pytest.raises(PackError):
            packer.unpack(free_runtime, packed, out)


class TestTiming:
    def test_device_pack_faster_than_host_pack_for_large_blocks(self, summit_runtime):
        packer = Packer(StridedBlock(0, (256, 4096), (1, 512)), object_extent=4096 * 512)
        src = summit_runtime.malloc(packer.required_input(1))
        device_dst = summit_runtime.malloc(packer.packed_size(1))
        host_dst = summit_runtime.host_alloc(packer.packed_size(1), MemoryKind.HOST_MAPPED)
        start = summit_runtime.clock.now
        packer.pack(summit_runtime, src, device_dst)
        device_elapsed = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        packer.pack(summit_runtime, src, host_dst)
        host_elapsed = summit_runtime.clock.now - start
        assert device_elapsed < host_elapsed

    def test_unpack_slower_than_pack(self, summit_runtime):
        packer = Packer(StridedBlock(0, (16, 4096), (1, 512)), object_extent=4096 * 512)
        src = summit_runtime.malloc(packer.required_input(1))
        dst = summit_runtime.malloc(packer.packed_size(1))
        start = summit_runtime.clock.now
        packer.pack(summit_runtime, src, dst)
        pack_elapsed = summit_runtime.clock.now - start
        start = summit_runtime.clock.now
        packer.unpack(summit_runtime, dst, src)
        unpack_elapsed = summit_runtime.clock.now - start
        assert unpack_elapsed > pack_elapsed
