"""Packers: the committed-datatype handlers.

At ``MPI_Type_commit`` time TEMPI builds one :class:`Packer` per datatype and
caches it on the datatype (Sec. 3).  A packer knows the datatype's
:class:`~repro.tempi.strided_block.StridedBlock`, its MPI extent (spacing of
consecutive objects in a user buffer) and the selected
:class:`~repro.tempi.kernels.KernelSpec`; its :meth:`Packer.pack` /
:meth:`Packer.unpack` move any number of objects between the strided user
buffer and a contiguous buffer.

Whether a pack lands in device memory (the *device* method) or in mapped host
memory (the *one-shot* method) is decided by the caller simply by handing a
different destination buffer — the simulated runtime charges the matching
bandwidth, just as the real kernels see different memory behind the same
pointer type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceProperties
from repro.gpu.memory import Buffer
from repro.gpu.runtime import CudaRuntime
from repro.tempi.kernels import KernelSpec, select_kernel
from repro.tempi.strided_block import StridedBlock


class PackError(RuntimeError):
    """A pack/unpack call was inconsistent with the committed datatype."""


@dataclass
class PackerStats:
    """Counters used by tests and the cache-ablation benchmark."""

    packs: int = 0
    unpacks: int = 0
    bytes_packed: int = 0
    bytes_unpacked: int = 0


class Packer:
    """Pack/unpack engine for one committed datatype."""

    def __init__(
        self,
        block: StridedBlock,
        object_extent: int,
        properties: DeviceProperties = DeviceProperties(),
    ) -> None:
        if object_extent <= 0:
            raise PackError(f"object extent must be positive, got {object_extent}")
        self.block = block
        self.object_extent = object_extent
        self.properties = properties
        self.kernel: KernelSpec = select_kernel(block, properties)
        self.stats = PackerStats()

    # ------------------------------------------------------------------ sizes
    def packed_size(self, count: int = 1) -> int:
        """Bytes produced by packing ``count`` objects."""
        if count <= 0:
            raise PackError(f"count must be positive, got {count}")
        return self.block.packed_bytes * count

    def required_input(self, count: int = 1) -> int:
        """Bytes of user buffer needed to hold ``count`` objects."""
        return self.block.start + (count - 1) * self.object_extent + self.block.extent

    def _memcpyable(self, count: int) -> bool:
        """True when the whole transfer is one contiguous run.

        A contiguous block is a single memcpy for one object; for several
        objects it remains one memcpy only if consecutive objects tile the
        buffer without holes (MPI extent equals the payload size).
        """
        if not self.block.is_contiguous:
            return False
        return count == 1 or self.object_extent == self.block.packed_bytes

    # ------------------------------------------------------------------- pack
    def pack(
        self,
        runtime: CudaRuntime,
        src: Buffer,
        dst: Buffer,
        count: int = 1,
        dst_offset: int = 0,
        *,
        stream=None,
        sync: bool = True,
    ) -> int:
        """Gather ``count`` objects from ``src`` into contiguous ``dst``.

        Returns the number of bytes written.  The source is the (possibly
        strided) user buffer; the destination decides the strategy: a device
        buffer for the *device* method, a mapped host buffer for *one-shot*.

        With ``stream`` given and ``sync=False`` the kernels are issued on
        that stream and the host returns after the launch overhead only —
        the plan executor uses this to overlap per-peer packs with wire time;
        the stream's ``ready_time`` is the pack's completion time.
        """
        nbytes = self.packed_size(count)
        self._check_buffers(src, dst, count, nbytes, dst_offset, packing=True)
        if self._memcpyable(count):
            runtime.memcpy_async(
                dst,
                src,
                nbytes,
                dst_offset=dst_offset,
                src_offset=self.block.start,
                stream=stream,
            )
        else:
            runtime.launch_pack(
                src,
                dst,
                self.block.start,
                self.block.counts,
                self.block.strides,
                count=count,
                object_extent=self.object_extent,
                dst_offset=dst_offset,
                stream=stream,
                word_size=self.kernel.word_size,
            )
        if sync:
            runtime.stream_synchronize(stream)
        self.stats.packs += 1
        self.stats.bytes_packed += nbytes
        return nbytes

    def unpack(
        self,
        runtime: CudaRuntime,
        src: Buffer,
        dst: Buffer,
        count: int = 1,
        src_offset: int = 0,
        *,
        stream=None,
        sync: bool = True,
    ) -> int:
        """Scatter ``count`` packed objects from contiguous ``src`` into ``dst``."""
        nbytes = self.packed_size(count)
        self._check_buffers(dst, src, count, nbytes, src_offset, packing=False)
        if self._memcpyable(count):
            runtime.memcpy_async(
                dst,
                src,
                nbytes,
                dst_offset=self.block.start,
                src_offset=src_offset,
                stream=stream,
            )
        else:
            runtime.launch_unpack(
                src,
                dst,
                self.block.start,
                self.block.counts,
                self.block.strides,
                count=count,
                object_extent=self.object_extent,
                src_offset=src_offset,
                stream=stream,
                word_size=self.kernel.word_size,
            )
        if sync:
            runtime.stream_synchronize(stream)
        self.stats.unpacks += 1
        self.stats.bytes_unpacked += nbytes
        return nbytes

    # -------------------------------------------------------------- validation
    def _check_buffers(
        self,
        strided: Buffer,
        contiguous: Buffer,
        count: int,
        nbytes: int,
        contiguous_offset: int,
        *,
        packing: bool,
    ) -> None:
        required = self.required_input(count)
        if strided.nbytes < required:
            role = "source" if packing else "destination"
            raise PackError(
                f"strided {role} of {strided.nbytes} bytes cannot hold {count} object(s) "
                f"needing {required} bytes"
            )
        if contiguous_offset < 0 or contiguous_offset + nbytes > contiguous.nbytes:
            role = "destination" if packing else "source"
            raise PackError(
                f"contiguous {role} of {contiguous.nbytes} bytes cannot hold {nbytes} bytes "
                f"at offset {contiguous_offset}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packer {self.block} word={self.kernel.word_size} "
            f"dims={self.kernel.dimensions}>"
        )
