"""Property-based tests of the canonicalisation pipeline.

The key invariant of Sec. 3: however a strided datatype is constructed, its
canonical Type (and the StridedBlock lowered from it) must describe exactly
the same set of bytes as the MPI type map, and its payload size must equal
the datatype's size.  Hypothesis builds random nested compositions of
contiguous / vector / hvector / subarray types to check this.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import typemap
from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_subarray,
    Type_vector,
)
from repro.mpi.datatype import BYTE, DOUBLE, FLOAT, INT, ORDER_C, ORDER_FORTRAN, Datatype
from repro.tempi.canonicalize import simplify
from repro.tempi.strided_block import to_strided_block
from repro.tempi.translate import translate

NAMED = (BYTE, INT, FLOAT, DOUBLE)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

def named_types() -> st.SearchStrategy[Datatype]:
    return st.sampled_from(NAMED)


@st.composite
def contiguous_types(draw, children) -> Datatype:
    count = draw(st.integers(min_value=1, max_value=8))
    return Type_contiguous(count, draw(children))


@st.composite
def vector_types(draw, children) -> Datatype:
    child = draw(children)
    count = draw(st.integers(min_value=1, max_value=6))
    blocklength = draw(st.integers(min_value=1, max_value=5))
    stride = blocklength + draw(st.integers(min_value=0, max_value=6))
    return Type_vector(count, blocklength, stride, child)


@st.composite
def hvector_types(draw, children) -> Datatype:
    child = draw(children)
    count = draw(st.integers(min_value=1, max_value=6))
    blocklength = draw(st.integers(min_value=1, max_value=4))
    minimum = blocklength * child.extent
    stride_bytes = minimum + draw(st.integers(min_value=0, max_value=32))
    return Type_create_hvector(count, blocklength, stride_bytes, child)


@st.composite
def subarray_types(draw, children) -> Datatype:
    child = draw(children)
    ndims = draw(st.integers(min_value=1, max_value=3))
    sizes, subsizes, starts = [], [], []
    for _ in range(ndims):
        size = draw(st.integers(min_value=1, max_value=6))
        subsize = draw(st.integers(min_value=1, max_value=size))
        start = draw(st.integers(min_value=0, max_value=size - subsize))
        sizes.append(size)
        subsizes.append(subsize)
        starts.append(start)
    order = draw(st.sampled_from([ORDER_C, ORDER_FORTRAN]))
    return Type_create_subarray(sizes, subsizes, starts, order, child)


def strided_datatypes(max_depth: int = 3) -> st.SearchStrategy[Datatype]:
    return st.recursive(
        named_types(),
        lambda children: st.one_of(
            contiguous_types(children),
            vector_types(children),
            hvector_types(children),
            subarray_types(children),
        ),
        max_leaves=max_depth,
    )


def byte_set_from_typemap(datatype: Datatype) -> set[int]:
    covered: set[int] = set()
    for offset, length in typemap.flatten(datatype):
        covered.update(range(offset, offset + length))
    return covered


def byte_set_from_block(block) -> set[int]:
    covered: set[int] = set()
    indices = [0] * block.ndims

    def recurse(dim: int, base: int) -> None:
        if dim < 0:
            return
        if dim == 0:
            covered.update(range(base, base + block.counts[0]))
            return
        for i in range(block.counts[dim]):
            recurse(dim - 1, base + i * block.strides[dim])

    recurse(block.ndims - 1, block.start)
    return covered


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #

@settings(max_examples=60, deadline=None)
@given(strided_datatypes())
def test_canonical_type_preserves_payload_size(datatype):
    canonical = simplify(translate(datatype))
    assert canonical.total_bytes() == datatype.size


@settings(max_examples=60, deadline=None)
@given(strided_datatypes())
def test_strided_block_covers_exactly_the_type_map_bytes(datatype):
    canonical = simplify(translate(datatype))
    block = to_strided_block(canonical)
    assert block is not None
    assert byte_set_from_block(block) == byte_set_from_typemap(datatype)


@settings(max_examples=60, deadline=None)
@given(strided_datatypes())
def test_canonicalisation_is_idempotent(datatype):
    once = simplify(translate(datatype))
    twice = simplify(once)
    assert once.structure() == twice.structure()


@settings(max_examples=60, deadline=None)
@given(strided_datatypes())
def test_canonical_chain_is_well_formed(datatype):
    canonical = simplify(translate(datatype))
    canonical.validate()
    levels = list(canonical.levels())
    assert levels[-1].is_dense
    assert all(level.is_stream for level in levels[:-1])
    # sorted by decreasing stride
    strides = [level.data.stride for level in levels[:-1]]
    assert strides == sorted(strides, reverse=True)


@settings(max_examples=40, deadline=None)
@given(strided_datatypes(), st.integers(min_value=1, max_value=3))
def test_block_count_never_exceeds_typemap_blocks(datatype, count):
    """The analytic block count is what the baseline engine charges per
    memcpy; it must never be *smaller* than reality would allow merging to,
    and for a single element it matches the merged type map exactly for the
    strided family."""
    flattened = len(list(typemap.flatten(datatype)))
    assert datatype.block_count() >= 1
    assert flattened >= 1
    assert datatype.block_count() >= flattened or datatype.is_contiguous_bytes
