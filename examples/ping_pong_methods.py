#!/usr/bin/env python
"""MPI_Send/MPI_Recv on strided GPU data: baseline vs. TEMPI's three methods.

Reproduces the flavour of Fig. 11: two ranks on different nodes exchange a
2-D strided object; we measure the send latency for

* the system MPI baseline (per-block datatype handling),
* TEMPI forced to the one-shot method,
* TEMPI forced to the device method,
* TEMPI's automatic model-based selection,

for a small (1 KiB) and a large (1 MiB) object.  The point of the paper's
Sec. 6.3 is visible directly: one-shot wins for the small object, device wins
for the large one, and "auto" always lands on the winner.

Run with:  python examples/ping_pong_methods.py
"""

from __future__ import annotations

from repro.bench.harness import format_table, format_us
from repro.machine.spec import SUMMIT
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

KIB = 1024
MIB = 1024 * 1024
BLOCK_BYTES = 8
PITCH = 512


def send_latency(object_bytes: int, mode: str, model: PerformanceModel) -> float:
    """Half-ping-pong latency of one strided send in the given mode."""

    def program(ctx):
        if mode == "baseline":
            comm = ctx.comm
        else:
            method = {
                "oneshot": PackMethod.ONESHOT,
                "device": PackMethod.DEVICE,
                "auto": PackMethod.AUTO,
            }[mode]
            comm = interpose(ctx, TempiConfig(method=method), model=model)
        nblocks = max(1, object_bytes // BLOCK_BYTES)
        datatype = comm.Type_commit(Type_vector(nblocks, BLOCK_BYTES, PITCH, BYTE))
        buffer = ctx.gpu.malloc(datatype.extent)

        # Warm-up exchange so intermediate buffers come from the resource cache.
        if ctx.rank == 0:
            comm.Send((buffer, 1, datatype), dest=1, tag=0)
            comm.Recv((buffer, 1, datatype), source=1, tag=1)
            start = ctx.clock.now
            comm.Send((buffer, 1, datatype), dest=1, tag=2)
            comm.Recv((buffer, 1, datatype), source=1, tag=3)
            return (ctx.clock.now - start) / 2
        comm.Recv((buffer, 1, datatype), source=0, tag=0)
        comm.Send((buffer, 1, datatype), dest=0, tag=1)
        comm.Recv((buffer, 1, datatype), source=0, tag=2)
        comm.Send((buffer, 1, datatype), dest=0, tag=3)
        return None

    world = World(2, ranks_per_node=1)
    results = world.run(program)
    return results[0]


def main() -> None:
    print("Measuring the simulated system once (TEMPI's measurement binary)...")
    model = PerformanceModel(measure_system(SUMMIT))

    rows = []
    for object_bytes, label in ((KIB, "1 KiB"), (MIB, "1 MiB")):
        latencies = {
            mode: send_latency(object_bytes, mode, model)
            for mode in ("baseline", "oneshot", "device", "auto")
        }
        best_forced = "oneshot" if latencies["oneshot"] <= latencies["device"] else "device"
        rows.append(
            [
                f"{label} / {BLOCK_BYTES} B blocks",
                format_us(latencies["baseline"]),
                format_us(latencies["oneshot"]),
                format_us(latencies["device"]),
                format_us(latencies["auto"]),
                best_forced,
                f"{latencies['baseline'] / latencies['auto']:,.0f}x",
            ]
        )

    print()
    print(
        format_table(
            ["object", "baseline (us)", "one-shot (us)", "device (us)", "auto (us)",
             "faster method", "speedup (auto vs baseline)"],
            rows,
        )
    )
    print()
    print("The automatic selection follows the faster forced method in both regimes,")
    print("matching the behaviour of Fig. 11b.")


if __name__ == "__main__":
    main()
