"""Figure 11: MPI_Send/MPI_Recv latency with datatype acceleration.

Fig. 11a compares, for 1 KiB / 1 MiB / 4 MiB 2-D objects over a range of
contiguous block lengths, the send latency of the one-shot method, the device
method, the model-based automatic selection and the Spectrum baseline.
Fig. 11b normalises the three TEMPI variants to show the automatic selection
reliably tracks the faster method.

By default a representative subset of block lengths is run functionally
(every mode through the real interposed send path on a two-rank world);
set ``REPRO_BENCH_FULL=1`` for the full 27-configuration grid.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import format_table, format_us
from repro.bench.workloads import FIG11_OBJECT_SIZES, Fig11Config, fig11_configurations
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import interpose

SUBSET_BLOCKS = (1, 8, 64, 256)
MODES = ("baseline", "oneshot", "device", "auto")


def _full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


def _configs():
    if _full_sweep():
        return fig11_configurations()
    return [c for c in fig11_configurations() if c.block_bytes in SUBSET_BLOCKS]


def _send_latency(config: Fig11Config, mode: str, summit_model) -> float:
    """Steady-state send+recv latency (max over the two ranks), simulated."""

    def program(ctx):
        if mode == "baseline":
            comm = ctx.comm
            ctx.comm.baseline.move_data = False  # timing-only for huge block counts
        else:
            method = {
                "oneshot": PackMethod.ONESHOT,
                "device": PackMethod.DEVICE,
                "auto": PackMethod.AUTO,
            }[mode]
            comm = interpose(ctx, TempiConfig(method=method), model=summit_model)
        datatype = comm.Type_commit(config.build())
        buffer = ctx.gpu.malloc(datatype.extent)
        # Warm-up so intermediate buffers come from the resource cache.
        if ctx.rank == 0:
            comm.Send((buffer, 1, datatype), dest=1, tag=0)
            start = ctx.clock.now
            comm.Send((buffer, 1, datatype), dest=1, tag=1)
            return ctx.clock.now - start
        comm.Recv((buffer, 1, datatype), source=0, tag=0)
        start = ctx.clock.now
        comm.Recv((buffer, 1, datatype), source=0, tag=1)
        return ctx.clock.now - start

    world = World(2, ranks_per_node=1)
    return max(world.run(program))


def _sweep(summit_model):
    results = {}
    for config in _configs():
        results[config] = {
            mode: _send_latency(config, mode, summit_model) for mode in MODES
        }
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11a_send_latency(benchmark, summit_model, report):
    results = benchmark.pedantic(_sweep, args=(summit_model,), rounds=1, iterations=1)

    rows = []
    speedups = []
    for config, modes in results.items():
        speedup = modes["baseline"] / modes["auto"]
        speedups.append(speedup)
        rows.append(
            [
                config.label,
                format_us(modes["baseline"]),
                format_us(modes["oneshot"]),
                format_us(modes["device"]),
                format_us(modes["auto"]),
                f"{speedup:,.0f}x",
            ]
        )
    print("\nFigure 11a — MPI_Send/Recv latency (simulated us)")
    print(format_table(["object/block", "baseline", "one-shot", "device", "auto", "speedup"], rows))

    # Shape claims: the datatype handling (any TEMPI mode) provides the vast
    # majority of the improvement; speedup grows with object size / smaller
    # blocks; the best case reaches thousands.
    for config, modes in results.items():
        assert min(modes["oneshot"], modes["device"]) < modes["baseline"]
    assert max(speedups) > 1_000

    report.add(
        "Fig. 11a",
        "MPI_Send speedup (auto vs baseline), best case",
        "up to 59,000x",
        f"up to {max(speedups):,.0f}x",
        matches_shape=max(speedups) > 1_000,
        note="largest for big objects with small contiguous blocks, as in the paper",
    )


@pytest.mark.benchmark(group="fig11")
def test_fig11b_auto_selection_accuracy(benchmark, summit_model, report):
    results = benchmark.pedantic(_sweep, args=(summit_model,), rounds=1, iterations=1)

    rows = []
    misselections = 0
    overheads = []
    for config, modes in results.items():
        best = min(modes["oneshot"], modes["device"])
        worst = max(modes["oneshot"], modes["device"])
        normalized_auto = modes["auto"] / worst
        overhead = modes["auto"] / best - 1.0
        overheads.append(overhead)
        if modes["auto"] > best * 1.25 and modes["auto"] > worst * 0.95:
            misselections += 1
        rows.append(
            [
                config.label,
                f"{modes['oneshot'] / worst:6.3f}",
                f"{modes['device'] / worst:6.3f}",
                f"{normalized_auto:6.3f}",
                "oneshot" if modes["oneshot"] <= modes["device"] else "device",
            ]
        )
    print("\nFigure 11b — latency normalised to the slower forced method")
    print(format_table(["object/block", "one-shot", "device", "auto", "faster method"], rows))

    assert misselections == 0
    # The selection overhead stays small relative to the send itself.
    assert max(overheads) < 0.25

    report.add(
        "Fig. 11b",
        "automatic method selection picks the faster method",
        "reliable, with ~277 ns query overhead",
        f"0 mis-selections over {len(results)} configurations; "
        f"max overhead {max(overheads) * 100:.1f}% of the send",
        matches_shape=misselections == 0,
    )


@pytest.mark.benchmark(group="fig11")
def test_fig11_latency_floor(benchmark, summit_model, report):
    """Sec. 6.3: TEMPI's send latency floor is ~30 us, dominated by the
    pack/unpack kernels on both sides."""
    config = Fig11Config(object_bytes=FIG11_OBJECT_SIZES[0], block_bytes=256)

    floor = benchmark.pedantic(
        _send_latency, args=(config, "auto", summit_model), rounds=1, iterations=1
    )
    print(f"\nsmallest-object send latency (auto): {format_us(floor)} us")
    assert 5e-6 < floor < 200e-6
    report.add(
        "Sec. 6.3",
        "TEMPI send latency floor",
        "~30 us",
        f"{floor * 1e6:.1f} us",
        matches_shape=5e-6 < floor < 200e-6,
        note="dominated by pack/unpack kernel launches on both sides",
    )
