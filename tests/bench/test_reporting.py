"""Tests for the paper-vs-measured report collector."""

from repro.bench.reporting import ExperimentRecord, ReportCollector, global_report


class TestCollector:
    def test_add_and_query(self):
        collector = ReportCollector()
        collector.add("fig8", "speedup", "242,000x", "39,000x", matches_shape=True)
        collector.add("fig11", "floor", "30 us", "28 us", matches_shape=True, note="warm cache")
        assert len(collector.records) == 2
        assert len(collector.for_experiment("fig8")) == 1
        assert collector.all_shapes_hold

    def test_shape_violation_detected(self):
        collector = ReportCollector()
        collector.add("fig9", "crossover", "present", "absent", matches_shape=False)
        assert not collector.all_shapes_hold

    def test_markdown_rendering(self):
        collector = ReportCollector()
        collector.add("fig8", "speedup", "a", "b", matches_shape=True)
        markdown = collector.to_markdown()
        assert markdown.startswith("| Experiment |")
        assert "| fig8 |" in markdown

    def test_text_rendering(self):
        collector = ReportCollector()
        collector.add("fig8", "speedup", "a", "b", matches_shape=False)
        text = collector.to_text()
        assert "fig8" in text
        assert "NO" in text

    def test_save_and_load_roundtrip(self, tmp_path):
        collector = ReportCollector()
        collector.add("table1", "latency", "13 us", "11 us", matches_shape=True)
        path = collector.save(tmp_path / "report.json")
        loaded = ReportCollector.load(path)
        assert loaded.records == collector.records

    def test_merge(self):
        first = ReportCollector([ExperimentRecord("a", "q", "1", "2", True)])
        second = ReportCollector([ExperimentRecord("b", "q", "1", "2", True)])
        first.merge([second])
        assert len(first.records) == 2

    def test_global_report_is_shared(self):
        report = global_report()
        assert report is global_report()
