"""Figure 13 (beyond the paper): datatype-carrying all-to-all-v latency.

The paper accelerates the halo exchange by interposing ``MPI_Pack`` /
``MPI_Unpack`` around a byte all-to-all-v (Fig. 12).  This repository extends
the interposer to the collective itself: the datatype-carrying
``MPI_Alltoallv`` packs each destination's sections with one kernel and
stages them per the model's per-message method choice, where the system path
pays one ``cudaMemcpyAsync`` per contiguous block of every section.

This harness sweeps world size x contiguous block length for a fixed-size
strided object per peer and reports the steady-state (second-iteration)
exchange latency of both paths head-to-head — same signature, same wire
charge, only the datatype handling differs.  Set ``REPRO_BENCH_FULL=1`` for
the full grid.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import format_table
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.interposer import interpose

#: Per-peer object: OBJECT_BYTES of payload split into blocks of block_bytes.
OBJECT_BYTES = 16384
PITCH = 512

RANK_SWEEP = (2, 4, 8)
BLOCK_SWEEP_SUBSET = (8, 64, 512)
BLOCK_SWEEP_FULL = (1, 8, 64, 512, 4096)


def _blocks() -> tuple[int, ...]:
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no"):
        return BLOCK_SWEEP_FULL
    return BLOCK_SWEEP_SUBSET


def _exchange_latency(nranks: int, block_bytes: int, summit_model, use_tempi: bool) -> float:
    """Steady-state typed-alltoallv latency (max over ranks), simulated seconds."""
    nblocks = max(1, OBJECT_BYTES // block_bytes)
    # Keep the object strided at every block length: equal block and pitch
    # would make the type contiguous, which both paths ship without packing.
    pitch = max(PITCH, 2 * block_bytes)

    def program(ctx):
        comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
        datatype = comm.Type_commit(Type_vector(nblocks, block_bytes, pitch, BYTE))
        size = comm.Get_size()
        send = ctx.gpu.malloc(datatype.extent * size)
        recv = ctx.gpu.malloc(datatype.extent * size)
        send.data[:] = (ctx.rank + 1) % 251
        counts = [1] * size
        displs = [peer * datatype.extent for peer in range(size)]
        # Warm-up so staging buffers and model queries come from the caches.
        comm.Alltoallv(
            send, counts, displs, recv, counts, displs, sendtypes=datatype, recvtypes=datatype
        )
        start = ctx.clock.now
        comm.Alltoallv(
            send, counts, displs, recv, counts, displs, sendtypes=datatype, recvtypes=datatype
        )
        return ctx.clock.now - start

    world = World(nranks, ranks_per_node=2)
    return max(world.run(program))


@pytest.mark.benchmark(group="fig13")
def test_fig13_typed_alltoallv_sweep(benchmark, summit_model, report):
    def sweep():
        table = {}
        for nranks in RANK_SWEEP:
            for block_bytes in _blocks():
                baseline = _exchange_latency(nranks, block_bytes, summit_model, use_tempi=False)
                accelerated = _exchange_latency(nranks, block_bytes, summit_model, use_tempi=True)
                table[(nranks, block_bytes)] = (baseline, accelerated)
        return table

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            nranks,
            block_bytes,
            f"{baseline * 1e6:10.1f}",
            f"{accelerated * 1e6:10.1f}",
            f"{baseline / accelerated:8.1f}x",
        ]
        for (nranks, block_bytes), (baseline, accelerated) in results.items()
    ]
    print("\nFigure 13 — datatype-carrying Alltoallv, 16 KiB strided object per peer (simulated us)")
    print(format_table(["ranks", "block B", "baseline", "TEMPI", "speedup"], rows))

    # Shape claims: TEMPI wins everywhere on this strided family, the win
    # grows as blocks shrink (more per-block copies saved), and it holds at
    # every rank count of the sweep — in particular at >= 4 ranks.
    for (nranks, block_bytes), (baseline, accelerated) in results.items():
        assert accelerated < baseline, (
            f"TEMPI typed alltoallv slower than baseline at {nranks} ranks, "
            f"{block_bytes} B blocks"
        )
    for nranks in RANK_SWEEP:
        blocks = _blocks()
        speedups = [
            results[(nranks, b)][0] / results[(nranks, b)][1] for b in blocks
        ]
        assert speedups[0] > speedups[-1], "speedup should grow as blocks shrink"
    at_4 = results[(4, _blocks()[0])]
    report.add(
        "Fig. 13 (beyond paper)",
        "typed alltoallv speedup, 4 ranks, smallest blocks",
        "TEMPI beats per-block baseline (no paper value)",
        f"{at_4[0] / at_4[1]:.0f}x",
        matches_shape=all(a < b for b, a in results.values()),
        note="collective analogue of Fig. 11: per-block copies replaced by one kernel per peer",
    )
