#!/usr/bin/env python
"""Run the system measurement sweep and query the performance model.

TEMPI ships a measurement binary that is run once per system before the
library is used (Sec. 6.3); this example is that step for the simulated
machine.  It:

1. runs the sweep (transfer curves + pack/unpack tables) and writes the
   measurement file next to this script;
2. prints the four Fig. 9a curves at a few sizes;
3. evaluates the Eq. 1-3 models for a grid of (object size, block length)
   points and prints which method the model selects where — the crossover
   map that drives MPI_Send's automatic method selection.

Run with:  python examples/system_measurement.py
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.harness import format_table, format_us
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

KIB = 1024
MIB = 1024 * 1024


def main() -> None:
    output = Path(__file__).with_name("summit_measurement.json")
    print(f"Measuring the simulated Summit-like system -> {output.name}")
    measurement = measure_system(SUMMIT, path=output)
    model = PerformanceModel(measurement)

    print("\n== Transfer latencies (the Fig. 9a curves)")
    sizes = [1, 64, KIB, 64 * KIB, MIB]
    rows = []
    for size in sizes:
        rows.append(
            [
                f"{size:,} B",
                format_us(model.transfer_time("d2h", size)),
                format_us(model.transfer_time("h2d", size)),
                format_us(model.transfer_time("cpu_cpu", size)),
                format_us(model.transfer_time("gpu_gpu", size)),
            ]
        )
    print(format_table(["size", "T_d2h (us)", "T_h2d (us)", "T_cpu-cpu (us)", "T_gpu-gpu (us)"], rows))

    print("\n== Method selection map (Eqs. 1-3; 'o' = one-shot, 'D' = device)")
    blocks = [1, 4, 16, 64, 256]
    object_sizes = [KIB, 16 * KIB, 256 * KIB, MIB, 4 * MIB]
    header = ["object \\ block"] + [f"{b} B" for b in blocks]
    rows = []
    for size in object_sizes:
        row = [f"{size // KIB} KiB" if size < MIB else f"{size // MIB} MiB"]
        for block in blocks:
            choice = model.choose_method(size, block)
            row.append("o" if choice.value == "oneshot" else "D")
        rows.append(row)
    print(format_table(header, rows))

    print("\n== Modelled end-to-end send latencies for a 1 MiB object")
    rows = []
    for block in blocks:
        estimate = model.estimate(MIB, block)
        rows.append(
            [
                f"{block} B",
                format_us(estimate.oneshot),
                format_us(estimate.device),
                format_us(estimate.staged),
                estimate.best().value,
            ]
        )
    print(format_table(["block", "one-shot (us)", "device (us)", "staged (us)", "selected"], rows))
    print("\nThe staged method is never selected, matching Fig. 9b.")


if __name__ == "__main__":
    main()
