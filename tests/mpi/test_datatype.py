"""Tests for named datatypes and the Datatype base class."""

import pytest

from repro.mpi.constructors import Type_contiguous
from repro.mpi.datatype import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    NAMED_TYPES,
    Combiner,
    check_datatype,
    check_order,
    check_positive_count,
    sequence_of_ints,
)
from repro.mpi.errors import MpiTypeError


class TestNamedTypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert CHAR.size == 1
        assert INT.size == 4
        assert FLOAT.size == 4
        assert DOUBLE.size == 8
        assert INT64.size == 8

    def test_extent_equals_size(self):
        for named in NAMED_TYPES.values():
            assert named.extent == named.size
            assert named.lb == 0
            assert named.ub == named.size

    def test_always_committed(self):
        assert FLOAT.committed

    def test_layout_single_block(self):
        assert list(DOUBLE.layout()) == [(0, 8)]
        assert DOUBLE.block_count() == 1

    def test_no_children(self):
        assert list(FLOAT.child_layout()) == []
        assert FLOAT.is_named

    def test_contiguous_bytes(self):
        assert BYTE.is_contiguous_bytes
        assert FLOAT.is_contiguous_bytes

    def test_registry_contains_all(self):
        assert "MPI_FLOAT" in NAMED_TYPES
        assert NAMED_TYPES["MPI_FLOAT"] is FLOAT

    def test_envelope(self):
        combiner, contents = FLOAT.Get_envelope()
        assert combiner is Combiner.NAMED
        assert contents["size"] == 4


class TestLifecycle:
    def test_commit_and_use(self):
        t = Type_contiguous(4, FLOAT)
        assert not t.committed
        t.Commit()
        assert t.committed

    def test_uncommitted_use_rejected(self):
        t = Type_contiguous(4, FLOAT)
        with pytest.raises(MpiTypeError):
            t._check_committed()

    def test_free_prevents_reuse(self):
        t = Type_contiguous(4, FLOAT)
        t.Commit()
        t.Free()
        with pytest.raises(MpiTypeError):
            t.Commit()
        with pytest.raises(MpiTypeError):
            t._check_committed()

    def test_free_clears_attachment(self):
        t = Type_contiguous(4, FLOAT)
        t.attachment = object()
        t.Free()
        assert t.attachment is None

    def test_get_size_and_extent(self):
        t = Type_contiguous(4, FLOAT)
        assert t.Get_size() == 16
        assert t.Get_extent() == (0, 16)

    def test_handles_are_unique(self):
        a = Type_contiguous(2, FLOAT)
        b = Type_contiguous(2, FLOAT)
        assert a.handle != b.handle


class TestArgumentValidators:
    def test_check_positive_count(self):
        assert check_positive_count(3) == 3
        with pytest.raises(MpiTypeError):
            check_positive_count(0)
        with pytest.raises(MpiTypeError):
            check_positive_count(-1)
        with pytest.raises(MpiTypeError):
            check_positive_count(2.5)
        with pytest.raises(MpiTypeError):
            check_positive_count(True)

    def test_check_datatype(self):
        assert check_datatype(FLOAT) is FLOAT
        with pytest.raises(MpiTypeError):
            check_datatype("MPI_FLOAT")
        freed = Type_contiguous(2, FLOAT)
        freed.Free()
        with pytest.raises(MpiTypeError):
            check_datatype(freed)

    def test_check_order(self):
        assert check_order(0) == 0
        assert check_order(1) == 1
        with pytest.raises(MpiTypeError):
            check_order(2)

    def test_sequence_of_ints(self):
        assert sequence_of_ints([1, 2, 3], "sizes") == (1, 2, 3)
        with pytest.raises(MpiTypeError):
            sequence_of_ints(["a"], "sizes")
