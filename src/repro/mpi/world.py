"""The SPMD runner.

:class:`World` plays the role of ``mpiexec``: it builds one simulated process
per rank — a virtual clock, a simulated GPU, a communicator — and runs the
same Python function on every rank in its own thread.  Tests and examples use
it to execute real multi-rank programs (halo exchanges, ping-pongs) whose
bytes genuinely move between ranks, while the per-rank virtual clocks report
latencies from the machine's cost models rather than from the vagaries of
the host's thread scheduler.

Large-scale experiments (the 3072-rank points of Fig. 12) do not spawn 3072
threads; they use the analytic :mod:`repro.apps.exchange_model` instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.clock import VirtualClock
from repro.gpu.cost_model import GpuCostModel
from repro.gpu.device import Device
from repro.gpu.runtime import CudaRuntime
from repro.machine.network import NetworkModel
from repro.machine.nic import NicTimeline
from repro.machine.spec import SUMMIT, MachineSpec
from repro.machine.topology import Topology, TopologySpec
from repro.mpi.communicator import Communicator
from repro.mpi.errors import MpiError
from repro.mpi.p2p import MessageRouter


@dataclass
class ProcessContext:
    """Everything one simulated rank can see."""

    rank: int
    size: int
    comm: Communicator
    gpu: CudaRuntime
    clock: VirtualClock
    topology: Topology
    machine: MachineSpec
    world: "World"


class WorldError(MpiError):
    """A rank raised inside :meth:`World.run`; carries the original errors."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        summary = "; ".join(f"rank {rank}: {exc!r}" for rank, exc in sorted(failures.items()))
        super().__init__(f"{len(failures)} rank(s) failed: {summary}")


class World:
    """A set of simulated ranks sharing a message router and a machine."""

    def __init__(
        self,
        nranks: int,
        *,
        ranks_per_node: int = 1,
        machine: MachineSpec = SUMMIT,
        gpu_cost: Optional[GpuCostModel] = None,
        topology: Optional[TopologySpec] = None,
    ) -> None:
        if nranks <= 0:
            raise MpiError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        #: ``topology=`` overlays a hierarchical shape (islands, rails,
        #: fat-tree) on the block placement; its ``ranks_per_node`` wins.
        self.topology = Topology(
            nranks, ranks_per_node=ranks_per_node, machine=machine, spec=topology
        )
        self.network = NetworkModel(machine)
        #: The shared virtual NIC: one injection port per rank, one occupancy
        #: ledger per link, reserved by the TEMPI progress engine so that
        #: concurrent plans contend for the wire (``TempiConfig(progress=...)``).
        self.nic = NicTimeline()
        self.router = MessageRouter(nranks)
        cost = gpu_cost if gpu_cost is not None else machine.node.gpu
        self.contexts: list[ProcessContext] = []
        for rank in range(nranks):
            clock = VirtualClock()
            placement = self.topology.placement(rank)
            runtime = CudaRuntime(clock=clock, cost_model=cost, device=Device(placement.gpu))
            comm = Communicator(
                rank,
                nranks,
                self.router,
                runtime,
                self.network,
                self.topology,
                context=0,
                world=self,
            )
            self.contexts.append(
                ProcessContext(
                    rank=rank,
                    size=nranks,
                    comm=comm,
                    gpu=runtime,
                    clock=clock,
                    topology=self.topology,
                    machine=machine,
                    world=self,
                )
            )
        self._barrier = threading.Barrier(nranks) if nranks > 1 else None
        self._barrier_times: list[float] = [0.0] * nranks

    # ----------------------------------------------------------------- running
    def run(
        self,
        fn: Callable[..., object],
        *args,
        timeout: float = 300.0,
    ) -> list[object]:
        """Run ``fn(ctx, *args)`` on every rank; returns per-rank results.

        Any exception raised by a rank aborts the whole world (waking blocked
        receivers and barrier waiters) and is re-raised as :class:`WorldError`.
        """
        results: list[object] = [None] * self.nranks
        failures: dict[int, BaseException] = {}

        def target(ctx: ProcessContext) -> None:
            try:
                results[ctx.rank] = fn(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - propagate to the caller
                failures[ctx.rank] = exc
                self.router.shutdown()
                if self._barrier is not None:
                    self._barrier.abort()

        if self.nranks == 1:
            target(self.contexts[0])
        else:
            threads = [
                threading.Thread(target=target, args=(ctx,), name=f"rank-{ctx.rank}", daemon=True)
                for ctx in self.contexts
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=timeout)
            if any(thread.is_alive() for thread in threads):
                self.router.shutdown()
                if self._barrier is not None:
                    self._barrier.abort()
                raise MpiError(
                    f"world of {self.nranks} ranks did not finish within {timeout}s "
                    f"(likely an unmatched receive)"
                )
        if failures:
            raise WorldError(failures)
        return results

    # ----------------------------------------------------------------- barrier
    def barrier_wait(self, rank: int, time: float) -> float:
        """Record ``rank``'s time, wait for every rank, return the global maximum.

        The second barrier pass keeps a fast rank from overwriting its slot for
        the *next* barrier before a slow rank has read this one's maximum.
        """
        if self._barrier is None:
            return time
        self._barrier_times[rank] = time
        self._barrier.wait()
        latest = max(self._barrier_times)
        self._barrier.wait()
        return latest

    # --------------------------------------------------------------- inspection
    @property
    def clocks(self) -> list[float]:
        """Current virtual time of every rank."""
        return [ctx.clock.now for ctx in self.contexts]

    def max_clock(self) -> float:
        """Latest virtual time across all ranks (a run's makespan)."""
        return max(self.clocks)

    def reset_clocks(self) -> None:
        """Reset every rank's clock to zero (between benchmark repetitions).

        Every stream of every runtime is reset with the clock — the plan
        executor runs pack kernels on cached per-peer streams, whose ready
        times would otherwise leak across repetitions.
        """
        self.nic.reset()
        for ctx in self.contexts:
            ctx.clock.reset()
            for stream in ctx.gpu._streams:  # noqa: SLF001 - world owns its runtimes
                stream._ready_time = 0.0  # noqa: SLF001

    def shutdown(self) -> None:
        """Tear the world down, waking any blocked receiver."""
        self.router.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<World {self.nranks} ranks on {self.topology.nnodes} nodes>"
