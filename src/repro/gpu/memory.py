"""Simulated device and host memory.

Every buffer is backed by a NumPy ``uint8`` array so the pack/unpack kernels
and MPI transfers in this reproduction move real bytes and can be verified.
The *kind* of a buffer matters for two reasons that the paper leans on:

* TEMPI must detect whether an application pointer is GPU resident before it
  decides to interpose (Sec. 6.3 counts this check in the latency floor); the
  simulation exposes :attr:`Buffer.is_device` for the same purpose.
* The "one-shot" method packs directly into *mapped* (zero-copy) host memory,
  which is slower per byte than device memory but skips a later ``cudaMemcpy``;
  :class:`MemoryKind` distinguishes pageable, pinned and mapped host memory so
  the cost model can charge the right bandwidth.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.gpu.device import Device
from repro.gpu.errors import CudaBufferError, CudaInvalidValue


class MemoryKind(enum.Enum):
    """Where a buffer's bytes live in the simulated machine."""

    DEVICE = "device"
    HOST_PAGEABLE = "host_pageable"
    HOST_PINNED = "host_pinned"
    HOST_MAPPED = "host_mapped"

    @property
    def is_host(self) -> bool:
        return self is not MemoryKind.DEVICE


class Buffer:
    """A contiguous simulated allocation (or a view into one).

    Views share the underlying NumPy storage with their parent, mirroring
    pointer arithmetic on a real allocation.
    """

    __slots__ = ("_array", "kind", "device", "_freed", "_parent", "offset")

    def __init__(
        self,
        nbytes: int,
        kind: MemoryKind,
        device: Optional[Device] = None,
        *,
        _array: Optional[np.ndarray] = None,
        _parent: Optional["Buffer"] = None,
        _offset: int = 0,
    ) -> None:
        if nbytes < 0:
            raise CudaInvalidValue(f"buffer size must be non-negative, got {nbytes}")
        if _array is None:
            _array = np.zeros(nbytes, dtype=np.uint8)
        self._array = _array
        self.kind = kind
        self.device = device
        self._freed = False
        self._parent = _parent
        self.offset = _offset

    # ------------------------------------------------------------------ basics
    @property
    def nbytes(self) -> int:
        """Size of the buffer in bytes."""
        return int(self._array.nbytes)

    @property
    def data(self) -> np.ndarray:
        """The backing ``uint8`` array (shared with any views)."""
        self._check_alive()
        return self._array

    @property
    def is_device(self) -> bool:
        """True when the buffer lives in simulated device memory."""
        return self.kind is MemoryKind.DEVICE

    @property
    def is_view(self) -> bool:
        """True when this buffer aliases part of a parent allocation."""
        return self._parent is not None

    @property
    def freed(self) -> bool:
        """True once the allocation (or its parent) has been freed."""
        if self._parent is not None:
            return self._parent.freed
        return self._freed

    def _check_alive(self) -> None:
        if self.freed:
            raise CudaBufferError("buffer used after free")

    # ------------------------------------------------------------------- views
    def view(self, offset: int = 0, nbytes: Optional[int] = None) -> "Buffer":
        """Return a sub-buffer aliasing ``[offset, offset + nbytes)``.

        This is the moral equivalent of pointer arithmetic on a ``void*``.
        """
        self._check_alive()
        if nbytes is None:
            nbytes = self.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise CudaBufferError(
                f"view [{offset}, {offset + nbytes}) outside buffer of {self.nbytes} bytes"
            )
        return Buffer(
            nbytes,
            self.kind,
            self.device,
            _array=self._array[offset : offset + nbytes],
            _parent=self._parent if self._parent is not None else self,
            _offset=self.offset + offset,
        )

    # ------------------------------------------------------------------ access
    def as_ndarray(self, dtype: np.dtype | str = np.uint8, shape: Optional[tuple] = None) -> np.ndarray:
        """Reinterpret the bytes as an ndarray of ``dtype`` (optionally reshaped)."""
        self._check_alive()
        arr = self._array.view(np.dtype(dtype))
        if shape is not None:
            arr = arr.reshape(shape)
        return arr

    def fill(self, value: int) -> None:
        """Set every byte to ``value`` (like ``cudaMemset``)."""
        self._check_alive()
        self._array[:] = value

    def copy_from_host(self, source: np.ndarray) -> None:
        """Copy host bytes into the buffer (functional part of ``cudaMemcpy``)."""
        self._check_alive()
        src = np.ascontiguousarray(source).view(np.uint8).ravel()
        if src.nbytes > self.nbytes:
            raise CudaBufferError(
                f"source of {src.nbytes} bytes does not fit in buffer of {self.nbytes} bytes"
            )
        self._array[: src.nbytes] = src

    def to_host(self) -> np.ndarray:
        """Return a copy of the bytes as a host array."""
        self._check_alive()
        return self._array.copy()

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"gpu{self.device.ordinal}" if self.device is not None else "host"
        return f"<Buffer {self.kind.value} {self.nbytes}B on {where}>"


class DeviceBuffer(Buffer):
    """A buffer in simulated device memory."""

    def __init__(self, nbytes: int, device: Device, **kwargs) -> None:
        super().__init__(nbytes, MemoryKind.DEVICE, device, **kwargs)


class HostBuffer(Buffer):
    """A buffer in simulated host memory (pageable, pinned or mapped)."""

    def __init__(self, nbytes: int, kind: MemoryKind = MemoryKind.HOST_PAGEABLE, **kwargs) -> None:
        if kind is MemoryKind.DEVICE:
            raise CudaInvalidValue("HostBuffer cannot have DEVICE kind")
        super().__init__(nbytes, kind, None, **kwargs)


class MemoryPool:
    """A size-bucketed free list of buffers.

    TEMPI keeps a cache of intermediate device and pinned host buffers so
    repeated sends of the same datatype do not pay ``cudaMalloc`` /
    ``cudaHostAlloc`` latency every iteration (Sec. 5).  The pool rounds
    requests up to the next power of two and reuses returned buffers of the
    same bucket.
    """

    def __init__(self) -> None:
        self._free: dict[tuple[MemoryKind, int], list[Buffer]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _bucket(nbytes: int) -> int:
        if nbytes <= 1:
            return 1
        return 1 << (int(nbytes) - 1).bit_length()

    def acquire(self, nbytes: int, kind: MemoryKind) -> Optional[Buffer]:
        """Return a cached buffer of at least ``nbytes`` of ``kind``, or None."""
        bucket = self._bucket(nbytes)
        stack = self._free.get((kind, bucket))
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return None

    def release(self, buffer: Buffer) -> None:
        """Return a buffer to the pool for reuse."""
        if buffer.freed:
            raise CudaBufferError("cannot pool a freed buffer")
        bucket = self._bucket(buffer.nbytes)
        self._free.setdefault((buffer.kind, bucket), []).append(buffer)

    def clear(self) -> None:
        """Drop every pooled buffer."""
        self._free.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self._free.values())
