"""TEMPI's internal representation (IR) of datatypes.

Section 3.1 of the paper: a committed MPI datatype is first converted into a
*Type hierarchy*, where each level carries one ``TypeData`` and at most one
child level.  Two kinds of ``TypeData`` exist:

``DenseData``
    A run of contiguous bytes — the role a named type plays in MPI.
``StreamData``
    A strided sequence of ``count`` elements of the single child type,
    ``stride`` bytes apart, starting ``offset`` bytes in.

Distinct-but-equivalent MPI datatypes produce distinct Type trees; the
canonicalisation passes in :mod:`repro.tempi.canonicalize` reduce them to a
common form.  The IR is deliberately tiny — that is the point of the paper:
a handful of integers per level instead of a device-resident block list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union


@dataclass
class DenseData:
    """A contiguous run of bytes.

    Attributes
    ----------
    offset:
        Bytes between the enclosing level's origin and the first byte.
    extent:
        Number of contiguous bytes.
    """

    offset: int = 0
    extent: int = 0

    def validate(self) -> None:
        if self.offset < 0:
            raise ValueError(f"DenseData offset must be non-negative, got {self.offset}")
        if self.extent <= 0:
            raise ValueError(f"DenseData extent must be positive, got {self.extent}")

    def clone(self) -> "DenseData":
        return DenseData(self.offset, self.extent)


@dataclass
class StreamData:
    """A strided stream of ``count`` child elements.

    Attributes
    ----------
    offset:
        Bytes between the enclosing level's origin and the first element.
    stride:
        Bytes between the starts of consecutive elements.
    count:
        Number of elements in the stream.
    """

    offset: int = 0
    stride: int = 0
    count: int = 0

    def validate(self) -> None:
        if self.offset < 0:
            raise ValueError(f"StreamData offset must be non-negative, got {self.offset}")
        if self.stride <= 0:
            raise ValueError(f"StreamData stride must be positive, got {self.stride}")
        if self.count <= 0:
            raise ValueError(f"StreamData count must be positive, got {self.count}")

    def clone(self) -> "StreamData":
        return StreamData(self.offset, self.stride, self.count)


TypeData = Union[DenseData, StreamData]


@dataclass
class Type:
    """One level of the Type hierarchy: a ``TypeData`` plus zero or one child."""

    data: TypeData
    child: Optional["Type"] = None

    # ----------------------------------------------------------------- shape
    @property
    def is_dense(self) -> bool:
        """True when this level is a :class:`DenseData`."""
        return isinstance(self.data, DenseData)

    @property
    def is_stream(self) -> bool:
        """True when this level is a :class:`StreamData`."""
        return isinstance(self.data, StreamData)

    def depth(self) -> int:
        """Number of levels below and including this one."""
        return 1 + (self.child.depth() if self.child is not None else 0)

    def levels(self) -> Iterator["Type"]:
        """Iterate the chain from this level down to the leaf."""
        node: Optional[Type] = self
        while node is not None:
            yield node
            node = node.child

    def leaf(self) -> "Type":
        """The bottom level of the chain."""
        node = self
        while node.child is not None:
            node = node.child
        return node

    # ------------------------------------------------------------- utilities
    def validate(self) -> None:
        """Check structural invariants of the whole chain.

        * every ``TypeData`` is self-consistent;
        * ``DenseData`` levels are leaves (a dense run has no children);
        * ``StreamData`` levels have exactly one child.
        """
        for level in self.levels():
            level.data.validate()
            if level.is_dense and level.child is not None:
                raise ValueError("DenseData levels cannot have children")
            if level.is_stream and level.child is None:
                raise ValueError("StreamData levels must have a child")

    def clone(self) -> "Type":
        """Deep copy of the chain (canonicalisation mutates in place)."""
        return Type(self.data.clone(), self.child.clone() if self.child is not None else None)

    def total_bytes(self) -> int:
        """Payload bytes described by one element of this Type."""
        if self.is_dense:
            return self.data.extent
        assert self.child is not None
        return self.data.count * self.child.total_bytes()

    def footprint(self) -> int:
        """Bytes of metadata this representation needs (Sec. 2's argument).

        Each level is three integers at most; compare with the 16 bytes per
        block of the generic block-list representation.
        """
        return sum(24 for _ in self.levels())

    def structure(self) -> tuple:
        """A hashable summary used for equality in tests and memoisation."""
        parts = []
        for level in self.levels():
            if level.is_dense:
                parts.append(("dense", level.data.offset, level.data.extent))
            else:
                parts.append(("stream", level.data.offset, level.data.stride, level.data.count))
        return tuple(parts)

    def __str__(self) -> str:
        pieces = []
        for level in self.levels():
            if level.is_dense:
                pieces.append(f"Dense(off={level.data.offset}, extent={level.data.extent})")
            else:
                pieces.append(
                    f"Stream(off={level.data.offset}, stride={level.data.stride}, "
                    f"count={level.data.count})"
                )
        return " -> ".join(pieces)


def dense(extent: int, offset: int = 0) -> Type:
    """Convenience constructor for a leaf dense level."""
    return Type(DenseData(offset=offset, extent=extent))


def stream(count: int, stride: int, child: Type, offset: int = 0) -> Type:
    """Convenience constructor for a stream level over ``child``."""
    return Type(StreamData(offset=offset, stride=stride, count=count), child)
