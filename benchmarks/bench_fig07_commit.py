"""Figure 7: datatype creation and commit time.

The paper sweeps fifteen constructions of 3-D objects and reports, per
configuration, the time spent *creating* the datatype (the ``MPI_Type_*``
calls, unchanged by TEMPI) and the time spent in ``MPI_Type_commit`` — which
TEMPI slows down by 3.8-8.3x because that is where translation,
canonicalisation and kernel selection run.  Both are wall-clock
microbenchmarks of host code, so this module measures wall time (trimean of
many repetitions, like the paper's 30000-execution trimean) rather than
simulated time.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import format_table, trimean
from repro.bench.workloads import fig7_configurations
from repro.mpi.world import World
from repro.tempi.interposer import interpose

REPETITIONS = 30


def _measure_wall(fn, repetitions: int = REPETITIONS) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return trimean(samples)


def _sweep(summit_model):
    """Create/commit times (seconds, wall clock) for every Fig. 7 configuration."""
    world = World(1)
    ctx = world.contexts[0]
    tempi_comm = interpose(ctx, model=summit_model)
    rows = []
    for config in fig7_configurations():
        create_time = _measure_wall(config.build)
        baseline_commit = _measure_wall(lambda: config.build().Commit())
        tempi_commit = _measure_wall(lambda: tempi_comm.Type_commit(config.build()))
        # Subtract the creation cost that both commit measurements include.
        baseline_commit = max(1e-9, baseline_commit - create_time)
        tempi_commit = max(1e-9, tempi_commit - create_time)
        rows.append((config, create_time, baseline_commit, tempi_commit))
    return rows


@pytest.mark.benchmark(group="fig07")
def test_fig07_commit_overhead(benchmark, summit_model, report):
    rows = benchmark.pedantic(_sweep, args=(summit_model,), rounds=1, iterations=1)

    table = []
    slowdowns = []
    for config, create, base_commit, tempi_commit in rows:
        slowdown = tempi_commit / base_commit if base_commit > 0 else float("inf")
        slowdowns.append(tempi_commit / max(base_commit, 1e-9))
        table.append(
            [
                config.index,
                config.family,
                f"{create * 1e6:8.2f}",
                f"{base_commit * 1e6:8.2f}",
                f"{tempi_commit * 1e6:8.2f}",
                f"{slowdown:6.1f}x",
            ]
        )
    print("\nFigure 7 — datatype create/commit wall time (us, trimean of "
          f"{REPETITIONS} repetitions)")
    print(
        format_table(
            ["cfg", "construction", "create", "commit", "commit (TEMPI)", "slowdown"],
            table,
        )
    )

    # Shape claims: TEMPI never changes creation, always slows commit, and the
    # absolute cost stays tiny (a one-time startup cost).
    assert all(tempi >= base for _, _, base, tempi in rows)
    worst_commit = max(tempi for _, _, _, tempi in rows)
    assert worst_commit < 0.05  # still negligible in absolute terms

    report.add(
        "Fig. 7",
        "commit slowdown (TEMPI vs system MPI)",
        "3.8x - 8.3x",
        f"{min(slowdowns):.1f}x - {max(slowdowns):.1f}x",
        matches_shape=all(s >= 1.0 for s in slowdowns),
        note="wall-clock trimean; absolute commit cost stays microseconds-scale",
    )
