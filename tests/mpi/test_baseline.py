"""Tests for the Spectrum-like baseline datatype engine."""

import numpy as np
import pytest

from repro.gpu.cost_model import SUMMIT_GPU
from repro.gpu.memory import HostBuffer
from repro.gpu.runtime import CudaRuntime
from repro.mpi.baseline import BaselineDatatypeEngine, contiguous_payload
from repro.mpi.constructors import Type_contiguous, Type_indexed, Type_vector
from repro.mpi.datatype import BYTE, FLOAT
from repro.mpi.errors import MpiArgumentError, MpiTypeError


@pytest.fixture
def engine(free_runtime):
    return BaselineDatatypeEngine(free_runtime)


@pytest.fixture
def summit_engine(summit_runtime):
    return BaselineDatatypeEngine(summit_runtime)


def strided_type(nblocks=8, block=16, pitch=64):
    return Type_vector(nblocks, block, pitch, BYTE).Commit()


class TestPackFunctional:
    def test_gathers_blocks(self, engine, free_runtime):
        t = strided_type()
        src = free_runtime.malloc(t.extent)
        dst = free_runtime.malloc(t.size)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint64).astype(np.uint8)
        position = engine.pack(src, t, 1, dst)
        assert position == t.size
        expected = np.concatenate([src.data[i * 64 : i * 64 + 16] for i in range(8)])
        assert np.array_equal(dst.data, expected)

    def test_position_argument(self, engine, free_runtime):
        t = Type_contiguous(16, BYTE).Commit()
        src = free_runtime.malloc(16)
        dst = free_runtime.malloc(64)
        src.data[:] = 5
        position = engine.pack(src, t, 1, dst, 32)
        assert position == 48
        assert (dst.data[32:48] == 5).all()
        assert not dst.data[:32].any()

    def test_unpack_roundtrip(self, engine, free_runtime):
        t = strided_type(4, 8, 32)
        original = free_runtime.malloc(t.extent)
        packed = free_runtime.malloc(t.size)
        original.data[:] = np.random.default_rng(0).integers(0, 255, original.nbytes, dtype=np.uint8)
        engine.pack(original, t, 1, packed)
        scattered = free_runtime.malloc(t.extent)
        engine.unpack(packed, 0, scattered, t, 1)
        repacked = free_runtime.malloc(t.size)
        engine.pack(scattered, t, 1, repacked)
        assert np.array_equal(packed.data, repacked.data)

    def test_multiple_elements(self, engine, free_runtime):
        t = Type_vector(2, 4, 8, BYTE).Commit()  # extent 12+4? -> (1*8+4)=12 bytes
        src = free_runtime.malloc(t.extent * 3)
        dst = free_runtime.malloc(t.size * 3)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint16).astype(np.uint8)
        engine.pack(src, t, 3, dst)
        offsets = [0, 8, 12, 20, 24, 32]
        expected = np.concatenate([src.data[o : o + 4] for o in offsets])
        assert np.array_equal(dst.data, expected)

    def test_irregular_indexed_type(self, engine, free_runtime):
        t = Type_indexed([2, 1, 3], [0, 5, 10], FLOAT).Commit()
        src = free_runtime.malloc(t.extent)
        dst = free_runtime.malloc(t.size)
        src.data[:] = np.arange(src.nbytes, dtype=np.uint8)
        engine.pack(src, t, 1, dst)
        expected = np.concatenate([src.data[0:8], src.data[20:24], src.data[40:52]])
        assert np.array_equal(dst.data, expected)

    def test_uncommitted_type_rejected(self, engine, free_runtime):
        t = Type_vector(2, 4, 8, BYTE)
        src = free_runtime.malloc(64)
        dst = free_runtime.malloc(64)
        with pytest.raises(MpiTypeError):
            engine.pack(src, t, 1, dst)

    def test_output_overflow_rejected(self, engine, free_runtime):
        t = strided_type()
        src = free_runtime.malloc(t.extent)
        dst = free_runtime.malloc(t.size - 1)
        with pytest.raises(MpiArgumentError):
            engine.pack(src, t, 1, dst)

    def test_unpack_input_overflow_rejected(self, engine, free_runtime):
        t = strided_type()
        packed = free_runtime.malloc(t.size - 1)
        out = free_runtime.malloc(t.extent)
        with pytest.raises(MpiArgumentError):
            engine.unpack(packed, 0, out, t, 1)

    def test_move_data_false_skips_bytes_but_charges_time(self, summit_runtime):
        engine = BaselineDatatypeEngine(summit_runtime, move_data=False)
        t = strided_type()
        src = summit_runtime.malloc(t.extent)
        dst = summit_runtime.malloc(t.size)
        src.data[:] = 7
        before = summit_runtime.clock.now
        engine.pack(src, t, 1, dst)
        assert summit_runtime.clock.now > before
        assert not dst.data.any()


class TestPackCost:
    def test_cost_scales_with_block_count(self, summit_engine):
        few = summit_engine.pack_cost(strided_type(nblocks=8), 1)
        many = summit_engine.pack_cost(strided_type(nblocks=800), 1)
        assert many.blocks == 800
        assert many.total_s > few.total_s

    def test_cost_formula(self, summit_engine):
        t = strided_type(nblocks=10, block=16)
        cost = summit_engine.pack_cost(t, 1)
        expected = 10 * SUMMIT_GPU.memcpy_call_s + 160 / SUMMIT_GPU.d2d_bandwidth
        assert cost.total_s == pytest.approx(expected)

    def test_clock_advances_by_cost(self, summit_runtime):
        engine = BaselineDatatypeEngine(summit_runtime)
        t = strided_type(nblocks=100)
        src = summit_runtime.malloc(t.extent)
        dst = summit_runtime.malloc(t.size)
        alloc_time = summit_runtime.clock.now
        cost = engine.pack_cost(t, 1).total_s
        engine.pack(src, t, 1, dst)
        assert summit_runtime.clock.now - alloc_time == pytest.approx(cost)

    def test_host_path_uses_slower_bandwidth(self, summit_engine):
        t = Type_contiguous(1 << 20, BYTE).Commit()
        device = summit_engine.pack_cost(t, 1, device=True)
        host = summit_engine.pack_cost(t, 1, device=False)
        assert host.total_s > device.total_s


class TestHelpers:
    def test_contiguous_payload_view(self, free_runtime):
        t = Type_contiguous(32, BYTE).Commit()
        buf = free_runtime.malloc(64)
        buf.data[:32] = 9
        view = contiguous_payload(buf, t, 1)
        assert view is not None
        assert view.nbytes == 32
        assert (view == 9).all()

    def test_contiguous_payload_rejects_strided(self):
        t = strided_type()
        assert contiguous_payload(HostBuffer(1024), t, 1) is None

    def test_contiguous_payload_overflow(self, free_runtime):
        t = Type_contiguous(128, BYTE).Commit()
        with pytest.raises(MpiArgumentError):
            contiguous_payload(free_runtime.malloc(64), t, 1)

    def test_check_fits(self, free_runtime):
        t = strided_type()
        BaselineDatatypeEngine.check_fits(free_runtime.malloc(t.extent), t, 1)
        with pytest.raises(MpiArgumentError):
            BaselineDatatypeEngine.check_fits(free_runtime.malloc(16), t, 1)
