"""Property-based pins for the duplex NIC (PR 5).

Three invariants anchor the new receive-side accounting:

* ``TempiConfig(nic="inject_only")`` is **byte- and price-identical to the
  PR-4 books**: delivery matches the duplex run byte for byte, no ingestion
  state is ever touched, and every receive completes exactly at its
  sender-computed ``available_at`` (the PR-4 semantics, asserted against the
  request's own arrival hint);
* duplex accounting can only *delay* landings, never accelerate them, and a
  single sender is never delayed at all;
* duplex arrival order is **independent of plan-issue interleaving**: the
  same incast priced under adversarial wall-clock jitter (senders sleeping
  in different orders before posting) lands at bit-identical virtual times,
  because ingestion batches are served in the deterministic
  ``(post_time, source, seq)`` key order and committed in receiver program
  order.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.progress import ProgressEngine


@contextmanager
def recorded_landings():
    """Record every (sender-computed arrival, committed landing) pair.

    Wraps the progress engine's ingestion seam — the exact point where duplex
    accounting may delay a landing and inject-only must not — so the pin
    asserts the pricing claim itself, not a downstream clock that also
    carries unpack charges.
    """
    pairs: list[tuple[float, float]] = []
    lock = threading.Lock()
    one, batch = ProgressEngine.ingest_one, ProgressEngine.ingest_batch

    def record_one(self, envelope):
        landing = one(self, envelope)
        with lock:
            pairs.append((envelope.available_at, landing))
        return landing

    def record_batch(self, envelopes):
        landings = batch(self, envelopes)
        with lock:
            pairs.extend(
                (envelope.available_at, landing)
                for envelope, landing in zip(envelopes, landings)
            )
        return landings

    ProgressEngine.ingest_one = record_one
    ProgressEngine.ingest_batch = record_batch
    try:
        yield pairs
    finally:
        ProgressEngine.ingest_one = one
        ProgressEngine.ingest_batch = batch


@st.composite
def incast_cases(draw):
    """An incast shape: sender count and a wire-heavy vector datatype."""
    senders = draw(st.integers(min_value=1, max_value=4))
    nblocks = draw(st.sampled_from((64, 256, 1024)))
    block = draw(st.sampled_from((64, 256)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return senders, nblocks, block, seed


def _run_incast(config, senders, nblocks, block, seed, jitter=None):
    """N senders -> rank 0; returns (per-message clocks/hints, payloads, world).

    ``jitter`` optionally maps each sender rank to a wall-clock sleep (in
    milliseconds) taken *before* its Isend, permuting the real-time order the
    posts hit the shared timeline in without touching any virtual input.
    """

    def program(ctx):
        comm = interpose(ctx, config)
        datatype = comm.Type_commit(Type_vector(nblocks, block, 2 * block, BYTE))
        buf = ctx.gpu.malloc(datatype.extent)
        if ctx.rank == 0:
            # The barrier is the happens-before edge: every sender's post is
            # in the mailbox before a single hint is probed.
            comm.Barrier()
            requests = [
                comm.Irecv((buf, 1, datatype), source=source, tag=source)
                for source in range(1, comm.Get_size())
            ]
            observations = []
            payloads = []
            for request in requests:
                before = ctx.clock.now
                hint = request.arrival_hint()
                request.Wait()
                observations.append((before, hint, ctx.clock.now))
                payloads.append(buf.data.copy())
            return observations, payloads
        if jitter is not None:
            time.sleep(jitter.get(ctx.rank, 0.0) / 1e3)
        rng = np.random.default_rng(seed + ctx.rank)
        buf.data[:] = rng.integers(0, 255, buf.nbytes, dtype=np.uint8)
        request = comm.Isend((buf, 1, datatype), dest=0, tag=ctx.rank)
        comm.Barrier()
        request.Wait()
        return None

    world = World(senders + 1, ranks_per_node=1)
    observations, payloads = world.run(program)[0]
    return observations, payloads, world


@settings(max_examples=15, deadline=None)
@given(incast_cases())
def test_inject_only_is_byte_and_price_identical_to_pr4(case):
    """The ablation pin: PR-4 semantics, observable at the request surface.

    Under ``nic="inject_only"`` a receive's landing *is* the envelope's
    sender-computed arrival: the pre-Wait arrival hint (which reads exactly
    ``available_at`` on this path) equals the post-Wait clock whenever the
    receive had to wait, and no ingestion state is ever created or consumed.
    """
    senders, nblocks, block, seed = case
    config = TempiConfig(nic="inject_only")
    with recorded_landings() as pairs:
        observations, payloads, world = _run_incast(config, senders, nblocks, block, seed)
    assert len(pairs) == senders
    for available_at, landing in pairs:
        assert landing == available_at, (
            "inject_only must land receives at the sender-computed arrival"
        )
    for before, hint, after in observations:
        assert hint is not None
        assert after >= max(before, hint)  # landing plus the unpack charge
    assert world.nic.ingests == 0
    assert world.nic.ingest_stalls == 0
    for rank in range(senders + 1):
        assert world.nic.ingest_free_at(rank) == 0.0

    # Byte identity: the duplex run delivers exactly the same payloads.
    _, duplex_payloads, _ = _run_incast(TempiConfig(), senders, nblocks, block, seed)
    for expected, actual in zip(payloads, duplex_payloads):
        assert np.array_equal(expected, actual)


@settings(max_examples=15, deadline=None)
@given(incast_cases())
def test_duplex_only_ever_delays(case):
    """Landings under duplex are >= the inject-only books, message for
    message — and exactly equal for a single sender (no incast, no skew)."""
    senders, nblocks, block, seed = case
    inject, _, _ = _run_incast(TempiConfig(nic="inject_only"), senders, nblocks, block, seed)
    duplex, _, world = _run_incast(TempiConfig(), senders, nblocks, block, seed)
    for (_, _, inject_after), (_, _, duplex_after) in zip(inject, duplex):
        assert duplex_after >= inject_after - 1e-15
    if senders == 1:
        assert [o[2] for o in duplex] == [o[2] for o in inject]
        assert world.nic.ingest_stalls == 0


@settings(max_examples=6, deadline=None)
@given(
    case=incast_cases(),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_duplex_arrivals_independent_of_issue_interleaving(case, order_seed):
    """The determinism pin: adversarial wall-clock jitter on the senders —
    permuting the real-time order their posts hit the shared timeline —
    must not move a single virtual landing."""
    senders, nblocks, block, seed = case
    rng = np.random.default_rng(order_seed)
    jitters = [
        None,
        {rank: float(rng.integers(0, 4)) for rank in range(1, senders + 1)},
    ]
    reference = None
    for jitter in jitters:
        observations, payloads, _ = _run_incast(
            TempiConfig(), senders, nblocks, block, seed, jitter=jitter
        )
        landings = [after for _, _, after in observations]
        blob = [payload.tobytes() for payload in payloads]
        if reference is None:
            reference = (landings, blob)
        else:
            assert landings == reference[0], (
                "virtual landings moved under wall-clock jitter"
            )
            assert blob == reference[1]
