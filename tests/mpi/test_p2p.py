"""Tests for the message router and requests."""

import numpy as np
import pytest

from repro.gpu.clock import VirtualClock
from repro.mpi.errors import MpiCommError, MpiError
from repro.mpi.p2p import Envelope, MessageRouter
from repro.mpi.request import Request, null_request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status


def envelope(source=0, dest=1, tag=0, context=0, nbytes=8, available_at=0.0):
    return Envelope(
        source=source,
        dest=dest,
        tag=tag,
        context=context,
        payload=np.zeros(nbytes, dtype=np.uint8),
        available_at=available_at,
        device=False,
    )


class TestRouterMatching:
    def test_post_then_receive(self):
        router = MessageRouter(2)
        router.post(envelope(tag=7))
        received = router.receive(1, 0, 7, 0)
        assert received.tag == 7
        assert received.nbytes == 8

    def test_wildcard_source_and_tag(self):
        router = MessageRouter(2)
        router.post(envelope(source=0, tag=3))
        received = router.receive(1, ANY_SOURCE, ANY_TAG, 0)
        assert received.source == 0

    def test_tag_mismatch_not_matched(self):
        router = MessageRouter(2)
        router.post(envelope(tag=3))
        assert router.probe(1, 0, 4, 0) is None
        assert router.probe(1, 0, 3, 0) is not None

    def test_context_isolation(self):
        router = MessageRouter(2)
        router.post(envelope(context=1))
        assert router.probe(1, ANY_SOURCE, ANY_TAG, 0) is None
        assert router.probe(1, ANY_SOURCE, ANY_TAG, 1) is not None

    def test_fifo_order_per_source(self):
        router = MessageRouter(2)
        first = envelope(tag=1, nbytes=1)
        second = envelope(tag=1, nbytes=2)
        router.post(first)
        router.post(second)
        assert router.receive(1, 0, 1, 0).nbytes == 1
        assert router.receive(1, 0, 1, 0).nbytes == 2

    def test_pending_count(self):
        router = MessageRouter(2)
        router.post(envelope())
        router.post(envelope())
        assert router.pending(1) == 2
        assert router.pending(0) == 0

    def test_receive_timeout(self):
        router = MessageRouter(2)
        with pytest.raises(MpiCommError):
            router.receive(1, 0, 0, 0, timeout=0.05)

    def test_invalid_destination_rejected(self):
        router = MessageRouter(2)
        with pytest.raises(MpiCommError):
            router.post(envelope(dest=5))

    def test_invalid_receiver_rejected(self):
        router = MessageRouter(2)
        with pytest.raises(MpiCommError):
            router.receive(9, 0, 0, 0)

    def test_shutdown_wakes_receivers(self):
        router = MessageRouter(2)
        router.shutdown()
        with pytest.raises(MpiCommError):
            router.receive(1, 0, 0, 0, timeout=1.0)
        with pytest.raises(MpiCommError):
            router.post(envelope())

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            MessageRouter(0)


class TestRequests:
    def test_send_request_waits_to_completion_time(self):
        clock = VirtualClock()
        request = Request("send", completion_time=5e-6, clock=clock)
        request.Wait()
        assert clock.now == pytest.approx(5e-6)

    def test_send_request_test_completes_after_time(self):
        clock = VirtualClock()
        request = Request("send", completion_time=5e-6, clock=clock)
        done, _ = request.Test()
        assert not done
        clock.advance(5e-6)
        done, _ = request.Test()
        assert done

    def test_recv_request_defers_completion_callback(self):
        calls = []

        def complete():
            calls.append(1)
            return Status(source=3, tag=9, count_bytes=4)

        request = Request("recv", complete=complete)
        assert not calls
        status = request.Wait()
        assert calls == [1]
        assert status.Get_source() == 3
        assert status.Get_tag() == 9

    def test_wait_is_idempotent(self):
        calls = []
        request = Request("recv", complete=lambda: calls.append(1) or Status())
        request.Wait()
        request.Wait()
        assert len(calls) == 1

    def test_waitall(self):
        statuses = Request.Waitall([null_request(), null_request()])
        assert len(statuses) == 2

    def test_waitany_returns_first_incomplete(self):
        first = null_request()
        second = Request("recv", complete=lambda: Status(tag=5))
        index, status = Request.Waitany([first, second])
        assert index == 1
        assert status.Get_tag() == 5

    def test_waitany_empty_rejected(self):
        with pytest.raises(MpiError):
            Request.Waitany([])

    def test_unknown_kind_rejected(self):
        with pytest.raises(MpiError):
            Request("bogus")

    def test_null_request_is_complete(self):
        assert null_request().completed


class TestStatus:
    def test_get_count_in_elements(self):
        from repro.mpi.datatype import DOUBLE

        status = Status(count_bytes=32)
        assert status.Get_count() == 32
        assert status.Get_count(DOUBLE) == 4

    def test_defaults_are_wildcards(self):
        status = Status()
        assert status.Get_source() == ANY_SOURCE
        assert status.Get_tag() == ANY_TAG
