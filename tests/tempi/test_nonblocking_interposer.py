"""Tests for the interposer's nonblocking surface (Isend/Irecv/Ialltoallv).

Every accelerated nonblocking call compiles to the same ``MessagePlan`` the
blocking call uses; these tests pin byte equivalence, the deferred-unpack
accounting, fallbacks, and the overlap win at the application level.
"""

import numpy as np
import pytest

from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange
from repro.mpi.constructors import Type_contiguous, Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.request import Request
from repro.mpi.world import World
from repro.tempi.config import PackMethod, TempiConfig
from repro.tempi.interposer import InterposerStats, interpose

SMALL = HaloSpec(nx=6, ny=6, nz=6, radius=2, fields=2, bytes_per_field=4)


def vector_type(comm, nblocks=64, block=8, pitch=64):
    return comm.Type_commit(Type_vector(nblocks, block, pitch, BYTE))


class TestIsendIrecv:
    def _roundtrip(self, summit_model, *, nonblocking):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                buf.data[:] = np.arange(buf.nbytes, dtype=np.uint32).astype(np.uint8)
                if nonblocking:
                    comm.Isend((buf, 1, t), dest=1).Wait()
                else:
                    comm.Send((buf, 1, t), dest=1)
                return buf.data.copy(), comm.stats.sends, comm.stats.deferred_unpacks
            if nonblocking:
                request = comm.Irecv((buf, 1, t), source=0)
                status = request.Wait()
            else:
                status = comm.Recv((buf, 1, t), source=0)
            assert status.Get_source() == 0
            return buf.data.copy(), comm.stats.recvs, comm.stats.deferred_unpacks

        return World(2, ranks_per_node=1).run(program)

    def test_nonblocking_equals_blocking_bytes(self, summit_model):
        (sent_b, _, _), (recv_b, _, _) = self._roundtrip(summit_model, nonblocking=False)
        (sent_n, _, _), (recv_n, _, _) = self._roundtrip(summit_model, nonblocking=True)
        assert np.array_equal(sent_b, sent_n)
        assert np.array_equal(recv_b, recv_n)

    def test_counters_and_deferred_unpack(self, summit_model):
        (_, sends, _), (_, recvs, deferred) = self._roundtrip(summit_model, nonblocking=True)
        assert sends == 1
        assert recvs == 1
        assert deferred == 1  # the Irecv unpack ran at Wait

    def test_isend_completes_before_wire_time(self, summit_model):
        """Isend returns a buffer-reuse completion, not wire completion."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm, nblocks=2048, block=8, pitch=512)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                start = ctx.clock.now
                comm.Send((buf, 1, t), dest=1, tag=0)
                blocking = ctx.clock.now - start
                start = ctx.clock.now
                comm.Isend((buf, 1, t), dest=1, tag=1).Wait()
                nonblocking = ctx.clock.now - start
                assert nonblocking < blocking
                return True
            comm.Recv((buf, 1, t), source=0, tag=0)
            comm.Recv((buf, 1, t), source=0, tag=1)
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_irecv_test_completes_when_message_arrives(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            buf = ctx.gpu.malloc(t.extent)
            if ctx.rank == 0:
                comm.Send((buf, 1, t), dest=1)
                comm.Barrier()
                return True
            request = comm.Irecv((buf, 1, t), source=0)
            comm.Barrier()  # after the barrier the message must have been posted
            done, status = request.Test()
            assert done and status is not None
            return True

        assert all(World(2, ranks_per_node=1).run(program))

    def test_contiguous_type_falls_back_to_system_requests(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = comm.Type_commit(Type_contiguous(256, BYTE))
            buf = ctx.gpu.malloc(256)
            if ctx.rank == 0:
                buf.data[:] = 9
                comm.Isend((buf, 1, t), dest=1).Wait()
            else:
                comm.Irecv((buf, 1, t), source=0).Wait()
                assert (buf.data == 9).all()
            return comm.stats.sends + comm.stats.recvs

        assert World(2, ranks_per_node=1).run(program) == [0, 0]


class TestIalltoallvInterposed:
    def _typed(self, ctx, comm, *, nonblocking, device=True):
        datatype = vector_type(comm)
        size = comm.Get_size()
        alloc = ctx.gpu.malloc if device else (lambda n: np.zeros(n, dtype=np.uint8))
        send = alloc(datatype.extent * size)
        recv = alloc(datatype.extent * size)
        (send.data if device else send)[:] = (ctx.rank + 1) % 251
        counts = [1] * size
        displs = [peer * datatype.extent for peer in range(size)]
        if nonblocking:
            comm.Ialltoallv(
                send, counts, displs, recv, counts, displs,
                sendtypes=datatype, recvtypes=datatype,
            ).Wait()
        else:
            comm.Alltoallv(
                send, counts, displs, recv, counts, displs,
                sendtypes=datatype, recvtypes=datatype,
            )
        return (recv.data if device else recv).copy()

    def test_nonblocking_equals_blocking(self, summit_model):
        def program(ctx, nonblocking):
            comm = interpose(ctx, model=summit_model)
            return self._typed(ctx, comm, nonblocking=nonblocking)

        blocking = World(4, ranks_per_node=2).run(program, False)
        deferred = World(4, ranks_per_node=2).run(program, True)
        for a, b in zip(blocking, deferred):
            assert np.array_equal(a, b)

    def test_hit_and_deferred_unpack_counters(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            self._typed(ctx, comm, nonblocking=True)
            return (
                comm.stats.collective_hits,
                comm.stats.deferred_unpacks,
                comm.stats.plans_built,
            )

        for hits, deferred, plans in World(4, ranks_per_node=2).run(program):
            assert hits == 1
            assert deferred == 3  # one deferred unpack per wire peer
            assert plans == 1

    def test_host_buffers_fall_back_but_stay_correct(self, summit_model):
        def program(ctx, nonblocking):
            comm = interpose(ctx, model=summit_model)
            recv = self._typed(ctx, comm, nonblocking=nonblocking, device=False)
            return recv, comm.stats.collective_fallbacks

        blocking = World(2, ranks_per_node=2).run(program, False)
        deferred = World(2, ranks_per_node=2).run(program, True)
        for (a, fb_a), (b, fb_b) in zip(blocking, deferred):
            assert np.array_equal(a, b)
            assert fb_a == 1 and fb_b == 1

    def test_overlapping_two_collectives(self, summit_model):
        """Two Ialltoallv in flight complete in either Wait order."""

        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            t = vector_type(comm)
            size = comm.Get_size()
            send = ctx.gpu.malloc(t.extent * size)
            recv_a = ctx.gpu.malloc(t.extent * size)
            recv_b = ctx.gpu.malloc(t.extent * size)
            send.data[:] = (ctx.rank + 1) % 251
            counts = [1] * size
            displs = [p * t.extent for p in range(size)]
            first = comm.Ialltoallv(
                send, counts, displs, recv_a, counts, displs, sendtypes=t, recvtypes=t
            )
            second = comm.Ialltoallv(
                send, counts, displs, recv_b, counts, displs, sendtypes=t, recvtypes=t
            )
            Request.Waitall([second, first])
            assert np.array_equal(recv_a.data, recv_b.data)
            return True

        assert all(World(2, ranks_per_node=1).run(program))


class TestHaloOverlapMode:
    def test_overlap_mode_verifies_under_both_comms(self, summit_model):
        def program(ctx, use_tempi):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            app = HaloExchange(ctx, comm, SMALL, mode="overlap")
            app.run(iterations=2, verify=True)
            return True

        assert all(World(4, ranks_per_node=2).run(program, False))
        assert all(World(4, ranks_per_node=2).run(program, True))

    def test_overlap_mode_matches_other_modes_ghosts(self, summit_model):
        def program(ctx, mode):
            comm = interpose(ctx, model=summit_model)
            app = HaloExchange(ctx, comm, SMALL, mode=mode)
            app.fill_interior()
            app.exchange()
            return app.local.data.copy()

        neighbor = World(4, ranks_per_node=2).run(program, "neighbor")
        overlap = World(4, ranks_per_node=2).run(program, "overlap")
        for a, b in zip(neighbor, overlap):
            assert np.array_equal(a, b)

    def test_overlapped_engine_beats_serial_engine(self, summit_model):
        """The acceptance claim at unit scale: same app, same plans, the
        overlapped schedule wins on a multi-peer halo exchange."""

        def program(ctx, overlap):
            config = TempiConfig(overlap=overlap)
            comm = interpose(ctx, config, model=summit_model)
            app = HaloExchange(ctx, comm, SMALL, mode="neighbor")
            timings = app.run(iterations=2)
            return timings[-1].total_s

        serial = max(World(8, ranks_per_node=4).run(program, False))
        overlapped = max(World(8, ranks_per_node=4).run(program, True))
        assert overlapped < serial


class TestStatsRepr:
    def test_counters_and_repr_surface_plan_state(self, summit_model):
        def program(ctx):
            comm = interpose(ctx, model=summit_model)
            self_stats = comm.stats
            t = vector_type(comm)
            size = comm.Get_size()
            send = ctx.gpu.malloc(t.extent * size)
            recv = ctx.gpu.malloc(t.extent * size)
            counts = [1] * size
            displs = [p * t.extent for p in range(size)]
            comm.Ialltoallv(
                send, counts, displs, recv, counts, displs, sendtypes=t, recvtypes=t
            ).Wait()
            return repr(self_stats), self_stats

        for text, stats in World(2, ranks_per_node=1).run(program):
            assert stats.plans_built == 1
            assert stats.stages_overlapped >= 2  # 1 pack + 1 unpack overlapped
            assert stats.deferred_unpacks == 1
            assert "plans=1" in text
            assert "deferred_unpacks=1" in text
            assert f"overlapped={stats.stages_overlapped}" in text

    def test_repr_of_fresh_stats(self):
        text = repr(InterposerStats())
        assert text.startswith("InterposerStats(")
        assert "plans=0" in text and "methods=[]" in text


@pytest.mark.parametrize("method", [PackMethod.DEVICE, PackMethod.ONESHOT, PackMethod.STAGED])
def test_forced_methods_work_nonblocking(summit_model, method):
    config = TempiConfig(method=method)

    def program(ctx):
        comm = interpose(ctx, config, model=summit_model)
        t = vector_type(comm, nblocks=32, block=16, pitch=64)
        buf = ctx.gpu.malloc(t.extent)
        if ctx.rank == 0:
            buf.data[:] = np.arange(buf.nbytes, dtype=np.uint16).astype(np.uint8)
            comm.Isend((buf, 1, t), dest=1).Wait()
            return buf.data.copy()
        comm.Irecv((buf, 1, t), source=0).Wait()
        return buf.data.copy()

    sent, received = World(2, ranks_per_node=1).run(program)
    for i in range(32):
        begin = i * 64
        assert np.array_equal(received[begin : begin + 16], sent[begin : begin + 16])
