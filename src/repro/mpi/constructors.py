"""Derived-datatype constructors.

These are the constructors the paper exercises (Sec. 2): ``contiguous``,
``vector``, ``hvector`` and ``subarray`` compose to describe the strided 3-D
objects of stencil codes, while ``indexed`` / ``hindexed`` / ``struct`` are
provided because real applications (and the paper's future-work section) use
them — TEMPI falls back to the generic block-list path for those.

Conventions
-----------
* ``Type_vector`` strides are in multiples of the old type's *extent*;
  ``Type_create_hvector`` and the displacement-taking constructors use bytes.
* ``Type_create_subarray`` follows the MPI standard: with ``ORDER_C`` the
  *last* listed dimension varies fastest; with ``ORDER_FORTRAN`` the first
  does.  (The paper's prose lists dimensions fastest-first; the workload
  definitions in :mod:`repro.bench.workloads` translate accordingly.)
* Only positive strides and non-negative displacements are supported, which
  covers every datatype in the evaluation.
"""

from __future__ import annotations

from functools import reduce
from operator import mul
from typing import Iterator, Sequence

from repro.mpi.datatype import (
    Combiner,
    Datatype,
    ORDER_C,
    ORDER_FORTRAN,
    check_datatype,
    check_order,
    check_positive_count,
    sequence_of_ints,
)
from repro.mpi.errors import MpiTypeError


def _product(values: Sequence[int]) -> int:
    return reduce(mul, values, 1)


class DerivedDatatype(Datatype):
    """Shared machinery: the type map of a derived type is the concatenation
    of its children's type maps at their placement offsets."""

    def layout(self) -> Iterator[tuple[int, int]]:
        for offset, child in self.child_layout():
            for child_offset, length in child.layout():
                yield (offset + child_offset, length)


class ContiguousDatatype(DerivedDatatype):
    """``count`` repetitions of ``oldtype`` at successive extents."""

    def __init__(self, count: int, oldtype: Datatype) -> None:
        self.count = check_positive_count(count)
        self.oldtype = check_datatype(oldtype)
        super().__init__(
            size=self.count * oldtype.size,
            extent=self.count * oldtype.extent,
            combiner=Combiner.CONTIGUOUS,
            children=(oldtype,),
        )

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        for i in range(self.count):
            yield (i * self.oldtype.extent, self.oldtype)

    def block_count(self) -> int:
        if self.oldtype.is_contiguous_bytes:
            return 1
        return self.count * self.oldtype.block_count()

    def _dense(self) -> bool:
        return self.oldtype.is_contiguous_bytes

    def _envelope(self) -> dict:
        return {"count": self.count, "oldtype": self.oldtype}


class VectorDatatype(DerivedDatatype):
    """``count`` blocks of ``blocklength`` oldtypes, ``stride`` oldtype-extents apart."""

    def __init__(self, count: int, blocklength: int, stride: int, oldtype: Datatype) -> None:
        self.count = check_positive_count(count)
        self.blocklength = check_positive_count(blocklength, "blocklength")
        if stride <= 0:
            raise MpiTypeError(f"only positive vector strides are supported, got {stride}")
        if self.count > 1 and stride < blocklength:
            raise MpiTypeError(
                f"vector stride {stride} smaller than blocklength {blocklength} would overlap"
            )
        self.stride = int(stride)
        self.oldtype = check_datatype(oldtype)
        extent = ((self.count - 1) * self.stride + self.blocklength) * oldtype.extent
        super().__init__(
            size=self.count * self.blocklength * oldtype.size,
            extent=extent,
            combiner=Combiner.VECTOR,
            children=(oldtype,),
        )

    @property
    def stride_bytes(self) -> int:
        """Stride between block starts, in bytes."""
        return self.stride * self.oldtype.extent

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        for i in range(self.count):
            base = i * self.stride_bytes
            for j in range(self.blocklength):
                yield (base + j * self.oldtype.extent, self.oldtype)

    def block_count(self) -> int:
        if self.oldtype.is_contiguous_bytes:
            return 1 if self.stride == self.blocklength else self.count
        return self.count * self.blocklength * self.oldtype.block_count()

    def _dense(self) -> bool:
        return self.oldtype.is_contiguous_bytes and self.stride == self.blocklength

    def _envelope(self) -> dict:
        return {
            "count": self.count,
            "blocklength": self.blocklength,
            "stride": self.stride,
            "oldtype": self.oldtype,
        }


class HvectorDatatype(DerivedDatatype):
    """Like :class:`VectorDatatype` but the stride is given in bytes."""

    def __init__(self, count: int, blocklength: int, stride_bytes: int, oldtype: Datatype) -> None:
        self.count = check_positive_count(count)
        self.blocklength = check_positive_count(blocklength, "blocklength")
        self.oldtype = check_datatype(oldtype)
        if stride_bytes <= 0:
            raise MpiTypeError(f"only positive hvector strides are supported, got {stride_bytes}")
        if self.count > 1 and stride_bytes < blocklength * oldtype.extent:
            raise MpiTypeError(
                f"hvector stride {stride_bytes} B smaller than one block "
                f"({blocklength * oldtype.extent} B) would overlap"
            )
        self.stride_bytes = int(stride_bytes)
        extent = (self.count - 1) * self.stride_bytes + self.blocklength * oldtype.extent
        super().__init__(
            size=self.count * self.blocklength * oldtype.size,
            extent=extent,
            combiner=Combiner.HVECTOR,
            children=(oldtype,),
        )

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        for i in range(self.count):
            base = i * self.stride_bytes
            for j in range(self.blocklength):
                yield (base + j * self.oldtype.extent, self.oldtype)

    def block_count(self) -> int:
        if self.oldtype.is_contiguous_bytes:
            one_block = self.blocklength * self.oldtype.extent
            return 1 if self.stride_bytes == one_block else self.count
        return self.count * self.blocklength * self.oldtype.block_count()

    def _dense(self) -> bool:
        return (
            self.oldtype.is_contiguous_bytes
            and self.stride_bytes == self.blocklength * self.oldtype.extent
        )

    def _envelope(self) -> dict:
        return {
            "count": self.count,
            "blocklength": self.blocklength,
            "stride_bytes": self.stride_bytes,
            "oldtype": self.oldtype,
        }


class SubarrayDatatype(DerivedDatatype):
    """An n-dimensional subarray of an n-dimensional array of ``oldtype``."""

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: int,
        oldtype: Datatype,
    ) -> None:
        self.sizes = sequence_of_ints(sizes, "sizes")
        self.subsizes = sequence_of_ints(subsizes, "subsizes")
        self.starts = sequence_of_ints(starts, "starts")
        self.order = check_order(order)
        self.oldtype = check_datatype(oldtype)
        ndims = len(self.sizes)
        if ndims == 0:
            raise MpiTypeError("subarray needs at least one dimension")
        if len(self.subsizes) != ndims or len(self.starts) != ndims:
            raise MpiTypeError("sizes, subsizes and starts must have the same length")
        for d in range(ndims):
            if self.sizes[d] <= 0 or self.subsizes[d] <= 0:
                raise MpiTypeError(f"sizes/subsizes must be positive in dimension {d}")
            if self.starts[d] < 0 or self.starts[d] + self.subsizes[d] > self.sizes[d]:
                raise MpiTypeError(
                    f"subarray dimension {d}: start {self.starts[d]} + subsize "
                    f"{self.subsizes[d]} exceeds size {self.sizes[d]}"
                )
        self.ndims = ndims
        super().__init__(
            size=_product(self.subsizes) * oldtype.size,
            extent=_product(self.sizes) * oldtype.extent,
            combiner=Combiner.SUBARRAY,
            children=(oldtype,),
        )

    # Dimension bookkeeping: ``fastest_first`` lists dimension indices from the
    # fastest-varying to the slowest-varying one, per the storage order.
    @property
    def fastest_first(self) -> tuple[int, ...]:
        dims = range(self.ndims)
        return tuple(reversed(dims)) if self.order == ORDER_C else tuple(dims)

    def dimension_stride_elements(self, dim: int) -> int:
        """Elements of ``oldtype`` between successive indices of ``dim``."""
        stride = 1
        for other in self.fastest_first:
            if other == dim:
                break
            stride *= self.sizes[other]
        return stride

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        old_extent = self.oldtype.extent
        order = list(reversed(self.fastest_first))  # slowest first for iteration

        def recurse(level: int, element_offset: int) -> Iterator[tuple[int, Datatype]]:
            if level == len(order):
                yield (element_offset * old_extent, self.oldtype)
                return
            dim = order[level]
            stride = self.dimension_stride_elements(dim)
            for idx in range(self.subsizes[dim]):
                offset = element_offset + (self.starts[dim] + idx) * stride
                yield from recurse(level + 1, offset)

        yield from recurse(0, 0)

    def block_count(self) -> int:
        if not self.oldtype.is_contiguous_bytes:
            return _product(self.subsizes) * self.oldtype.block_count()
        # Count maximal contiguous runs: fastest dimensions that are fully
        # covered merge into the next slower dimension's run.
        remaining = list(self.fastest_first)
        while remaining:
            dim = remaining[0]
            if self.subsizes[dim] == self.sizes[dim] and self.starts[dim] == 0:
                remaining.pop(0)
            else:
                break
        if not remaining:
            return 1
        # The first remaining dimension contributes one run per index of the
        # *slower* dimensions only (its own subsize lies within each run).
        slower = remaining[1:]
        return _product([self.subsizes[d] for d in slower]) if slower else 1

    def _dense(self) -> bool:
        return (
            self.oldtype.is_contiguous_bytes
            and all(
                self.subsizes[d] == self.sizes[d] and self.starts[d] == 0
                for d in range(self.ndims)
            )
        )

    def _envelope(self) -> dict:
        return {
            "sizes": self.sizes,
            "subsizes": self.subsizes,
            "starts": self.starts,
            "order": self.order,
            "oldtype": self.oldtype,
        }


class IndexedDatatype(DerivedDatatype):
    """Blocks of varying lengths at displacements given in oldtype extents."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        oldtype: Datatype,
        *,
        displacements_in_bytes: bool = False,
    ) -> None:
        self.blocklengths = sequence_of_ints(blocklengths, "blocklengths")
        self.displacements = sequence_of_ints(displacements, "displacements")
        if len(self.blocklengths) != len(self.displacements):
            raise MpiTypeError("blocklengths and displacements must have the same length")
        if not self.blocklengths:
            raise MpiTypeError("indexed type needs at least one block")
        if any(b <= 0 for b in self.blocklengths):
            raise MpiTypeError("blocklengths must be positive")
        if any(d < 0 for d in self.displacements):
            raise MpiTypeError("only non-negative displacements are supported")
        self.oldtype = check_datatype(oldtype)
        self.displacements_in_bytes = displacements_in_bytes
        unit = 1 if displacements_in_bytes else oldtype.extent
        byte_displacements = [d * unit for d in self.displacements]
        ub = max(
            d + b * oldtype.extent for d, b in zip(byte_displacements, self.blocklengths)
        )
        lb = min(byte_displacements)
        combiner = Combiner.HINDEXED if displacements_in_bytes else Combiner.INDEXED
        super().__init__(
            size=sum(self.blocklengths) * oldtype.size,
            extent=ub - lb,
            combiner=combiner,
            children=(oldtype,),
            lb=lb,
        )
        self._byte_displacements = byte_displacements

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        for displacement, blocklength in zip(self._byte_displacements, self.blocklengths):
            for j in range(blocklength):
                yield (displacement + j * self.oldtype.extent, self.oldtype)

    def block_count(self) -> int:
        if self.oldtype.is_contiguous_bytes:
            return len(self.blocklengths)
        return sum(self.blocklengths) * self.oldtype.block_count()

    def _envelope(self) -> dict:
        return {
            "blocklengths": self.blocklengths,
            "displacements": self.displacements,
            "in_bytes": self.displacements_in_bytes,
            "oldtype": self.oldtype,
        }


class StructDatatype(DerivedDatatype):
    """The general constructor: per-block types and byte displacements."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        datatypes: Sequence[Datatype],
    ) -> None:
        self.blocklengths = sequence_of_ints(blocklengths, "blocklengths")
        self.displacements = sequence_of_ints(displacements, "displacements")
        if not (len(self.blocklengths) == len(self.displacements) == len(datatypes)):
            raise MpiTypeError("struct arguments must have equal lengths")
        if not self.blocklengths:
            raise MpiTypeError("struct type needs at least one block")
        if any(b <= 0 for b in self.blocklengths):
            raise MpiTypeError("blocklengths must be positive")
        if any(d < 0 for d in self.displacements):
            raise MpiTypeError("only non-negative displacements are supported")
        self.datatypes = tuple(check_datatype(t) for t in datatypes)
        ub = max(
            d + b * t.extent
            for d, b, t in zip(self.displacements, self.blocklengths, self.datatypes)
        )
        lb = min(self.displacements)
        super().__init__(
            size=sum(b * t.size for b, t in zip(self.blocklengths, self.datatypes)),
            extent=ub - lb,
            combiner=Combiner.STRUCT,
            children=self.datatypes,
            lb=lb,
        )

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        for displacement, blocklength, datatype in zip(
            self.displacements, self.blocklengths, self.datatypes
        ):
            for j in range(blocklength):
                yield (displacement + j * datatype.extent, datatype)

    def block_count(self) -> int:
        total = 0
        for blocklength, datatype in zip(self.blocklengths, self.datatypes):
            if datatype.is_contiguous_bytes:
                total += 1
            else:
                total += blocklength * datatype.block_count()
        return total

    def _envelope(self) -> dict:
        return {
            "blocklengths": self.blocklengths,
            "displacements": self.displacements,
            "datatypes": self.datatypes,
        }


class ResizedDatatype(DerivedDatatype):
    """A datatype with its lower bound and extent overridden.

    ``MPI_Type_create_resized`` does not change which bytes a single element
    describes — only how far apart consecutive elements are placed, which is
    what lets e.g. a strided plane type be tiled at the allocation's plane
    pitch inside an enclosing subarray.
    """

    def __init__(self, oldtype: Datatype, lb: int, extent: int) -> None:
        self.oldtype = check_datatype(oldtype)
        if extent <= 0:
            raise MpiTypeError(f"resized extent must be positive, got {extent}")
        if lb < 0:
            raise MpiTypeError("only non-negative lower bounds are supported")
        super().__init__(
            size=oldtype.size,
            extent=extent,
            combiner=Combiner.RESIZED,
            children=(oldtype,),
            lb=lb,
        )

    def child_layout(self) -> Iterator[tuple[int, Datatype]]:
        yield (0, self.oldtype)

    def block_count(self) -> int:
        return self.oldtype.block_count()

    def _dense(self) -> bool:
        return self.oldtype.is_contiguous_bytes and self.extent == self.oldtype.extent

    def _envelope(self) -> dict:
        return {"lb": self.lb, "extent": self.extent, "oldtype": self.oldtype}


# --------------------------------------------------------------------------- #
# MPI-style constructor functions
# --------------------------------------------------------------------------- #

def Type_contiguous(count: int, oldtype: Datatype) -> ContiguousDatatype:
    """``MPI_Type_contiguous``: ``count`` contiguous repetitions of ``oldtype``."""
    return ContiguousDatatype(count, oldtype)


def Type_vector(count: int, blocklength: int, stride: int, oldtype: Datatype) -> VectorDatatype:
    """``MPI_Type_vector``: equally spaced blocks; stride in oldtype extents."""
    return VectorDatatype(count, blocklength, stride, oldtype)


def Type_create_hvector(
    count: int, blocklength: int, stride_bytes: int, oldtype: Datatype
) -> HvectorDatatype:
    """``MPI_Type_create_hvector``: like vector, stride in bytes."""
    return HvectorDatatype(count, blocklength, stride_bytes, oldtype)


def Type_create_subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    order: int,
    oldtype: Datatype,
) -> SubarrayDatatype:
    """``MPI_Type_create_subarray``: an n-D subarray of an n-D array."""
    return SubarrayDatatype(sizes, subsizes, starts, order, oldtype)


def Type_indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], oldtype: Datatype
) -> IndexedDatatype:
    """``MPI_Type_indexed``: blocks at displacements in oldtype extents."""
    return IndexedDatatype(blocklengths, displacements, oldtype)


def Type_create_hindexed(
    blocklengths: Sequence[int], displacements: Sequence[int], oldtype: Datatype
) -> IndexedDatatype:
    """``MPI_Type_create_hindexed``: blocks at byte displacements."""
    return IndexedDatatype(blocklengths, displacements, oldtype, displacements_in_bytes=True)


def Type_create_struct(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    datatypes: Sequence[Datatype],
) -> StructDatatype:
    """``MPI_Type_create_struct``: the fully general constructor."""
    return StructDatatype(blocklengths, displacements, datatypes)


def Type_create_resized(oldtype: Datatype, lb: int, extent: int) -> ResizedDatatype:
    """``MPI_Type_create_resized``: override a type's lower bound and extent."""
    return ResizedDatatype(oldtype, lb, extent)
