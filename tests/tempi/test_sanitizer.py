"""Tests for the runtime clock sanitizer (``tempi/sanitizer.py``).

The headline case reconstructs the PR-5 bug class deterministically: one
rank reads another rank's posted ingestion backlog with no happens-before
edge, and the sanitizer names the racing post and the racing read.  The
clean cases pin down every edge that *does* discharge the obligation
(barrier join, message-chain join, own posts, future posts), plus the
pricing-purity guard, cursor monotonicity, and reset semantics.
"""

from __future__ import annotations

import pytest

from repro.machine.nic import NicReservation, NicTimeline
from repro.mpi.world import World
from repro.tempi.config import TempiConfig, sanitize_default
from repro.tempi.interposer import interpose
from repro.tempi.sanitizer import (
    ClockSanitizer,
    SanitizedNic,
    SanitizerError,
    attach_sanitizer,
    sanitized_view,
)
from repro.tempi.selection import ContendedSelector

from tests.tempi.test_selection import packer_for

KIB = 1024
WIRE_S = 1e-4


def views(timeline: NicTimeline, *ranks: int) -> list[SanitizedNic]:
    return [sanitized_view(timeline, rank) for rank in ranks]


class TestHappensBeforeAudit:
    def test_unsynchronised_cross_rank_read_races(self):
        """The PR-5 bug class, reconstructed: post on rank 0, read on rank 1."""
        timeline = NicTimeline()
        poster, reader = views(timeline, 0, 1)
        poster.reserve(0, 2, 0.0, WIRE_S, KIB)
        with pytest.raises(SanitizerError) as excinfo:
            reader.ingest_backlog(2, now=1.0)
        first, second = excinfo.value.events
        assert first.kind == "post" and first.rank == 0
        assert second.kind == "backlog-read" and second.rank == 1
        # Both racing events are named in the message itself.
        message = str(excinfo.value)
        assert "happens-before" in message
        assert str(first) in message and str(second) in message

    def test_barrier_establishes_the_edge(self):
        timeline = NicTimeline()
        poster, reader, receiver = views(timeline, 0, 1, 2)
        poster.reserve(0, 2, 0.0, WIRE_S, KIB)
        for view in (poster, reader, receiver):
            view.barrier_enter(3)
        assert reader.ingest_backlog(2, now=WIRE_S / 2) > 0.0

    def test_message_chain_establishes_the_edge(self):
        """A completed receive from the poster carries its clock with it."""
        timeline = NicTimeline()
        poster, reader = views(timeline, 0, 1)
        poster.reserve(0, 2, 0.0, WIRE_S, KIB)  # the racing post...
        to_reader = poster.reserve(0, 1, 0.0, WIRE_S, KIB)  # ...then a message
        assert to_reader.seq == 1
        reader.ingest(1, timeline.pending_records(1))  # reader receives it
        # The join covered the earlier post too (it precedes the message).
        assert reader.ingest_backlog(2, now=WIRE_S / 2) > 0.0

    def test_own_posts_never_race(self):
        timeline = NicTimeline()
        (poster,) = views(timeline, 0)
        poster.reserve(0, 2, 0.0, WIRE_S, KIB)
        assert poster.ingest_backlog(2, now=WIRE_S / 2) > 0.0

    def test_future_posts_are_not_read(self):
        """Records beyond the reader's clock never enter the priced signal."""
        timeline = NicTimeline()
        poster, reader = views(timeline, 0, 1)
        poster.reserve(0, 2, 5.0, WIRE_S, KIB)
        assert reader.ingest_backlog(2, now=1.0) == 0.0

    def test_raw_timeline_posts_are_conservative(self):
        """Posts that bypassed the proxies have no snapshot: read allowed."""
        timeline = NicTimeline()
        timeline.reserve(0, 2, 0.0, WIRE_S, KIB)
        (reader,) = views(timeline, 1)
        assert reader.ingest_backlog(2, now=WIRE_S / 2) > 0.0


class TestPricingGuard:
    def test_pure_read_passes(self):
        timeline = NicTimeline()
        (view,) = views(timeline, 0)
        with view.pricing_guard():
            view.port_free_at(0)
            view.ingest_backlog(1, now=0.0)

    def test_mutation_inside_guard_raises(self):
        timeline = NicTimeline()
        (view,) = views(timeline, 0)
        with pytest.raises(SanitizerError, match="pure read"):
            with view.pricing_guard():
                view.reserve(0, 1, 0.0, WIRE_S, KIB)

    def test_contended_selector_prices_through_the_guard(self, summit_model):
        """The real pricing path runs audited and stays pure under backlog."""
        timeline = NicTimeline()
        poster, selector_view = views(timeline, 0, 1)
        recorder = attach_sanitizer(timeline)
        poster.reserve(0, 3, 0.0, WIRE_S, KIB)
        for view in (poster, selector_view):
            view.barrier_enter(2)
        selector = ContendedSelector(
            summit_model,
            selector_view,
            1,
            config=TempiConfig(selection="contended"),
        )
        before = ClockSanitizer.aggregate_counters()["purity_checks"]
        method = selector(packer_for(8), 64 * KIB, peer=3)
        assert method is not None
        assert ClockSanitizer.aggregate_counters()["purity_checks"] == before + 1
        assert recorder.mutation_count(1) == 0

    def test_contended_selector_race_is_caught_in_pricing(self, summit_model):
        """The PR-5 race through the *real* selector pricing path."""
        timeline = NicTimeline()
        poster, selector_view = views(timeline, 0, 1)
        poster.reserve(0, 3, 0.0, WIRE_S, KIB)
        selector = ContendedSelector(
            summit_model,
            selector_view,
            1,
            config=TempiConfig(selection="contended"),
        )
        with pytest.raises(SanitizerError) as excinfo:
            selector(packer_for(8), 64 * KIB, peer=3)
        kinds = {event.kind for event in excinfo.value.events}
        assert kinds == {"post", "backlog-read"}


class TestMonotonicity:
    def test_injection_cursor_may_not_move_backwards(self):
        timeline = NicTimeline()
        recorder = attach_sanitizer(timeline)
        forward = NicReservation(start=10.0, arrival=10.1, stalled_s=0.0, wire_s=0.1, seq=0)
        backward = NicReservation(start=1.0, arrival=1.1, stalled_s=0.0, wire_s=0.1, seq=1)
        recorder.on_reserve(0, 1, forward, ingest=False)
        with pytest.raises(SanitizerError, match="moved backwards"):
            recorder.on_reserve(0, 1, backward, ingest=False)

    def test_real_timeline_never_trips_it(self):
        timeline = NicTimeline()
        (view,) = views(timeline, 0)
        for i in range(16):
            view.reserve(0, 1 + (i % 3), float(i) * 1e-6, WIRE_S, KIB)


class TestResetSemantics:
    def test_attach_is_idempotent(self):
        timeline = NicTimeline()
        assert attach_sanitizer(timeline) is attach_sanitizer(timeline)

    def test_raw_reset_clears_recorded_history(self):
        """``World.reset_clocks`` resets the raw timeline; history must follow."""
        timeline = NicTimeline()
        (view,) = views(timeline, 0)
        view.reserve(0, 1, 10.0, WIRE_S, KIB)
        timeline.reset()  # the raw reset, as World.reset_clocks issues it
        # Starting over at earlier virtual times is not a phantom violation.
        view.reserve(0, 1, 0.0, WIRE_S, KIB)

    def test_proxy_reset_clears_both(self):
        timeline = NicTimeline()
        (view,) = views(timeline, 0)
        view.reserve(0, 1, 10.0, WIRE_S, KIB)
        view.reset()
        assert timeline.reservations == 0
        view.reserve(0, 1, 0.0, WIRE_S, KIB)


class TestInterposedRuns:
    def test_sanitized_run_is_bit_identical_and_clean(self, summit_model):
        """A sanitized multi-rank exchange: same clocks, no violations."""
        from repro.mpi.constructors import Type_vector
        from repro.mpi.datatype import BYTE

        def run(sanitize: bool) -> list[float]:
            world = World(4)

            def program(ctx):
                comm = interpose(
                    ctx,
                    TempiConfig(selection="contended", sanitize=sanitize),
                    model=summit_model,
                )
                t = comm.Type_commit(Type_vector(64, 8, 512, BYTE))
                sendbuf = ctx.gpu.malloc(t.extent)
                recvbuf = ctx.gpu.malloc(t.extent)
                dest = (ctx.rank + 1) % ctx.size
                src = (ctx.rank - 1) % ctx.size
                for _ in range(3):
                    rs = comm.Isend([sendbuf, 1, t], dest=dest, tag=5)
                    rr = comm.Irecv([recvbuf, 1, t], source=src, tag=5)
                    rs.Wait()
                    rr.Wait()
                comm.Barrier()
                return ctx.clock.now

            return world.run(program)

        ClockSanitizer.reset_aggregate()
        plain = run(False)
        sanitized = run(True)
        assert plain == sanitized
        counters = ClockSanitizer.aggregate_counters()
        assert counters["posts"] > 0
        assert counters["ingests"] > 0
        assert counters["violations"] == 0

    def test_ambient_default_flips_constructed_configs(self):
        assert TempiConfig().sanitize is False
        with sanitize_default(True):
            assert TempiConfig().sanitize is True
            assert TempiConfig(sanitize=False).sanitize is False
        assert TempiConfig().sanitize is False
