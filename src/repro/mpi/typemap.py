"""Type-map flattening.

"In the most general sense, a datatype can be considered as a list of
contiguous blocks, where each has an offset and a size" (Sec. 2).  The
baseline datatype engine and the generic fallback path both work on that
representation; this module produces it from a :class:`~repro.mpi.datatype.Datatype`.

Two forms are provided:

* :func:`flatten` — an iterator of merged ``(offset, length)`` blocks for one
  element of the type;
* :func:`flatten_many` — the same for ``count`` elements placed ``extent``
  bytes apart (the *incount* of ``MPI_Pack`` and friends), with a base offset.

Merging is performed wherever consecutive blocks touch, so the result is the
list of *maximal* contiguous runs — the number of ``cudaMemcpyAsync`` calls
the baseline engine issues, and the quantity whose growth explains the
baseline's collapse in Figs. 8 and 11.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.mpi.datatype import Datatype
from repro.mpi.errors import MpiTypeError


def _raw_blocks(datatype: Datatype, base: int = 0) -> Iterator[tuple[int, int]]:
    """Unmerged type-map blocks of one element, shifted by ``base``."""
    for offset, length in datatype.layout():
        yield (base + offset, length)


def merge_blocks(blocks: Iterable[tuple[int, int]]) -> Iterator[tuple[int, int]]:
    """Merge blocks that touch (``offset + length == next offset``).

    The input must be in type-map order; MPI type maps produced by the
    constructors in this package are monotonically non-decreasing in offset
    for the strided types the paper considers.
    """
    current_offset: int | None = None
    current_length = 0
    for offset, length in blocks:
        if length < 0 or offset < 0:
            raise MpiTypeError("type map blocks must have non-negative offset and length")
        if length == 0:
            continue
        if current_offset is None:
            current_offset, current_length = offset, length
        elif offset == current_offset + current_length:
            current_length += length
        else:
            yield (current_offset, current_length)
            current_offset, current_length = offset, length
    if current_offset is not None:
        yield (current_offset, current_length)


def flatten(datatype: Datatype, base: int = 0) -> Iterator[tuple[int, int]]:
    """Merged ``(offset, length)`` blocks of one element of ``datatype``."""
    return merge_blocks(_raw_blocks(datatype, base))


def flatten_many(
    datatype: Datatype, count: int, base: int = 0
) -> Iterator[tuple[int, int]]:
    """Merged blocks of ``count`` consecutive elements of ``datatype``.

    Successive elements are placed ``datatype.extent`` bytes apart, as MPI
    requires for count arguments.
    """
    if count <= 0:
        raise MpiTypeError(f"count must be positive, got {count}")

    def generate() -> Iterator[tuple[int, int]]:
        for i in range(count):
            yield from _raw_blocks(datatype, base + i * datatype.extent)

    return merge_blocks(generate())


def block_count(datatype: Datatype, count: int = 1) -> int:
    """Number of maximal contiguous blocks in ``count`` elements.

    Uses the datatype's analytic :meth:`~repro.mpi.datatype.Datatype.block_count`
    for one element; consecutive elements only merge when the type is fully
    dense, in which case the answer is 1.
    """
    if count <= 0:
        raise MpiTypeError(f"count must be positive, got {count}")
    per_element = datatype.block_count()
    if datatype.is_contiguous_bytes:
        return 1
    return per_element * count


def packed_size(datatype: Datatype, count: int = 1) -> int:
    """Bytes produced by packing ``count`` elements (``MPI_Pack_size``)."""
    if count <= 0:
        raise MpiTypeError(f"count must be positive, got {count}")
    return datatype.size * count


def block_lengths_histogram(datatype: Datatype) -> dict[int, int]:
    """Histogram of contiguous-block lengths for one element.

    Useful for the performance model, which interpolates over the contiguous
    block length of a datatype (Sec. 6.3).
    """
    histogram: dict[int, int] = {}
    for _, length in flatten(datatype):
        histogram[length] = histogram.get(length, 0) + 1
    return histogram


def dominant_block_length(datatype: Datatype) -> int:
    """The most common contiguous-block length of one element.

    For the strided types TEMPI targets this is simply *the* block length;
    for irregular types it is the mode, which is what the performance model
    keys its 2-D interpolation on.
    """
    histogram = block_lengths_histogram(datatype)
    if not histogram:
        return 0
    best_length = max(histogram.items(), key=lambda item: (item[1], item[0]))
    return best_length[0]


def offsets_and_lengths(datatype: Datatype, count: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Block offsets and lengths as NumPy arrays (for vectorised block copies)."""
    pairs = list(flatten_many(datatype, count))
    if not pairs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    return arr[:, 0], arr[:, 1]
