"""Functional pack/unpack "kernels".

On the GPU, TEMPI's kernels gather the contiguous runs of a strided object
into a contiguous buffer (pack) or scatter a contiguous buffer back into the
strided object (unpack).  Here the same data movement is performed with NumPy
stride tricks: the strided object is exposed as a zero-copy view of the
underlying byte array (``as_strided``), so packing is a single vectorised
copy rather than a Python-level loop — the idiomatic way to express a gather
in NumPy, and fast enough that benchmarks measuring *virtual* time are not
bottlenecked by *wall* time.

The functions below are deliberately free of any timing logic; durations are
charged by :class:`repro.gpu.runtime.CudaRuntime`, which calls them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.gpu.errors import CudaInvalidValue


def required_extent(start: int, counts: Sequence[int], strides: Sequence[int]) -> int:
    """Bytes of the underlying allocation touched by a strided object.

    The object's last byte lives at
    ``start + sum((counts[i] - 1) * strides[i]) + counts[0] * strides[0] - ...``;
    because dimension 0 is the contiguous run (stride 1), the formula below is
    the usual max-offset computation for positive strides.
    """
    if len(counts) != len(strides):
        raise CudaInvalidValue("counts and strides must have the same length")
    if not counts:
        return start
    last = start
    for count, stride in zip(counts, strides):
        if count <= 0:
            raise CudaInvalidValue(f"counts must be positive, got {count}")
        if stride <= 0:
            raise CudaInvalidValue(f"strides must be positive, got {stride}")
        last += (count - 1) * stride
    return last + 1


def packed_size(counts: Sequence[int]) -> int:
    """Number of payload bytes in one strided object (product of counts)."""
    size = 1
    for count in counts:
        size *= int(count)
    return size


def _strided_view(
    memory: np.ndarray,
    start: int,
    counts: Sequence[int],
    strides: Sequence[int],
) -> np.ndarray:
    """A read/write view of ``memory`` shaped as the strided object.

    Dimension order follows the :class:`~repro.tempi.strided_block.StridedBlock`
    convention: index 0 is the innermost (contiguous, stride 1) dimension.
    The returned array has the *outermost* dimension first so ``ravel()``
    produces the packed byte order.
    """
    if memory.dtype != np.uint8 or memory.ndim != 1:
        raise CudaInvalidValue("kernel memory must be a 1-D uint8 array")
    end = required_extent(start, counts, strides)
    if start < 0 or end > memory.nbytes:
        raise CudaInvalidValue(
            f"strided object [{start}, {end}) escapes allocation of {memory.nbytes} bytes"
        )
    shape = tuple(int(c) for c in reversed(counts))
    byte_strides = tuple(int(s) for s in reversed(strides))
    return as_strided(memory[start:], shape=shape, strides=byte_strides, writeable=True)


def pack_strided(
    src: np.ndarray,
    dst: np.ndarray,
    start: int,
    counts: Sequence[int],
    strides: Sequence[int],
    dst_offset: int = 0,
) -> int:
    """Gather one strided object from ``src`` into ``dst[dst_offset:]``.

    Returns the number of bytes written.
    """
    view = _strided_view(src, start, counts, strides)
    size = view.size
    if dst_offset < 0 or dst_offset + size > dst.nbytes:
        raise CudaInvalidValue(
            f"packed object of {size} bytes at offset {dst_offset} escapes "
            f"destination of {dst.nbytes} bytes"
        )
    dst[dst_offset : dst_offset + size] = view.reshape(-1)
    return size


def unpack_strided(
    src: np.ndarray,
    dst: np.ndarray,
    start: int,
    counts: Sequence[int],
    strides: Sequence[int],
    src_offset: int = 0,
) -> int:
    """Scatter ``src[src_offset:]`` into one strided object inside ``dst``.

    Returns the number of bytes read from ``src``.
    """
    view = _strided_view(dst, start, counts, strides)
    size = view.size
    if src_offset < 0 or src_offset + size > src.nbytes:
        raise CudaInvalidValue(
            f"packed object of {size} bytes at offset {src_offset} escapes "
            f"source of {src.nbytes} bytes"
        )
    view[...] = src[src_offset : src_offset + size].reshape(view.shape)
    return size


def pack_strided_many(
    src: np.ndarray,
    dst: np.ndarray,
    start: int,
    counts: Sequence[int],
    strides: Sequence[int],
    count: int,
    object_extent: int,
    dst_offset: int = 0,
) -> int:
    """Pack ``count`` repetitions of a strided object (MPI's *incount* argument).

    Successive objects begin ``object_extent`` bytes apart in ``src`` and are
    packed back to back in ``dst`` — exactly how TEMPI's kernels apply the
    whole grid to each object in turn (Sec. 3.3).
    """
    if count <= 0:
        raise CudaInvalidValue(f"count must be positive, got {count}")
    written = 0
    for i in range(count):
        written += pack_strided(
            src,
            dst,
            start + i * object_extent,
            counts,
            strides,
            dst_offset + written,
        )
    return written


def unpack_strided_many(
    src: np.ndarray,
    dst: np.ndarray,
    start: int,
    counts: Sequence[int],
    strides: Sequence[int],
    count: int,
    object_extent: int,
    src_offset: int = 0,
) -> int:
    """Unpack ``count`` back-to-back packed objects into strided storage."""
    if count <= 0:
        raise CudaInvalidValue(f"count must be positive, got {count}")
    consumed = 0
    for i in range(count):
        consumed += unpack_strided(
            src,
            dst,
            start + i * object_extent,
            counts,
            strides,
            src_offset + consumed,
        )
    return consumed


def copy_block_list(
    src: np.ndarray,
    dst: np.ndarray,
    blocks: Sequence[tuple[int, int]],
    *,
    gather: bool = True,
) -> int:
    """Copy an explicit ``(offset, length)`` block list.

    This is the generic representation prior work (and the Spectrum-like
    baseline engine) uses: when ``gather`` is True the blocks are read from
    ``src`` at their offsets and written densely into ``dst``; when False the
    dense ``src`` is scattered into ``dst`` at the block offsets.
    """
    cursor = 0
    for offset, length in blocks:
        if offset < 0 or length < 0:
            raise CudaInvalidValue("block offsets and lengths must be non-negative")
        if gather:
            if offset + length > src.nbytes or cursor + length > dst.nbytes:
                raise CudaInvalidValue("block list escapes its buffers")
            dst[cursor : cursor + length] = src[offset : offset + length]
        else:
            if offset + length > dst.nbytes or cursor + length > src.nbytes:
                raise CudaInvalidValue("block list escapes its buffers")
            dst[offset : offset + length] = src[cursor : cursor + length]
        cursor += length
    return cursor
