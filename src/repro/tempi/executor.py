"""The plan executor: stages to kernels, copies and wire messages.

A :class:`~repro.tempi.plan.MessagePlan` says *what* moves; this module
decides *when*.  Two schedules are supported, selected by
``TempiConfig.overlap``:

**Overlapped** (the default).  Every pack stage is issued on its own stream
from the resource cache and the host returns after the launch overhead; the
matching post stage hands the message to the wire at the stage's stream
completion time, with transfers to distinct peers serialising on the NIC at
the same occupancy factor the analytic all-to-all-v model uses.  Pack kernels
for peer *k+1* therefore run while peer *k*'s bytes are on the wire — the
pipeline the paper's halo applications build by hand with
``Isend``/``Irecv``/``Waitall``.  Receive sides defer to ``Request.Wait``:
each arriving peer's unpack is issued on its own stream and the host
synchronises once at the end.

**Serial** (``overlap=False``, the PR-1 engine, kept for ablations and
``bench_fig14_overlap.py``).  Stages run in plan order with a host
synchronisation after every pack/unpack, messages are posted only after their
pack completes on the host clock, and the wire is charged analytically at the
end — pack time and wire time add up instead of overlapping.

Both schedules move exactly the same bytes; only the virtual-time accounting
differs, which is what makes serial-vs-overlap comparisons isolate the
scheduling.

Wire state itself lives one layer down, in the per-rank
:class:`~repro.tempi.progress.ProgressEngine`: every overlapped post reserves
its slot through the engine (cross-plan NIC contention under
``TempiConfig(progress="shared")``, the PR-2 per-plan cursor under
``progress="per_plan"``), sub-eager nonblocking sends may be handed to the
engine's batcher instead of executing immediately, and receive-side readiness
probes run the engine's progress step so ``Test`` advances deferred arrivals.
Constructed without an engine the executor reproduces the PR-2 per-plan
accounting exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.memory import MemoryKind
from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.mpi.collectives import _next_collective_tag, _receive_raw
from repro.mpi.errors import MpiTruncationError
from repro.mpi.p2p import Envelope
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.tempi.cache import ResourceCache
from repro.tempi.config import PackMethod
from repro.tempi.plan import (
    MessagePlan,
    PackStage,
    PlanError,
    ReduceStage,
    UnpackStage,
    staging_kind,
)

#: Elementwise reduction kernels a :class:`~repro.tempi.plan.ReduceStage`
#: may name.  All four are deterministic numpy ufuncs; the combine order is
#: the schedule's, so run-to-run results are bit-identical by construction.
_REDUCE_UFUNCS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}
from repro.tempi.progress import PlanWindow, ProgressEngine


class _StagingTracker:
    """Per-execution view of the cache's keyed staging buffers.

    Keyed stages bind to persistent per-peer buffers (the reuse of Sec. 5);
    keyless stages check transient buffers out of the size-bucketed pool.
    With caching off there is nothing to hold persistent buffers either, so
    the tracker releases every acquisition when the execution ends instead of
    leaking one allocation per peer per call.
    """

    def __init__(self, cache: ResourceCache) -> None:
        self.cache = cache
        self._transient: list = []

    def get(self, key, nbytes: int, kind: MemoryKind):
        if key is None:
            buffer = self.cache.get_buffer(nbytes, kind)
            self._transient.append(buffer)
            return buffer
        buffer = self.cache.get_persistent(key, nbytes, kind)
        if not self.cache.enabled:
            self._transient.append(buffer)
        return buffer

    def release(self) -> None:
        for buffer in self._transient:
            self.cache.put_buffer(buffer)
        self._transient.clear()


class PlanExecutor:
    """Executes :class:`MessagePlan` objects against one rank's communicator."""

    def __init__(
        self,
        comm,
        cache: ResourceCache,
        stats=None,
        *,
        overlap: bool = True,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        engine: Optional[ProgressEngine] = None,
    ) -> None:
        self.comm = comm
        self.cache = cache
        self.stats = stats
        self.overlap = overlap
        self.wire_overlap = wire_overlap
        self.engine = engine
        if engine is not None:
            engine.bind(self)

    # ------------------------------------------------------------------ entry
    def execute(self, plan: MessagePlan) -> Request:
        """Run a plan's send side now; return the request that drives the rest.

        * ``send`` plans return a send request (completion at buffer-reuse
          time for nonblocking plans, at wire-completion time for blocking
          ones); sub-eager nonblocking sends may instead be enqueued on the
          progress engine's batcher;
        * ``recv`` plans return a receive request whose ``Wait`` matches the
          message and unpacks it;
        * ``bcast`` plans pack once and post every peer off that one payload;
        * collective plans pack and post every outgoing peer immediately and
          return a request whose ``Wait`` receives and unpacks every incoming
          peer (the deferred-unpack side).

        Every non-batched execution is a progress point: pending batches are
        flushed first, so deferred posts can never be overtaken.
        """
        if self.stats is not None:
            self.stats.plans_built += 1
        if plan.op == "send":
            return self._execute_send(plan)
        if self.engine is not None:
            self.engine.progress()
        if plan.op == "recv":
            return self._execute_recv(plan)
        if plan.op == "bcast":
            return self._execute_bcast(plan)
        if plan.op == "allreduce":
            return self._execute_allreduce(plan)
        return self._execute_exchange(plan)

    # ---------------------------------------------------------------- helpers
    def _arrived(self, peer: int, tag: int) -> bool:
        """True when a matching envelope is present *and* virtually arrived.

        Mailbox presence alone is a wall-clock artefact of the thread
        scheduler; gating on ``available_at`` keeps ``Test`` deterministic in
        virtual time (a receive is completable only once its message's wire
        time has passed on this rank's clock).  With a progress engine the
        probe also runs the engine's progress step first, so ``Test``
        advances deferred wire state instead of only polling.
        """
        comm = self.comm
        if self.engine is not None:
            return self.engine.arrived(peer, tag)
        envelope = comm.router.probe(comm.rank, peer, tag, comm.context)
        return envelope is not None and envelope.available_at <= comm.clock.now

    def _window(self) -> PlanWindow:
        """A NIC view for one plan's posts (shared or per-plan, per engine)."""
        if self.engine is not None:
            return self.engine.plan_window()
        return PlanWindow(None, self.comm.clock.now, self.wire_overlap)

    @staticmethod
    def _host_key(staging_key):
        """The pinned-host bounce buffer's key for a staged-method stage."""
        if staging_key is None:
            return None
        scope, role, peer, _ = staging_key
        return (scope, role + "-host", peer, MemoryKind.HOST_PINNED)

    def _pack_stage(self, stage: PackStage, source, staging: _StagingTracker, stream):
        """Issue one pack stage; returns ``(payload_buffer, ready_time)``.

        ``ready_time`` is the virtual time at which the packed bytes are
        wire-ready: the stream completion of the kernels (plus the explicit
        D2H bounce for the staged method).  In serial mode the host has
        already synchronised past it.
        """
        comm = self.comm
        kind = staging_kind(stage.method)
        buffer = staging.get(stage.staging_key, stage.nbytes, kind)
        sync = stream is None
        offset = 0
        for section in stage.sections:
            section.packer.pack(
                comm.gpu,
                source.view(section.displ) if section.displ else source,
                buffer,
                section.count,
                dst_offset=offset,
                stream=stream,
                sync=sync,
            )
            offset += section.packed_bytes
        if stage.method is PackMethod.STAGED:
            host = staging.get(
                self._host_key(stage.staging_key), stage.nbytes, MemoryKind.HOST_PINNED
            )
            comm.gpu.memcpy_async(host, buffer, stage.nbytes, stream=stream)
            if sync:
                comm.gpu.stream_synchronize()
            buffer = host
        stage.stream = stream
        ready = stream.ready_time if stream is not None else comm.clock.now
        return buffer, ready

    def _unpack_stage(self, stage: UnpackStage, payload: np.ndarray, dest, staging, stream):
        """Scatter one peer's packed payload into the user buffer."""
        comm = self.comm
        kind = staging_kind(stage.method)
        buffer = staging.get(stage.staging_key, stage.nbytes, kind)
        sync = stream is None
        nbytes = min(stage.nbytes, int(payload.nbytes))
        if stage.method is PackMethod.STAGED:
            host = staging.get(
                self._host_key(stage.staging_key), stage.nbytes, MemoryKind.HOST_PINNED
            )
            host.data[:nbytes] = payload[:nbytes]
            comm.gpu.memcpy_async(buffer, host, nbytes, stream=stream)
            if sync:
                comm.gpu.stream_synchronize()
        else:
            buffer.data[:nbytes] = payload[:nbytes]
        offset = 0
        for section in stage.sections:
            section.packer.unpack(
                comm.gpu,
                buffer,
                dest.view(section.displ) if section.displ else dest,
                section.count,
                src_offset=offset,
                stream=stream,
                sync=sync,
            )
            offset += section.packed_bytes
        stage.stream = stream

    def _post(
        self,
        peer: int,
        tag: int,
        payload_buffer,
        nbytes: int,
        available_at: float,
        *,
        wire_s: float = 0.0,
        post_time: float = 0.0,
        source_seq: int = -1,
    ) -> None:
        self.comm.router.post(
            Envelope(
                source=self.comm.rank,
                dest=peer,
                tag=tag,
                context=self.comm.context,
                payload=np.ascontiguousarray(payload_buffer.data[:nbytes], dtype=np.uint8).copy(),
                available_at=available_at,
                device=payload_buffer.is_device,
                wire_s=wire_s,
                post_time=post_time,
                source_seq=source_seq,
            )
        )

    def _post_slot(self, peer: int, tag: int, payload_buffer, nbytes: int, slot) -> None:
        """Post one reserved wire message, carrying its NIC identity.

        Only slots reserved on the shared timeline (``seq >= 0``) stamp the
        envelope for receive-side ingestion; per-plan and serial posts opt
        out and keep the sender-computed arrival final.
        """
        if slot.seq >= 0:
            self._post(
                peer,
                tag,
                payload_buffer,
                nbytes,
                slot.arrival,
                wire_s=slot.wire_s,
                post_time=slot.start,
                source_seq=slot.seq,
            )
        else:
            self._post(peer, tag, payload_buffer, nbytes, slot.arrival)

    def _injection_overhead(self) -> float:
        return self.comm.network.message_cost(0, same_node=True, device_buffers=False).latency_s

    def _wire_time(self, nbytes: int, peer: int, device: bool) -> float:
        """Wire time to ``peer``; the engine's topology-aware pricing when bound."""
        if self.engine is not None:
            return self.engine.message_time(nbytes, peer, device)
        return self.comm._message_time(nbytes, peer, device)

    def _batchable_exchange(self, plan: MessagePlan) -> bool:
        """True when a plan's posts form one batch-bookable equivalence class.

        Requires an engine whose gates pass (knob on, shared timeline, plain
        NIC, enough messages — :meth:`~repro.tempi.progress.ProgressEngine.batch_ready`)
        and a homogeneous post set: every post the same ``nbytes``, so one
        class prices the whole exchange.  Heterogeneous plans keep the
        scalar per-post loop, bit-identically.
        """
        posts = plan.post_stages
        if len(posts) < 2 or self.engine is None:
            return False
        if not self.engine.batch_ready(len(posts)):
            return False
        nbytes = posts[0].nbytes
        return all(post.nbytes == nbytes for post in posts)

    def _run_local(self, plan: MessagePlan, staging: _StagingTracker) -> None:
        """Self-sections bounce through device staging without the wire."""
        pack_stage, unpack_stage = plan.local
        buffer, _ = self._pack_stage(pack_stage, plan.send_buffer, staging, None)
        self._unpack_stage(
            unpack_stage, buffer.data[: pack_stage.nbytes], plan.recv_buffer, staging, None
        )

    # -------------------------------------------------------------------- send
    def _execute_send(self, plan: MessagePlan) -> Request:
        comm = self.comm
        if self.engine is not None:
            if self.overlap:
                batched = self.engine.offer_send(plan)
                if batched is not None:
                    return batched
            self.engine.progress()
        stage = plan.pack_stages[0]
        post = plan.post_stages[0]
        staging = _StagingTracker(self.cache)
        stream = self.cache.get_stream() if self.overlap else None
        try:
            payload, ready = self._pack_stage(stage, plan.send_buffer, staging, stream)
            wire = self._wire_time(post.nbytes, post.peer, payload.is_device)
            if self.overlap and self.engine is not None:
                slot = self.engine.reserve_wire(
                    post.peer, ready, wire, post.nbytes, device=payload.is_device
                )
                arrival = slot.arrival
                self._post_slot(post.peer, plan.tag, payload, post.nbytes, slot)
            else:
                arrival = ready + wire
                self._post(post.peer, plan.tag, payload, post.nbytes, arrival)
        finally:
            staging.release()
            if stream is not None:
                self.cache.put_stream(stream)
        if self.stats is not None and self.overlap:
            self.stats.stages_overlapped += 1
        completion = ready + self._injection_overhead() if plan.nonblocking else arrival
        return Request("send", completion_time=completion, clock=comm.clock)

    # ------------------------------------------------------------------- bcast
    def _execute_bcast(self, plan: MessagePlan) -> Request:
        """Root side of a plan-compiled broadcast: pack once, post every peer.

        All post stages share the single pack stage's payload, so the packed
        bytes take one kernel pipeline and then fan out over the wire, each
        transfer reserving its own slot on the NIC window.  The returned
        request completes at buffer-reuse time (pack done + injection), the
        local semantics ``MPI_Bcast`` requires of the root.
        """
        comm = self.comm
        stage = plan.pack_stages[0]
        staging = _StagingTracker(self.cache)
        stream = self.cache.get_stream() if self.overlap else None
        window = self._window() if self.overlap else None
        try:
            payload, ready = self._pack_stage(stage, plan.send_buffer, staging, stream)
            for post in plan.post_stages:
                wire = self._wire_time(post.nbytes, post.peer, payload.is_device)
                if window is not None:
                    slot = window.reserve_wire(
                        post.peer, ready, wire, post.nbytes, device=payload.is_device
                    )
                    self._post_slot(post.peer, plan.tag, payload, post.nbytes, slot)
                else:
                    # The serial ablation prices each transfer independently,
                    # exactly like serial sends (no NIC serialisation).
                    self._post(post.peer, plan.tag, payload, post.nbytes, ready + wire)
        finally:
            staging.release()
            if stream is not None:
                self.cache.put_stream(stream)
        if self.stats is not None and self.overlap:
            self.stats.stages_overlapped += 1
        return Request(
            "send", completion_time=ready + self._injection_overhead(), clock=comm.clock
        )

    # -------------------------------------------------------------------- recv
    def _execute_recv(self, plan: MessagePlan) -> Request:
        comm = self.comm
        stage = plan.unpack_stages[0]

        def complete() -> Status:
            if self.engine is not None:
                self.engine.progress()
            if plan.nonblocking and self.stats is not None:
                self.stats.deferred_unpacks += 1
            envelope = comm.router.receive(comm.rank, stage.peer, plan.tag, comm.context)
            landing = (
                self.engine.ingest_one(envelope)
                if self.engine is not None
                else envelope.available_at
            )
            comm.clock.advance_to(landing)
            if envelope.nbytes > stage.nbytes:
                raise MpiTruncationError(
                    f"message of {envelope.nbytes} bytes truncates a receive of "
                    f"{stage.nbytes} bytes"
                )
            staging = _StagingTracker(self.cache)
            try:
                self._unpack_stage(stage, envelope.payload, plan.recv_buffer, staging, None)
            finally:
                staging.release()
            return Status(
                source=envelope.source, tag=envelope.tag, count_bytes=envelope.nbytes
            )

        def ready() -> bool:
            return self._arrived(stage.peer, plan.tag)

        def arrival() -> Optional[float]:
            envelope = comm.router.probe(comm.rank, stage.peer, plan.tag, comm.context)
            if envelope is None:
                return None
            if self.engine is not None:
                return self.engine.arrival_preview(envelope)
            return envelope.available_at

        return Request("recv", complete=complete, ready=ready, arrival=arrival)

    # --------------------------------------------------------------- exchange
    def _execute_exchange(self, plan: MessagePlan) -> Request:
        comm = self.comm
        if plan.tag is None:
            plan.tag = _next_collective_tag(comm)
        tag = plan.tag
        staging = _StagingTracker(self.cache)
        streams: list = []
        # Fan-out plans (allgather) share one pack stage across every post;
        # pack each distinct stage once and reuse its payload for later posts.
        packed: dict[int, tuple] = {}

        def pack_once(stage: PackStage, stream) -> tuple:
            key = id(stage)
            if key not in packed:
                packed[key] = self._pack_stage(stage, plan.send_buffer, staging, stream)
            return packed[key]

        try:
            if self.overlap:
                window = self._window()
                if self._batchable_exchange(plan):
                    # Batched booking: pack every stage first (same streams,
                    # same order), then price the whole homogeneous exchange
                    # through one NIC batch call and post the envelopes.
                    # Reservations never read pack state or the clock — the
                    # ready times travel explicitly — so regrouping them
                    # after the packs leaves every priced time bit-identical
                    # to the interleaved scalar loop.
                    posts = plan.post_stages
                    payloads = []
                    readies = []
                    wires = []
                    for post in posts:
                        if id(post.pack) not in packed:
                            stream = self.cache.get_stream()
                            streams.append(stream)
                        else:
                            stream = post.pack.stream
                        payload, ready = pack_once(post.pack, stream)
                        payloads.append(payload)
                        readies.append(ready)
                        wires.append(
                            self._wire_time(post.nbytes, post.peer, payload.is_device)
                        )
                    if len({payload.is_device for payload in payloads}) == 1:
                        slots = self.engine.reserve_wire_batch(
                            [post.peer for post in posts],
                            readies,
                            wires,
                            posts[0].nbytes,
                            device=payloads[0].is_device,
                        )
                    else:
                        # Mixed staging kinds route differently per message —
                        # not one equivalence class after all; book scalar.
                        slots = [
                            window.reserve_wire(
                                post.peer, ready, wire, post.nbytes,
                                device=payload.is_device,
                            )
                            for post, payload, ready, wire in zip(
                                posts, payloads, readies, wires
                            )
                        ]
                    for post, payload, slot in zip(posts, payloads, slots):
                        self._post_slot(post.peer, tag, payload, post.nbytes, slot)
                else:
                    for post in plan.post_stages:
                        if id(post.pack) not in packed:
                            stream = self.cache.get_stream()
                            streams.append(stream)
                        else:
                            stream = post.pack.stream
                        payload, ready = pack_once(post.pack, stream)
                        wire = self._wire_time(post.nbytes, post.peer, payload.is_device)
                        slot = window.reserve_wire(
                            post.peer, ready, wire, post.nbytes, device=payload.is_device
                        )
                        self._post_slot(post.peer, tag, payload, post.nbytes, slot)
                if self.stats is not None:
                    self.stats.stages_overlapped += len(plan.pack_stages)
            else:
                for post in plan.post_stages:
                    payload, ready = pack_once(post.pack, None)
                    self._post(post.peer, tag, payload, post.nbytes, comm.clock.now)
            if plan.local is not None:
                self._run_local(plan, staging)
        finally:
            for stream in streams:
                self.cache.put_stream(stream)
            staging.release()

        def complete() -> Status:
            if self.engine is not None:
                self.engine.progress()
            if plan.nonblocking and self.stats is not None:
                self.stats.deferred_unpacks += len(plan.unpack_stages)
            recv_staging = _StagingTracker(self.cache)
            recv_streams: list = []
            latest = comm.clock.now
            try:
                # Receive the whole set first: the receive side of one plan is
                # one ingestion batch, served in the deterministic
                # (post_time, source, seq) order whatever wall-clock order
                # the peers posted in.
                envelopes = [_receive_raw(comm, stage.peer, tag) for stage in plan.unpack_stages]
                landings = (
                    self.engine.ingest_batch(envelopes)
                    if self.engine is not None
                    else [envelope.available_at for envelope in envelopes]
                )
                for stage, envelope, landing in zip(plan.unpack_stages, envelopes, landings):
                    if envelope.nbytes != stage.nbytes:
                        raise PlanError(
                            f"rank {comm.rank} expected {stage.nbytes} packed bytes from "
                            f"{stage.peer}, got {envelope.nbytes}"
                        )
                    latest = max(latest, landing)
                    if self.overlap:
                        comm.clock.advance_to(landing)
                        stream = self.cache.get_stream()
                        recv_streams.append(stream)
                        self._unpack_stage(
                            stage, envelope.payload, plan.recv_buffer, recv_staging, stream
                        )
                    else:
                        self._unpack_stage(
                            stage, envelope.payload, plan.recv_buffer, recv_staging, None
                        )
                if self.overlap:
                    for stream in recv_streams:
                        comm.gpu.stream_synchronize(stream)
                    if self.stats is not None:
                        self.stats.stages_overlapped += len(plan.unpack_stages)
                else:
                    comm.clock.advance_to(latest)
                    self._charge_serial_wire(plan)
            finally:
                for stream in recv_streams:
                    self.cache.put_stream(stream)
                recv_staging.release()
            return Status()

        def ready() -> bool:
            return all(self._arrived(stage.peer, tag) for stage in plan.unpack_stages)

        def arrival() -> Optional[float]:
            # Completable only once every peer has arrived, so the hint is the
            # latest known arrival — unknown while any peer is missing.
            # Duplex accounting previews each landing against the receiver's
            # ingestion cursor, so the hint reflects this rank's backlog.
            latest = None
            for stage in plan.unpack_stages:
                envelope = comm.router.probe(comm.rank, stage.peer, tag, comm.context)
                if envelope is None:
                    return None
                when = (
                    self.engine.arrival_preview(envelope)
                    if self.engine is not None
                    else envelope.available_at
                )
                latest = when if latest is None else max(latest, when)
            return latest

        return Request("coll", complete=complete, ready=ready, arrival=arrival)

    # --------------------------------------------------------------- allreduce
    def _reduce_time(self, nbytes: int, device: bool) -> float:
        """One combine's clock charge: priced like an unpack kernel.

        A reduction visits every arriving byte exactly like an unpack does
        (read staging, write the user buffer), so it is charged through the
        same cost-model seam — one contiguous ``nbytes`` run, launch and
        sync included, since the executor folds combines synchronously
        between rounds.
        """
        return self.comm.gpu.cost.kernel_time(
            nbytes,
            nbytes,
            target="device" if device else "host",
            unpack=True,
            include_sync=True,
        )

    def _allreduce_round(self, stage: ReduceStage, plan: MessagePlan, dtype) -> None:
        """Walk one reduction round: post the send half, fold the receive half."""
        comm = self.comm
        acc = plan.recv_buffer
        if stage.dest >= 0:
            wire = self._wire_time(stage.send_nbytes, stage.dest, acc.is_device)
            payload = acc.view(stage.send_offset) if stage.send_offset else acc
            if self.overlap and self.engine is not None:
                slot = self.engine.reserve_wire(
                    stage.dest, comm.clock.now, wire, stage.send_nbytes,
                    device=acc.is_device,
                )
                self._post_slot(stage.dest, plan.tag, payload, stage.send_nbytes, slot)
            else:
                # The serial ablation prices each transfer independently,
                # exactly like serial sends (no NIC serialisation).
                self._post(
                    stage.dest, plan.tag, payload, stage.send_nbytes,
                    comm.clock.now + wire,
                )
        if stage.source < 0:
            return
        envelope = _receive_raw(comm, stage.source, plan.tag)
        landing = (
            self.engine.ingest_one(envelope)
            if self.engine is not None
            else envelope.available_at
        )
        comm.clock.advance_to(landing)
        if envelope.nbytes != stage.recv_nbytes:
            raise PlanError(
                f"rank {comm.rank} expected a {stage.recv_nbytes}-byte reduction "
                f"chunk from {stage.source}, got {envelope.nbytes}"
            )
        if not stage.recv_nbytes:
            return
        region = acc.data[stage.recv_offset : stage.recv_offset + stage.recv_nbytes]
        if stage.combine:
            comm.clock.advance(self._reduce_time(stage.recv_nbytes, acc.is_device))
            ufunc = _REDUCE_UFUNCS[stage.op]
            folded = region.view(dtype)
            ufunc(folded, envelope.payload.view(dtype), out=folded)
        else:
            region[:] = envelope.payload

    def _execute_allreduce(self, plan: MessagePlan) -> Request:
        """Walk a reduction plan's rounds: each posts its chunk and folds the
        arriving one.

        Unlike the exchange plans there is no post-everything-first phase —
        round ``k+1``'s outgoing partial *is* round ``k``'s fold — so the
        whole schedule runs at ``Wait`` time: immediately for the blocking
        call, deferred for ``Iallreduce`` (every rank must eventually wait,
        as MPI requires of nonblocking collectives).  The accumulator is the
        receive buffer, seeded from the send buffer; every wire slot goes
        through the engine (injection, link, fabric and ingestion ledgers all
        engage) and every combine is charged like an unpack kernel.
        """
        comm = self.comm
        if plan.tag is None:
            plan.tag = _next_collective_tag(comm)
        dtype = np.dtype(plan.reduce_dtype)

        def complete() -> Status:
            if self.engine is not None:
                self.engine.progress()
            nbytes = plan.reduce_nbytes
            plan.recv_buffer.data[:nbytes] = plan.send_buffer.data[:nbytes]
            for stage in plan.reduce_stages:
                self._allreduce_round(stage, plan, dtype)
            return Status()

        def ready() -> bool:
            for stage in plan.reduce_stages:
                if stage.source >= 0:
                    return self._arrived(stage.source, plan.tag)
            return True

        return Request("coll", complete=complete, ready=ready)

    def _charge_serial_wire(self, plan: MessagePlan) -> None:
        """The serial engine's analytic wire charge, split by transfer path."""
        comm = self.comm
        pair_methods: dict[int, PackMethod] = {}
        for post in plan.post_stages:
            pair_methods[post.peer] = post.pack.method
        for stage in plan.unpack_stages:
            pair_methods.setdefault(stage.peer, stage.method)
        sent = {post.peer: post.nbytes for post in plan.post_stages}
        received = {stage.peer: stage.nbytes for stage in plan.unpack_stages}
        device_pairs = [0] * comm.size
        host_pairs = [0] * comm.size
        for peer, method in pair_methods.items():
            nbytes = max(sent.get(peer, 0), received.get(peer, 0))
            if method is PackMethod.DEVICE:
                device_pairs[peer] = nbytes
            else:
                host_pairs[peer] = nbytes
        if any(device_pairs):
            comm.clock.advance(
                comm.network.alltoallv_time(
                    device_pairs, comm.topology, comm.rank, device_buffers=True
                )
            )
        if any(host_pairs):
            comm.clock.advance(
                comm.network.alltoallv_time(
                    host_pairs, comm.topology, comm.rank, device_buffers=False
                )
            )
