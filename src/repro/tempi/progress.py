"""The progress engine: deferred wire state between the executor and the NIC.

PR 2's plan executor computed every message's arrival the moment it was
posted, against a NIC cursor that lived *inside one plan execution*.  The
:class:`ProgressEngine` is the per-rank layer that owns that state across
plans instead:

* **Cross-plan NIC accounting** — with ``TempiConfig(progress="shared")``
  (the default) every wire reservation goes through the world's shared
  :class:`~repro.machine.nic.NicTimeline`, so concurrent plans contend for
  the rank's injection port and per-peer links.  ``progress="per_plan"``
  reproduces the PR-2 schedule (a fresh cursor per plan, no cross-plan
  contention) for ablations — ``bench_fig15_contention.py`` measures the
  difference.
* **Small-plan batching** — consecutive sub-eager-threshold nonblocking send
  plans to the same peer are coalesced: each plan's pack is issued
  immediately (exactly as an unbatched send would be), but the bytes ride
  **one** posted wire message reserved when the slowest pack completes —
  one latency floor and one NIC slot for the whole burst instead of one per
  plan.  Delivery stays byte-for-byte identical: every constituent keeps its
  own envelope, tag and payload; only the wire timing is shared.
* **Test-driven progress** — ``Request.Test``/``Testall``/``Wait`` on any
  engine-backed request call :meth:`progress` first, which flushes pending
  batches, so testing a request genuinely advances message arrival instead
  of polling a per-plan clock.

Batches are flushed at every progress point: any non-batchable plan
execution, any ``Wait``/``Test`` on an engine request, or an explicit
:meth:`flush`.  Flush-on-wait is what keeps deferral deadlock-free: MPI
requires every nonblocking send to eventually be completed, and completing it
forces the post.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.nic import NicTimeline
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.tempi.config import PackMethod
from repro.tempi.plan import MessagePlan

#: Progress-engine modes accepted by ``TempiConfig.progress``.
PROGRESS_MODES = ("shared", "per_plan")


class ProgressError(RuntimeError):
    """The engine was configured or driven impossibly."""


class PlanWindow:
    """One plan's view of the NIC while its post stages are being issued.

    In ``per_plan`` mode the window is the PR-2 cursor: it opens at the
    host's current virtual time and serialises only the messages of its own
    plan.  In ``shared`` mode it delegates every reservation to the shared
    :class:`~repro.machine.nic.NicTimeline`.
    """

    def __init__(self, engine: Optional["ProgressEngine"], now: float, wire_overlap: float) -> None:
        self._engine = engine
        self._nic_free = now
        self._wire_overlap = wire_overlap

    def reserve(self, peer: int, ready: float, wire_s: float, nbytes: int = 0) -> tuple[float, float]:
        """Place one message; returns ``(start, arrival)`` virtual times."""
        if self._engine is not None and self._engine.shared:
            return self._engine.reserve(peer, ready, wire_s, nbytes)
        start = max(ready, self._nic_free)
        self._nic_free = start + self._wire_overlap * wire_s
        return start, start + wire_s


@dataclass
class _PendingSend:
    """One enqueued sub-eager send plan: packed, awaiting its batch's post."""

    plan: MessagePlan
    nbytes: int
    #: The packed payload buffer (held by the batch's staging tracker).
    payload: object
    #: Virtual time the pack's kernels complete (wire-readiness).
    ready: float
    #: Buffer-reuse completion time (pack done + injection overhead).
    completion: float


@dataclass
class _Batch:
    """The pending small-send queue of one ``(peer, wire-path)`` pair.

    Entries are packed the moment they are enqueued (on their own streams,
    exactly like unbatched sends); what the batch defers and coalesces is the
    **wire side** — one reservation, one latency floor, one posted message's
    worth of NIC occupancy for the whole burst.
    """

    peer: int
    device: bool
    staging: object
    entries: list[_PendingSend] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(entry.nbytes for entry in self.entries)

    @property
    def ready(self) -> float:
        return max(entry.ready for entry in self.entries)


class ProgressEngine:
    """Per-rank owner of deferred wire state for the plan executor."""

    def __init__(
        self,
        comm,
        cache,
        stats=None,
        *,
        mode: str = "shared",
        batching: bool = True,
        batch_max_messages: int = 8,
        wire_overlap: float = DEFAULT_WIRE_OVERLAP,
        nic: Optional[NicTimeline] = None,
    ) -> None:
        if mode not in PROGRESS_MODES:
            raise ProgressError(
                f"unknown progress mode {mode!r}; expected one of {PROGRESS_MODES}"
            )
        if batch_max_messages < 1:
            raise ProgressError("batch_max_messages must be at least 1")
        self.comm = comm
        self.cache = cache
        self.stats = stats
        self.mode = mode
        self.wire_overlap = wire_overlap
        if nic is None:
            nic = getattr(getattr(comm, "world", None), "nic", None)
        self.nic = nic if nic is not None else NicTimeline(wire_overlap=wire_overlap)
        #: Batching coalesces deferred posts, which only makes sense when the
        #: shared timeline prices them; per-plan mode is the PR-2 ablation.
        self.batching = bool(batching) and mode == "shared"
        self.batch_max_messages = batch_max_messages
        self.eager_threshold = comm.network.machine.eager_threshold
        self.executor = None
        self._batches: dict[tuple[int, bool], _Batch] = {}

    # ---------------------------------------------------------------- wiring
    @property
    def shared(self) -> bool:
        """True when reservations go through the shared NIC timeline."""
        return self.mode == "shared"

    def bind(self, executor) -> None:
        """Attach the executor whose stages the engine issues at flush time."""
        self.executor = executor

    # ------------------------------------------------------------------- NIC
    def plan_window(self) -> PlanWindow:
        """A NIC view for one plan's post stages (mode-appropriate)."""
        if self.shared:
            return PlanWindow(self, self.comm.clock.now, self.wire_overlap)
        return PlanWindow(None, self.comm.clock.now, self.wire_overlap)

    def reserve(self, peer: int, ready: float, wire_s: float, nbytes: int = 0) -> tuple[float, float]:
        """Reserve one message's wire slot; returns ``(start, arrival)``.

        In ``per_plan`` mode a lone message never contends (PR-2 semantics);
        in ``shared`` mode it queues on the rank's injection port and the
        per-peer link, and stalls are counted on the interposer stats.
        """
        if not self.shared:
            return ready, ready + wire_s
        reservation = self.nic.reserve(self.comm.rank, peer, ready, wire_s, nbytes)
        if reservation.stalled and self.stats is not None:
            self.stats.contention_stalls += 1
        return reservation.start, reservation.arrival

    # -------------------------------------------------------------- batching
    def offer_send(self, plan: MessagePlan) -> Optional[Request]:
        """Consider a nonblocking send plan for batching.

        Returns the request driving the deferred send, or ``None`` when the
        plan is not batchable (batching off, message at/above the eager
        threshold) — the caller then executes it immediately.
        """
        if not self.batching or self.executor is None:
            return None
        if plan.op != "send" or not plan.nonblocking:
            return None
        post = plan.post_stages[0]
        if post.nbytes >= self.eager_threshold:
            return None
        from repro.tempi.executor import _StagingTracker

        device = post.pack.method is PackMethod.DEVICE
        key = (post.peer, device)
        # Batches are per (peer, wire path), but MPI non-overtaking is per
        # peer: a pending batch on the *other* path must be posted before
        # this message may be enqueued, or same-tag receives would match out
        # of order when the method selector alternates.
        self._flush_batch((post.peer, not device))
        batch = self._batches.get(key)
        if batch is not None and (
            len(batch.entries) >= self.batch_max_messages
            or batch.nbytes + post.nbytes > self.eager_threshold
        ):
            # Keep the coalesced message eager and the burst bounded.
            self._flush_batch(key)
            batch = None
        if batch is None:
            batch = self._batches[key] = _Batch(
                peer=post.peer, device=device, staging=_StagingTracker(self.cache)
            )
        # Pack now, exactly like an unbatched send (own stream, host returns
        # after the launches); only the wire message is deferred to the flush.
        comm = self.comm
        stream = self.cache.get_stream()
        try:
            payload, ready = self.executor._pack_stage(
                plan.pack_stages[0], plan.send_buffer, batch.staging, stream
            )
        finally:
            self.cache.put_stream(stream)
        entry = _PendingSend(
            plan=plan,
            nbytes=post.nbytes,
            payload=payload,
            ready=ready,
            completion=ready + self.executor._injection_overhead(),
        )
        batch.entries.append(entry)
        if self.stats is not None:
            self.stats.stages_overlapped += 1

        def complete() -> Status:
            self.progress()  # the send's Wait is a progress point: post first
            comm.clock.advance_to(entry.completion)
            return Status()

        def ready_probe() -> bool:
            self.progress()
            return comm.clock.now >= entry.completion

        def arrival() -> Optional[float]:
            return entry.completion

        return Request("send", complete=complete, ready=ready_probe, arrival=arrival)

    def pending_sends(self, peer: Optional[int] = None) -> int:
        """Enqueued-but-unposted send plans (for tests and stats)."""
        return sum(
            len(batch.entries)
            for key, batch in self._batches.items()
            if peer is None or key[0] == peer
        )

    def progress(self) -> None:
        """Advance deferred wire state: flush every pending batch.

        This is the engine's progress point — called from ``Wait``/``Test``
        of engine requests and from every non-batchable plan execution, so
        deferred posts can never be overtaken by later traffic and testing a
        request genuinely moves messages toward arrival.
        """
        self.flush()

    def flush(self, peer: Optional[int] = None) -> None:
        """Post pending batches (all of them, or one peer's)."""
        keys = [key for key in self._batches if peer is None or key[0] == peer]
        for key in keys:
            self._flush_batch(key)

    def _flush_batch(self, key: tuple[int, bool]) -> None:
        batch = self._batches.pop(key, None)
        if batch is None or not batch.entries:
            return
        if self.executor is None:
            raise ProgressError("progress engine flushed before an executor was bound")
        executor = self.executor
        try:
            # One posted message: the burst's combined bytes take one wire
            # slot (one latency floor instead of one per plan), entering the
            # NIC when the slowest constituent pack is ready.  Each
            # constituent keeps its own envelope — posted in enqueue order,
            # sharing the batch arrival — so delivery is byte-for-byte
            # identical to the unbatched schedule.
            wire = self.comm._message_time(batch.nbytes, batch.peer, batch.device)
            _, arrival = self.reserve(batch.peer, batch.ready, wire, batch.nbytes)
            for entry in batch.entries:
                post = entry.plan.post_stages[0]
                executor._post(post.peer, entry.plan.tag, entry.payload, post.nbytes, arrival)
        finally:
            batch.staging.release()
        if self.stats is not None and len(batch.entries) > 1:
            self.stats.batched_plans += len(batch.entries)

    # -------------------------------------------------------------- arrivals
    def arrived(self, peer: int, tag: int) -> bool:
        """True when a matching message is present *and* virtually arrived.

        Runs :meth:`progress` first, so a ``Test`` poll advances deferred
        wire state before probing — the progress-thread behaviour the
        roadmap asked for, without a thread.
        """
        self.progress()
        comm = self.comm
        envelope = comm.router.probe(comm.rank, peer, tag, comm.context)
        return envelope is not None and envelope.available_at <= comm.clock.now
