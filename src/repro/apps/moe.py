"""Skewed MoE token-exchange driver (expert-parallel ``Alltoallv``).

Mixture-of-Experts dispatch is the modern incarnation of the cluster-scale
all-to-all the PR-5 incast and PR-8 uplink machinery were built to price:
every rank routes its tokens to the experts that scored them, and a *hot*
expert — one whose gate wins far more tokens than the uniform share — turns
the exchange into a many-senders/one-receiver incast at that expert's
ingestion port.  The driver parameterizes exactly that skew:

* :func:`moe_counts` draws the per-(sender, expert) token routing matrix
  from a multinomial whose hot-expert weight is ``skew`` times the uniform
  weight — deterministic in ``MoESpec.seed``, identical on every rank (the
  SPMD discipline the collective needs);
* :func:`run_moe` sorts each rank's tokens by destination expert (the
  standard MoE dispatch permutation), describes one token as a strided
  vector datatype (activation rows in a pitched buffer — non-contiguous, so
  TEMPI's interposer compiles the exchange to a :class:`MessagePlan` and the
  wire traffic lands on the shared NIC ledgers), and runs the typed
  ``Alltoallv`` on a :class:`~repro.mpi.world.World`;
* :func:`moe_trace` records the same schedule as a replayable trace for
  :mod:`repro.apps.replay`.

The analytic twin is :func:`repro.apps.exchange_model.model_moe_exchange`;
``benchmarks/bench_moe.py`` sweeps the skew and pins the incast onset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose


@dataclass(frozen=True)
class MoESpec:
    """One expert-parallel dispatch round (one expert per rank)."""

    #: Tokens every rank routes per round.
    tokens_per_rank: int = 64
    #: Payload bytes of one token's activation row (must be even — the row
    #: is described as a two-block strided vector).
    token_bytes: int = 2048
    #: Pitch padding after each row (must be even and positive: the padding
    #: is what keeps the datatype non-contiguous, i.e. on TEMPI's fast path).
    token_pad: int = 64
    #: Hot-expert load factor: the hot expert's routing weight is ``skew``
    #: times every other expert's.  ``1.0`` is the uniform baseline.
    skew: float = 1.0
    #: Which expert (rank) is hot.
    hot_expert: int = 0
    #: Seed of the multinomial routing draw (see the ``moe_seed`` fixture).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tokens_per_rank < 0:
            raise ValueError(f"tokens_per_rank must be >= 0, got {self.tokens_per_rank}")
        if self.token_bytes <= 0 or self.token_bytes % 2:
            raise ValueError(f"token_bytes must be positive and even, got {self.token_bytes}")
        if self.token_pad <= 0 or self.token_pad % 2:
            raise ValueError(f"token_pad must be positive and even, got {self.token_pad}")
        if self.skew < 1.0:
            raise ValueError(f"skew must be >= 1.0, got {self.skew}")
        if self.hot_expert < 0:
            raise ValueError(f"hot_expert must be >= 0, got {self.hot_expert}")


def moe_counts(spec: MoESpec, nranks: int) -> np.ndarray:
    """The ``(sender, expert)`` token-routing matrix of one dispatch round.

    Row ``s`` is sender ``s``'s multinomial draw of ``tokens_per_rank``
    tokens over experts weighted ``skew : 1 : ... : 1`` (hot expert first in
    weight, not in position).  Deterministic in ``spec.seed`` and identical
    however many times it is evaluated — every rank computes the same matrix.
    """
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    weights = np.ones(nranks, dtype=np.float64)
    weights[spec.hot_expert % nranks] = spec.skew
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(spec.seed)  # simlint: disable=SIM001 -- seeded draw, identical on every rank and run
    counts = np.empty((nranks, nranks), dtype=np.int64)
    for sender in range(nranks):
        counts[sender] = rng.multinomial(spec.tokens_per_rank, probabilities)
    return counts


def token_datatype(spec: MoESpec):
    """One token's activation row: two half-row blocks in a pitched buffer.

    The pitch padding makes the type non-contiguous, which is what routes
    the exchange through TEMPI's pack kernels and the shared NIC ledgers
    instead of the system byte path.
    """
    half = spec.token_bytes // 2
    return Type_vector(2, half, half + spec.token_pad // 2, BYTE)


def token_fill(sender: int, expert: int) -> int:
    """The byte value stamped on every payload byte of one routed token."""
    return (sender * 31 + expert * 7) % 251


def _token_rows(buffer_data: np.ndarray, displ: int, count: int, spec: MoESpec, extent: int):
    """Yield the two payload block slices of each of ``count`` tokens."""
    half = spec.token_bytes // 2
    stride = half + spec.token_pad // 2
    for index in range(count):
        base = displ + index * extent
        yield buffer_data[base : base + half]
        yield buffer_data[base + stride : base + stride + half]


@dataclass(frozen=True)
class MoEResult:
    """One dispatch round's observables (per-rank lists, rank order)."""

    counts: np.ndarray
    clocks: list
    rank_ingest_stalls: list
    rank_contention_stalls: list
    collective_hits: int
    collective_fallbacks: int
    digests: list

    @property
    def completion_s(self) -> float:
        """The round's completion: the slowest rank's priced clock."""
        return max(self.clocks)

    @property
    def ingest_stalls(self) -> int:
        """Total arrivals delayed at ingestion ports, across all ranks."""
        return sum(self.rank_ingest_stalls)

    @property
    def contention_stalls(self) -> int:
        """Total injections delayed at NIC ports/links, across all ranks."""
        return sum(self.rank_contention_stalls)

    def hot_excess_stalls(self, hot_expert: int) -> float:
        """The incast signature: the hot expert's ingest stalls beyond the
        *mean* cold rank's — the uniform all-to-all background every rank
        sees.  Near zero at ``skew=1``; grows once the skew actually queues
        the hot ingestion port deeper than that background.
        """
        cold = [
            stalls
            for rank, stalls in enumerate(self.rank_ingest_stalls)
            if rank != hot_expert % len(self.rank_ingest_stalls)
        ]
        hot = self.rank_ingest_stalls[hot_expert % len(self.rank_ingest_stalls)]
        return hot - (sum(cold) / len(cold)) if cold else 0.0


def run_moe(
    nranks: int,
    spec: MoESpec,
    *,
    model,
    config: TempiConfig | None = None,
    ranks_per_node: int = 2,
    topology=None,
    verify: bool = False,
) -> MoEResult:
    """Run one skewed dispatch round on a fresh :class:`World`.

    Each rank sorts its tokens by destination expert, fills every token's
    payload with :func:`token_fill`, and runs one typed ``Alltoallv``
    through the interposer; ``verify=True`` additionally checks every
    received token's stamp against its sender.  Deterministic in
    ``spec.seed`` — two identical calls return bit-identical clocks.
    """
    counts = moe_counts(spec, nranks)

    def program(ctx):
        cfg = config if config is not None else TempiConfig()
        comm = interpose(ctx, cfg, model=model)
        datatype = comm.Type_commit(token_datatype(spec))
        extent = datatype.extent
        sendcounts = [int(c) for c in counts[ctx.rank]]
        recvcounts = [int(counts[peer][ctx.rank]) for peer in range(ctx.size)]
        senddispls = list(np.cumsum([0] + [c * extent for c in sendcounts[:-1]]).astype(int))
        recvdispls = list(np.cumsum([0] + [c * extent for c in recvcounts[:-1]]).astype(int))
        send = ctx.gpu.malloc(max(1, sum(sendcounts) * extent))
        recv = ctx.gpu.malloc(max(1, sum(recvcounts) * extent))
        for expert in range(ctx.size):
            for block in _token_rows(
                send.data, senddispls[expert], sendcounts[expert], spec, extent
            ):
                block[:] = token_fill(ctx.rank, expert)
        comm.Alltoallv(
            send, sendcounts, senddispls, recv, recvcounts, recvdispls,
            sendtypes=datatype, recvtypes=datatype,
        )
        if verify:
            for sender in range(ctx.size):
                for block in _token_rows(
                    recv.data, recvdispls[sender], recvcounts[sender], spec, extent
                ):
                    expected = token_fill(sender, ctx.rank)
                    if not np.all(block == expected):
                        raise AssertionError(
                            f"rank {ctx.rank} received a corrupt token from {sender}"
                        )
        stats = comm.stats
        digest = hashlib.sha256(recv.data.tobytes()).hexdigest()
        return (
            ctx.clock.now,
            stats.ingest_stalls,
            stats.contention_stalls,
            stats.collective_hits,
            stats.collective_fallbacks,
            digest,
        )

    kwargs = {"ranks_per_node": ranks_per_node}
    if topology is not None:
        kwargs["topology"] = topology
    rows = World(nranks, **kwargs).run(program)
    return MoEResult(
        counts=counts,
        clocks=[row[0] for row in rows],
        rank_ingest_stalls=[row[1] for row in rows],
        rank_contention_stalls=[row[2] for row in rows],
        collective_hits=sum(row[3] for row in rows),
        collective_fallbacks=sum(row[4] for row in rows),
        digests=[row[5] for row in rows],
    )


def moe_trace(spec: MoESpec, nranks: int, *, ranks_per_node: int = 2) -> dict:
    """The dispatch round as a replayable trace (:mod:`repro.apps.replay`)."""
    counts = moe_counts(spec, nranks)
    return {
        "version": 1,
        "nranks": nranks,
        "ranks_per_node": ranks_per_node,
        "ops": [
            {
                "op": "alltoallv",
                "counts": counts.tolist(),
                "item_bytes": spec.token_bytes,
                "item_pad": spec.token_pad,
            }
        ],
    }
