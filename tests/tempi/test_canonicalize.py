"""Tests for the canonicalisation passes (Sec. 3.2)."""

import pytest

from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_subarray,
    Type_vector,
)
from repro.mpi.datatype import BYTE, FLOAT, ORDER_C
from repro.tempi.canonicalize import (
    dense_folding,
    simplify,
    sort_streams,
    stream_elision,
    stream_flatten,
)
from repro.tempi.ir import dense, stream
from repro.tempi.translate import translate


class TestDenseFolding:
    def test_folds_matching_stride(self):
        # Stream of 10 elements, stride 4, over dense 4 bytes -> dense 40 bytes.
        ty, changed = dense_folding(stream(10, 4, dense(4)))
        assert changed
        assert ty.is_dense
        assert ty.data.extent == 40

    def test_keeps_offsets(self):
        ty, _ = dense_folding(stream(10, 4, dense(4, offset=3), offset=5))
        assert ty.data.offset == 8

    def test_does_not_fold_mismatched_stride(self):
        ty, changed = dense_folding(stream(10, 8, dense(4)))
        assert not changed
        assert ty.is_stream

    def test_applies_bottom_up(self):
        # The inner pair folds even though the outer stream stays.
        ty, changed = dense_folding(stream(3, 512, stream(10, 4, dense(4))))
        assert changed
        assert ty.is_stream
        assert ty.child.is_dense
        assert ty.child.data.extent == 40


class TestStreamElision:
    def test_child_stream_of_one_removed(self):
        ty, changed = stream_elision(stream(5, 100, stream(1, 7, dense(4), offset=2)))
        assert changed
        assert ty.data.count == 5
        assert ty.child.is_dense
        assert ty.child.data.offset == 2

    def test_unit_parent_removed(self):
        ty, changed = stream_elision(stream(1, 100, dense(8), offset=4))
        assert changed
        assert ty.is_dense
        assert ty.data.offset == 4

    def test_non_unit_streams_untouched(self):
        ty, changed = stream_elision(stream(5, 100, stream(2, 7, dense(3))))
        assert not changed
        assert ty.depth() == 3


class TestStreamFlatten:
    def test_chaining_strides_flatten(self):
        # parent stride 32 == child count 8 * child stride 4.
        ty, changed = stream_flatten(stream(3, 32, stream(8, 4, dense(2))))
        assert changed
        assert ty.data.count == 24
        assert ty.data.stride == 4
        assert ty.child.is_dense

    def test_offsets_accumulate(self):
        ty, _ = stream_flatten(stream(3, 32, stream(8, 4, dense(2), offset=6), offset=10))
        assert ty.data.offset == 16

    def test_non_chaining_strides_untouched(self):
        ty, changed = stream_flatten(stream(3, 100, stream(8, 4, dense(2))))
        assert not changed
        assert ty.data.count == 3


class TestSorting:
    def test_streams_ordered_by_stride_descending(self):
        out_of_order = stream(4, 16, stream(2, 512, dense(8)))
        ty, changed = sort_streams(out_of_order)
        assert changed
        strides = [level.data.stride for level in ty.levels() if level.is_stream]
        assert strides == [512, 16]

    def test_already_sorted_unchanged(self):
        ordered = stream(2, 512, stream(4, 16, dense(8)))
        _, changed = sort_streams(ordered)
        assert not changed

    def test_short_chains_skipped(self):
        _, changed = sort_streams(stream(4, 16, dense(8)))
        assert not changed


class TestSimplifyEquivalences:
    """Equivalent MPI constructions must canonicalise to the same Type."""

    def test_paper_row_constructions_agree(self):
        e0 = 100
        rows = [
            Type_contiguous(e0, FLOAT),
            Type_contiguous(e0 * 4, BYTE),
            Type_vector(1, e0, 1, FLOAT),
            Type_vector(e0, 4, 4, BYTE),
            Type_create_hvector(e0 * 4, 1, 1, BYTE),
            Type_create_subarray([512], [e0 * 4], [0], ORDER_C, BYTE),
        ]
        forms = {simplify(translate(t)).structure() for t in rows}
        assert len(forms) == 1
        assert forms.pop() == (("dense", 0, 400),)

    def test_plane_constructions_agree(self):
        e0, e1, a0 = 100, 13, 512
        planes = [
            Type_vector(e1, e0, a0 // 4, FLOAT),
            Type_create_subarray([512, a0], [e1, e0 * 4], [0, 0], ORDER_C, BYTE),
            Type_create_hvector(e1, 1, a0, Type_contiguous(e0, FLOAT)),
        ]
        forms = {simplify(translate(t)).structure() for t in planes}
        assert len(forms) == 1

    def test_cuboid_constructions_agree(self):
        e = (100, 13, 47)
        a = (512, 512, 1024)
        cuboids = [
            Type_create_subarray(
                [a[2], a[1], a[0]], [e[2], e[1], e[0] * 4], [0, 0, 0], ORDER_C, BYTE
            ),
            Type_create_hvector(
                e[2], 1, a[0] * a[1], Type_vector(e[1], e[0], a[0] // 4, FLOAT)
            ),
            Type_create_hvector(
                e[2],
                1,
                a[0] * a[1],
                Type_create_hvector(e[1], 1, a[0], Type_contiguous(e[0], FLOAT)),
            ),
        ]
        forms = {simplify(translate(t)).structure() for t in cuboids}
        assert len(forms) == 1

    def test_fully_contiguous_subarray_reduces_to_dense(self):
        t = Type_create_subarray([8, 16], [8, 16], [0, 0], ORDER_C, BYTE)
        canon = simplify(translate(t))
        assert canon.is_dense
        assert canon.data.extent == 128

    def test_simplify_preserves_total_bytes(self):
        t = Type_create_subarray([16, 8, 64], [7, 3, 24], [2, 1, 8], ORDER_C, BYTE)
        assert simplify(translate(t)).total_bytes() == t.size

    def test_simplify_does_not_mutate_input(self):
        ty = translate(Type_contiguous(10, FLOAT))
        before = ty.structure()
        simplify(ty)
        assert ty.structure() == before

    def test_offsets_preserved_for_offset_subarray(self):
        t = Type_create_subarray([8, 64], [2, 16], [3, 8], ORDER_C, BYTE)
        canon = simplify(translate(t))
        offsets = sum(level.data.offset for level in canon.levels())
        assert offsets == 3 * 64 + 8

    def test_idempotent(self):
        t = Type_create_subarray([16, 8, 64], [7, 3, 24], [0, 0, 0], ORDER_C, BYTE)
        once = simplify(translate(t))
        twice = simplify(once)
        assert once.structure() == twice.structure()
