"""Tests for kernel selection and word-size specialisation (Sec. 3.3)."""

import pytest

from repro.gpu.device import DeviceProperties
from repro.tempi.kernels import KernelSpec, select_kernel, select_word_size
from repro.tempi.strided_block import StridedBlock


class TestWordSize:
    def test_widest_word_dividing_block(self):
        assert select_word_size(StridedBlock(0, (400, 13), (1, 512))) == 16
        assert select_word_size(StridedBlock(0, (12, 4), (1, 64))) == 4
        assert select_word_size(StridedBlock(0, (6, 4), (1, 64))) == 2
        assert select_word_size(StridedBlock(0, (7, 4), (1, 64))) == 1

    def test_start_alignment_limits_word(self):
        assert select_word_size(StridedBlock(2, (16, 4), (1, 64))) == 2
        assert select_word_size(StridedBlock(3, (16, 4), (1, 64))) == 1

    def test_stride_alignment_limits_word(self):
        assert select_word_size(StridedBlock(0, (16, 4), (1, 68))) == 4
        assert select_word_size(StridedBlock(0, (16, 4), (1, 61))) == 1

    def test_contiguous_block_word(self):
        assert select_word_size(StridedBlock(0, (1024,), (1,))) == 16


class TestKernelSelection:
    def test_contiguous_uses_memcpy(self):
        spec = select_kernel(StridedBlock(0, (4096,), (1,)))
        assert spec.count_strategy == "memcpy"
        assert not spec.uses_kernel
        assert spec.dimensions == 1

    def test_2d_block_dimensions_are_powers_of_two(self):
        spec = select_kernel(StridedBlock(0, (400, 13), (1, 512)))
        assert spec.dimensions == 2
        x, y, z = spec.block_dim
        assert x & (x - 1) == 0 and y & (y - 1) == 0
        assert spec.threads_per_block <= 1024

    def test_2d_count_rides_grid_z(self):
        spec = select_kernel(StridedBlock(0, (8, 128), (1, 512)), count=7)
        assert spec.count_strategy == "grid-z"
        assert spec.grid_dim[2] >= 7

    def test_3d_uses_loop_strategy(self):
        spec = select_kernel(StridedBlock(0, (64, 13, 47), (1, 512, 262144)))
        assert spec.dimensions == 3
        assert spec.count_strategy == "loop"

    def test_grid_covers_object(self):
        block = StridedBlock(0, (400, 13), (1, 512))
        spec = select_kernel(block)
        x_elements = block.block_length // spec.word_size
        assert spec.grid_dim[0] * spec.block_dim[0] >= x_elements
        assert spec.grid_dim[1] * spec.block_dim[1] >= 13

    def test_thread_limit_respected_for_wide_objects(self):
        props = DeviceProperties(max_threads_per_block=256)
        spec = select_kernel(StridedBlock(0, (4096, 64), (1, 8192)), props)
        assert spec.threads_per_block <= 256

    def test_block_dim_limits_respected(self):
        props = DeviceProperties(max_block_dim=(64, 4, 2))
        spec = select_kernel(StridedBlock(0, (4096, 64, 16), (1, 8192, 1 << 20)), props)
        assert spec.block_dim[0] <= 64
        assert spec.block_dim[1] <= 4
        assert spec.block_dim[2] <= 2

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            select_kernel(StridedBlock(0, (8, 2), (1, 64)), count=0)

    def test_word_size_recorded_in_spec(self):
        spec = select_kernel(StridedBlock(0, (400, 13), (1, 512)))
        assert spec.word_size == 16

    def test_kernelspec_threads_property(self):
        spec = KernelSpec(2, 4, (32, 8, 1), (1, 2, 1), "grid-z")
        assert spec.threads_per_block == 256
        assert spec.uses_kernel
