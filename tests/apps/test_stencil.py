"""Tests for the functional 3-D stencil halo exchange."""

import pytest

from repro.apps.halo import HaloSpec
from repro.apps.stencil import HaloExchange, HaloTiming, aggregate_timings
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose

SMALL = HaloSpec(nx=6, ny=6, nz=6, radius=2, fields=2, bytes_per_field=4)


def run_exchange(nranks, *, use_tempi, summit_model=None, spec=SMALL, iterations=1):
    def program(ctx):
        comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
        app = HaloExchange(ctx, comm, spec)
        timings = app.run(iterations=iterations, verify=True)
        return timings

    world = World(nranks, ranks_per_node=min(nranks, 6))
    return world.run(program)


class TestTimingContainers:
    def test_total(self):
        timing = HaloTiming(1.0, 2.0, 3.0)
        assert timing.total_s == 6.0

    def test_aggregate_takes_maxima(self):
        timings = [HaloTiming(1.0, 5.0, 1.0), HaloTiming(2.0, 1.0, 4.0)]
        combined = aggregate_timings(timings)
        assert (combined.pack_s, combined.comm_s, combined.unpack_s) == (2.0, 5.0, 4.0)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_timings([])


class TestSingleRank:
    """With one rank every neighbour is the rank itself (fully periodic)."""

    def test_baseline_exchange_verifies(self):
        run_exchange(1, use_tempi=False)

    def test_tempi_exchange_verifies(self, summit_model):
        run_exchange(1, use_tempi=True, summit_model=summit_model)

    def test_phase_times_positive(self):
        timings = run_exchange(1, use_tempi=False)[0]
        assert timings[0].pack_s > 0
        assert timings[0].unpack_s > 0


class TestMultiRank:
    def test_two_ranks_baseline(self):
        run_exchange(2, use_tempi=False)

    def test_eight_ranks_baseline(self):
        run_exchange(8, use_tempi=False)

    def test_eight_ranks_tempi(self, summit_model):
        run_exchange(8, use_tempi=True, summit_model=summit_model)

    def test_mismatched_grid_rejected(self):
        from repro.apps.halo import RankGrid

        def program(ctx):
            with pytest.raises(ValueError):
                HaloExchange(ctx, ctx.comm, SMALL, grid=RankGrid((2, 1, 1)))
            return True

        assert all(World(4, ranks_per_node=4).run(program))

    def test_invalid_iterations_rejected(self):
        def program(ctx):
            app = HaloExchange(ctx, ctx.comm, SMALL)
            with pytest.raises(ValueError):
                app.run(iterations=0)
            return True

        assert all(World(1).run(program))


class TestTempiSpeedsUpExchange:
    def test_pack_phase_much_faster_with_tempi(self, summit_model):
        """The Fig. 12 mechanism: pack/unpack collapse, communication unchanged."""
        baseline = run_exchange(2, use_tempi=False)
        accelerated = run_exchange(2, use_tempi=True, summit_model=summit_model)
        base = aggregate_timings([t for rank in baseline for t in rank])
        fast = aggregate_timings([t for rank in accelerated for t in rank])
        assert base.pack_s / fast.pack_s > 5
        assert base.unpack_s / fast.unpack_s > 5
        assert base.total_s > fast.total_s

    def test_repeated_iterations_stay_correct(self, summit_model):
        timings = run_exchange(2, use_tempi=True, summit_model=summit_model, iterations=3)
        assert all(len(per_rank) == 3 for per_rank in timings)


class TestNeighborMode:
    """The exchange rewired onto the datatype-carrying neighbour collective."""

    def run_neighbor(self, nranks, *, use_tempi, summit_model=None, iterations=1):
        def program(ctx):
            comm = interpose(ctx, model=summit_model) if use_tempi else ctx.comm
            app = HaloExchange(ctx, comm, SMALL, mode="neighbor")
            return app.run(iterations=iterations, verify=True)

        world = World(nranks, ranks_per_node=min(nranks, 6))
        return world.run(program)

    def test_invalid_mode_rejected(self):
        def program(ctx):
            with pytest.raises(ValueError):
                HaloExchange(ctx, ctx.comm, SMALL, mode="telepathy")
            return True

        assert all(World(1).run(program))

    def test_baseline_neighbor_exchange_verifies(self):
        self.run_neighbor(1, use_tempi=False)
        self.run_neighbor(8, use_tempi=False)

    def test_tempi_neighbor_exchange_verifies(self, summit_model):
        self.run_neighbor(8, use_tempi=True, summit_model=summit_model)

    def test_all_time_reported_as_communication(self):
        timings = self.run_neighbor(2, use_tempi=False)[0]
        assert timings[0].pack_s == 0.0
        assert timings[0].unpack_s == 0.0
        assert timings[0].comm_s > 0.0

    def test_tempi_neighbor_faster_than_baseline(self, summit_model):
        # Second iteration: staging buffers and model queries come from the
        # caches, the steady state the paper's latency comparisons describe.
        baseline = self.run_neighbor(2, use_tempi=False, iterations=2)
        accelerated = self.run_neighbor(2, use_tempi=True, summit_model=summit_model, iterations=2)
        base = aggregate_timings([rank[-1] for rank in baseline])
        fast = aggregate_timings([rank[-1] for rank in accelerated])
        assert base.total_s / fast.total_s > 5
