"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (required by PEP 660 editable builds) is unavailable and pip falls
back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
