"""``python -m tools.analyze`` — run the simlint pass from the repo root."""

from tools.analyze.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
