"""Unit tests for the shared virtual NIC timeline (both ends of the wire)."""

import random
import threading

import pytest

from repro.machine.network import DEFAULT_WIRE_OVERLAP
from repro.machine.nic import IngestRecord, NicError, NicTimeline


def records_for(reservations, wire_s):
    """Ingest records mirroring a list of (source, reservation) pairs."""
    return [
        IngestRecord(
            post_time=r.start, source=source, seq=r.seq, wire_s=wire_s, arrival=r.arrival
        )
        for source, r in reservations
    ]


class TestReserve:
    def test_free_port_starts_at_ready(self):
        nic = NicTimeline()
        reservation = nic.reserve(0, 1, ready=2.0, wire_s=1.0)
        assert reservation.start == 2.0
        assert reservation.arrival == 3.0
        assert not reservation.stalled
        assert reservation.stalled_s == 0.0

    def test_distinct_peers_serialise_at_wire_overlap(self):
        nic = NicTimeline()
        first = nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        second = nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        assert first.start == 0.0
        # The port frees after the overlap fraction, not the full wire time.
        assert second.start == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)
        assert second.stalled
        assert second.stalled_s == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)

    def test_same_peer_serialises_fully(self):
        nic = NicTimeline()
        first = nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        repeat = nic.reserve(0, 1, ready=0.0, wire_s=4.0)
        # The (0, 1) link is busy until the first arrival, beyond the port.
        assert repeat.start == pytest.approx(first.arrival)

    def test_sources_do_not_contend(self):
        nic = NicTimeline()
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        other = nic.reserve(1, 2, ready=0.0, wire_s=10.0)
        # Injection ports are per source rank; receive-side contention is
        # deliberately unmodelled (determinism).
        assert other.start == 0.0

    def test_ready_after_port_does_not_stall(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=1.0)
        late = nic.reserve(0, 2, ready=100.0, wire_s=1.0)
        assert late.start == 100.0
        assert not late.stalled

    def test_counters_and_accessors(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        assert nic.reservations == 2
        assert nic.stalls == 1
        assert nic.stalled_s > 0.0
        assert nic.port_free_at(0) == pytest.approx(
            DEFAULT_WIRE_OVERLAP * 10.0 + DEFAULT_WIRE_OVERLAP * 10.0
        )
        assert nic.link_free_at(0, 1) == pytest.approx(10.0)
        assert nic.port_free_at(5) == 0.0

    def test_negative_wire_rejected(self):
        nic = NicTimeline()
        with pytest.raises(NicError):
            nic.reserve(0, 1, ready=0.0, wire_s=-1.0)

    def test_bad_overlap_rejected(self):
        with pytest.raises(NicError):
            NicTimeline(wire_overlap=0.0)
        with pytest.raises(NicError):
            NicTimeline(wire_overlap=1.5)


class TestLedger:
    def test_in_flight_counts_occupancy(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0, nbytes=64)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0, nbytes=64)
        assert nic.in_flight(1.0) == 1  # second starts at 6.5
        assert nic.in_flight(7.0) == 2
        assert nic.in_flight(20.0) == 0
        assert nic.in_flight(7.0, source=0) == 2
        assert nic.in_flight(7.0, source=3) == 0

    def test_ledger_records_and_bounds(self):
        nic = NicTimeline(ledger_limit=2)
        for peer in (1, 2, 3):
            nic.reserve(0, peer, ready=0.0, wire_s=1.0, nbytes=peer)
        records = nic.ledger()
        assert len(records) == 2
        assert [r.dest for r in records] == [2, 3]
        assert nic.ledger(source=7) == []

    def test_reset_forgets_everything(self):
        nic = NicTimeline()
        nic.reserve(0, 1, ready=0.0, wire_s=10.0)
        nic.reserve(0, 2, ready=0.0, wire_s=10.0)
        nic.reset()
        assert nic.reservations == 0
        assert nic.stalls == 0
        assert nic.port_free_at(0) == 0.0
        assert nic.ledger() == []
        fresh = nic.reserve(0, 3, ready=0.0, wire_s=1.0)
        assert fresh.start == 0.0


class TestIngest:
    """The receive-side mirror: ingestion ports and deterministic ordering."""

    def test_lone_message_lands_at_its_arrival(self):
        nic = NicTimeline()
        reservation = nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        [landing] = nic.ingest(0, records_for([(1, reservation)], 10.0))
        assert landing == reservation.arrival
        assert nic.ingest_stalls == 0
        assert nic.ingest_free_at(0) == pytest.approx(DEFAULT_WIRE_OVERLAP * 10.0)

    def test_incast_serialises_on_the_ingestion_port(self):
        nic = NicTimeline()
        # Three senders, idle injection ports: all arrivals coincide.
        reservations = [(s, nic.reserve(s, 0, ready=0.0, wire_s=10.0)) for s in (1, 2, 3)]
        landings = nic.ingest(0, records_for(reservations, 10.0))
        assert landings[0] == 10.0
        assert landings[1] == pytest.approx(10.0 + DEFAULT_WIRE_OVERLAP * 10.0)
        assert landings[2] == pytest.approx(10.0 + 2 * DEFAULT_WIRE_OVERLAP * 10.0)
        assert nic.ingest_stalls == 2
        assert nic.ingest_stalled_s == pytest.approx(3 * DEFAULT_WIRE_OVERLAP * 10.0)

    def test_port_spaced_arrivals_pass_undelayed(self):
        """One sender's stream to several peers is already port-spaced; its
        mirror (several senders whose posts are spaced the same way) must
        flow through the receiver's port without a single stall."""
        nic = NicTimeline()
        reservations = []
        for index, source in enumerate((1, 2, 3, 4)):
            ready = index * DEFAULT_WIRE_OVERLAP * 10.0
            reservations.append((source, nic.reserve(source, 0, ready=ready, wire_s=10.0)))
        landings = nic.ingest(0, records_for(reservations, 10.0))
        assert landings == [r.arrival for _, r in reservations]
        assert nic.ingest_stalls == 0

    def test_batch_order_is_key_order_not_input_order(self):
        """Shuffled input prices identically: the batch is served in
        (post_time, source, seq) order whatever order envelopes were
        collected in — the determinism the executor relies on."""
        nic = NicTimeline()
        reservations = [(s, nic.reserve(s, 0, ready=0.0, wire_s=4.0)) for s in (1, 2, 3, 4)]
        records = records_for(reservations, 4.0)
        reference = dict(zip((r.key for r in records), NicTimeline().ingest(0, records)))
        for seed in (1, 7, 42):
            shuffled = records[:]
            random.Random(seed).shuffle(shuffled)
            fresh = NicTimeline()
            landings = fresh.ingest(0, shuffled)
            assert {r.key: t for r, t in zip(shuffled, landings)} == reference

    def test_commits_advance_the_cursor_across_batches(self):
        nic = NicTimeline()
        first = nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        second = nic.reserve(2, 0, ready=0.0, wire_s=10.0)
        [l1] = nic.ingest(0, records_for([(1, first)], 10.0))
        [l2] = nic.ingest(0, records_for([(2, second)], 10.0))
        assert l1 == 10.0
        assert l2 == pytest.approx(10.0 + DEFAULT_WIRE_OVERLAP * 10.0)

    def test_zero_wire_records_pass_through(self):
        nic = NicTimeline()
        record = IngestRecord(post_time=1.0, source=1, seq=0, wire_s=0.0, arrival=5.0)
        assert nic.ingest(0, [record]) == [5.0]
        assert nic.ingests == 0
        assert nic.ingest_free_at(0) == 0.0

    def test_preview_does_not_commit(self):
        nic = NicTimeline()
        reservation = nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        before = nic.ingest_preview(0, reservation.arrival, 10.0)
        assert before == reservation.arrival
        assert nic.ingest_free_at(0) == 0.0  # unchanged
        nic.ingest(0, records_for([(1, reservation)], 10.0))
        # A second message of the same shape would now queue.
        assert nic.ingest_preview(0, reservation.arrival, 10.0) == pytest.approx(
            reservation.arrival + DEFAULT_WIRE_OVERLAP * 10.0
        )

    def test_ingestion_never_touches_send_side_state(self):
        """The inject-only pin, at the unit level: ingesting cannot move any
        injection port or link cursor."""
        nic = NicTimeline()
        reservations = [(s, nic.reserve(s, 0, ready=0.0, wire_s=10.0)) for s in (1, 2)]
        ports = {s: nic.port_free_at(s) for s in (1, 2)}
        links = {s: nic.link_free_at(s, 0) for s in (1, 2)}
        nic.ingest(0, records_for(reservations, 10.0))
        assert {s: nic.port_free_at(s) for s in (1, 2)} == ports
        assert {s: nic.link_free_at(s, 0) for s in (1, 2)} == links

    def test_reset_clears_ingestion_state(self):
        nic = NicTimeline()
        reservation = nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        nic.ingest(0, records_for([(1, reservation)], 10.0))
        nic.reset()
        assert nic.ingests == 0
        assert nic.ingest_stalls == 0
        assert nic.ingest_free_at(0) == 0.0
        assert nic.pending_ingest(0) == 0


class TestIngestBacklog:
    """The advisory posted-but-not-yet-ingested signal selection prices."""

    def test_pending_posts_show_up_as_backlog(self):
        nic = NicTimeline()
        for source in (1, 2, 3):
            nic.reserve(source, 0, ready=0.0, wire_s=10.0)
        assert nic.pending_ingest(0) == 3
        # Replay: each message holds the port for an overlap fraction of its
        # wire time, aligned at its (shared) post time.
        assert nic.ingest_backlog(0, now=0.0) == pytest.approx(
            3 * DEFAULT_WIRE_OVERLAP * 10.0
        )
        # Far in the future everything has drained (and is pruned).
        assert nic.ingest_backlog(0, now=100.0) == 0.0

    def test_commits_consume_pending(self):
        nic = NicTimeline()
        reservation = nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        assert nic.pending_ingest(0) == 1
        nic.ingest(0, records_for([(1, reservation)], 10.0))
        assert nic.pending_ingest(0) == 0

    def test_future_posts_are_invisible(self):
        """A rank can only know about traffic from its virtual past: records
        whose post_time has not passed on the caller's clock are excluded."""
        nic = NicTimeline()
        nic.reserve(1, 0, ready=50.0, wire_s=10.0)  # posts at t=50
        assert nic.ingest_backlog(0, now=10.0) == 0.0
        assert nic.ingest_backlog(0, now=51.0) > 0.0

    def test_backlog_is_a_pure_read(self):
        """Queries never consume records, whatever clock they carry — so
        concurrent readers with different clocks cannot disturb each other
        (the consumption happens at ingest time, in receiver program order)."""
        nic = NicTimeline()
        nic.reserve(1, 0, ready=0.0, wire_s=10.0)
        assert nic.ingest_backlog(0, now=100.0) == 0.0  # drained from here...
        assert nic.pending_ingest(0) == 1  # ...but not consumed
        assert nic.ingest_backlog(0, now=0.0) == pytest.approx(
            DEFAULT_WIRE_OVERLAP * 10.0
        )

    def test_commit_prunes_records_drained_behind_the_cursor(self):
        """A record consumed on another path (a system receive) is dropped at
        the next commit once the committed cursor has passed it."""
        nic = NicTimeline()
        stray = nic.reserve(1, 0, ready=0.0, wire_s=1.0)  # never ingested
        assert stray.arrival == 1.0
        late = nic.reserve(2, 0, ready=50.0, wire_s=10.0)
        nic.ingest(0, records_for([(2, late)], 10.0))
        assert nic.pending_ingest(0) == 0  # the stray was pruned at commit

    def test_inject_only_reservations_skip_the_ledger(self):
        nic = NicTimeline()
        nic.reserve(1, 0, ready=0.0, wire_s=10.0, ingest=False)
        assert nic.pending_ingest(0) == 0
        assert nic.ingest_backlog(0, now=0.0) == 0.0

    def test_pending_is_bounded(self):
        nic = NicTimeline(pending_limit=4)
        for index in range(10):
            nic.reserve(1, 0, ready=float(index), wire_s=0.5)
        assert nic.pending_ingest(0) <= 4

    def test_per_source_seqs_are_deterministic(self):
        nic = NicTimeline()
        first = nic.reserve(3, 0, ready=0.0, wire_s=1.0)
        second = nic.reserve(3, 1, ready=0.0, wire_s=1.0)
        other = nic.reserve(4, 0, ready=0.0, wire_s=1.0)
        assert (first.seq, second.seq) == (0, 1)
        assert other.seq == 0  # counters are per source
        assert nic.next_seq(3) == 2


class TestThreadSafety:
    def test_concurrent_sources_keep_consistent_ports(self):
        nic = NicTimeline()
        errors = []

        def inject(rank):
            try:
                for _ in range(200):
                    nic.reserve(rank, (rank + 1) % 8, ready=0.0, wire_s=0.01)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=inject, args=(rank,)) for rank in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert nic.reservations == 8 * 200
        # Every rank sent 200 messages to one peer: the link rule serialises
        # them end to end, so each start is 0.01 after the previous and the
        # port frees an overlap-fraction after the last start.
        expected = 199 * 0.01 + DEFAULT_WIRE_OVERLAP * 0.01
        for rank in range(8):
            assert nic.port_free_at(rank) == pytest.approx(expected)
