"""Tests for machine specifications."""

import pytest

from repro.gpu.cost_model import GpuCostModel
from repro.machine.spec import SUMMIT, InterconnectSpec, MachineSpec, NodeSpec, summit_like


class TestInterconnectSpec:
    def test_transfer_time_is_latency_plus_bandwidth(self):
        link = InterconnectSpec("test", 1e-6, 1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_per_message_overhead_included(self):
        link = InterconnectSpec("test", 1e-6, 1e9, per_message_overhead_s=0.5e-6)
        assert link.transfer_time(0) == pytest.approx(1.5e-6)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InterconnectSpec("bad", -1e-6, 1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            InterconnectSpec("bad", 1e-6, 0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            InterconnectSpec("test", 1e-6, 1e9).transfer_time(-1)


class TestSummitPreset:
    def test_six_gpus_per_node(self):
        assert SUMMIT.node.gpus == 6
        assert SUMMIT.ranks_per_node_max == 6

    def test_cpu_floor_below_gpu_floor(self):
        """Fig. 9a: ~1.3 us host path vs ~6 us CUDA-aware path."""
        assert SUMMIT.inter_cpu.latency_s < SUMMIT.inter_gpu.latency_s
        assert SUMMIT.inter_cpu.latency_s == pytest.approx(1.3e-6)
        assert SUMMIT.inter_gpu.latency_s == pytest.approx(6.0e-6)

    def test_eager_threshold_positive(self):
        assert SUMMIT.eager_threshold > 0

    def test_max_nodes_matches_summit(self):
        assert SUMMIT.max_nodes == 4608

    def test_with_overrides_creates_copy(self):
        other = SUMMIT.with_overrides(eager_threshold=1)
        assert other.eager_threshold == 1
        assert SUMMIT.eager_threshold != 1


class TestSummitLike:
    def test_plain_call_equals_preset_values(self):
        machine = summit_like()
        assert machine.inter_cpu.latency_s == SUMMIT.inter_cpu.latency_s

    def test_gpu_override(self):
        cheap = GpuCostModel(kernel_launch_s=0.0)
        machine = summit_like(gpu=cheap)
        assert machine.node.gpu.kernel_launch_s == 0.0

    def test_network_override(self):
        slow = InterconnectSpec("slow", 100e-6, 1e9)
        machine = summit_like(inter_cpu=slow)
        assert machine.inter_cpu.latency_s == pytest.approx(100e-6)

    def test_eager_override(self):
        machine = summit_like(eager_threshold=123)
        assert machine.eager_threshold == 123


class TestNodeSpec:
    def test_defaults(self):
        node = NodeSpec()
        assert node.cpus == 2
        assert node.gpus == 6

    def test_intra_node_paths_faster_than_inter_node(self):
        machine = MachineSpec(name="m")
        assert machine.node.intra_cpu.latency_s < machine.inter_cpu.latency_s + 1e-6
        assert machine.node.gpu_gpu.bandwidth_Bps > machine.inter_gpu.bandwidth_Bps
