"""Simulated-throughput harness for the event-driven fast path.

The simulator's wall-clock cost lives in its control plane: compiling a
typed collective into a :class:`~repro.tempi.plan.MessagePlan` (validation,
section building, method selection) and pricing each wire message through
the shared :class:`~repro.machine.nic.NicTimeline`.  This module drives
exactly that path — every rank posts one ``Ialltoallv``-shaped halo
exchange per round, each post is reserved on the shared NIC and the
arrivals are ingested at their destinations — and reports **simulated
messages per wall-clock second** across three legs:

``eager``
    plan cache and selection memo off, the pre-fast-path behaviour;
``cached``
    both caches on, scalar per-message booking;
``batched``
    caches on *and* the whole round booked through the vectorized batch
    kernels (:meth:`~repro.machine.nic.NicTimeline.reserve_batch` and
    :meth:`~repro.machine.nic.NicTimeline.ingest_batch_vec`) — one numpy
    pass per round instead of one Python call per message.

All legs price identically — the caches replay the selection transcript
through the live selector and the batch kernels perform the scalar
pricing arithmetic operation-for-operation, so every clock charge and
cursor matches the eager path bit for bit (pinned by
``tests/property/test_property_fastpath.py`` and the batch-booking
property tests, which compare :meth:`HaloDriver.digest` across legs).
The harness also reports the NIC's peak resident ledger footprint
(``peak_pending`` records plus the fixed struct-array ring), the
compact-ledger half of the fast path.

``benchmarks/bench_sim_throughput.py`` wraps this into the CLI benchmark
that writes ``BENCH_sim.json``; ``python -m repro.cli bench sim-throughput``
is the console entry point.
"""

from __future__ import annotations

import cProfile
import gc
import io
import pstats
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.machine.nic import IngestRecord
from repro.machine.spec import SUMMIT
from repro.machine.topology import TopologySpec
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.config import TempiConfig
from repro.tempi.interposer import interpose
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

__all__ = [
    "HALO_DEGREE",
    "SMOKE_RANKS",
    "FULL_RANKS",
    "EAGER_MAX_RANKS",
    "EAGER_CONFIG",
    "CACHED_CONFIG",
    "FABRIC_SPEC",
    "ThroughputResult",
    "HaloDriver",
    "drive",
    "profile_drive",
    "default_model",
    "run_sweep",
    "check_sweep",
    "compare_baseline",
    "render_table",
]

#: 2-D stencil halo: each rank exchanges with 4 neighbours per round.
HALO_DEGREE = 4
#: Rank sweep for the CI smoke run.
SMOKE_RANKS = (256, 512, 1024)
#: Rank sweep for the full run.
FULL_RANKS = (256, 512, 1024, 2048, 4096, 8192)
#: Largest rank count the eager (recompile-every-round) leg still runs at;
#: above it a single eager round costs minutes of wall-clock for a number
#: the smaller points already establish, so the sweep records ``None``.
EAGER_MAX_RANKS = 2048

#: The pre-fast-path control plane: recompile and reselect every round.
EAGER_CONFIG = TempiConfig(plan_cache=False, selection_memo=False)
#: The fast path: plan-template cache plus retained selection memo.
CACHED_CONFIG = TempiConfig()

#: The hierarchical sweep leg (``--topology fabric``): per-rank NVLink
#: islands, one shared NIC rail per node and 8-node leaves behind a 4x
#: oversubscribed spine, so every post resolves a path and cross-leaf
#: reservations bind the shared uplink ledgers.
FABRIC_SPEC = TopologySpec(
    ranks_per_node=2, island_size=1, rails_per_node=1,
    leaf_radix=8, oversubscription=4.0,
)

# The halo payload: 8 strided 32 B blocks per neighbour (a small 2-D face).
_BLOCKS, _BLOCK_BYTES, _STRIDE = 8, 32, 64

#: Booking modes :class:`HaloDriver` accepts.
_BOOKING_MODES = ("scalar", "batched")


@dataclass(frozen=True)
class ThroughputResult:
    """One (rank count, config) measurement."""

    nranks: int
    iters: int
    messages: int
    wall_s: float
    messages_per_s: float
    peak_pending: int
    ledger_len: int
    ledger_nbytes: int
    plan_cache_hits: int
    plan_cache_misses: int
    selection_memo_hits: int
    selection_memo_misses: int


def _neighbors(rank: int, size: int, degree: int) -> list[int]:
    """The ``degree`` nearest ring neighbours of ``rank`` (the halo stencil)."""
    offsets = range(-(degree // 2), degree // 2 + 1)
    return sorted({(rank + d) % size for d in offsets if d} - {rank})


class HaloDriver:
    """One halo-exchange workload, steppable round by round.

    Builds a ``nranks``-rank world where every rank compiles one sparse
    ``alltoallv`` against its ``degree`` ring neighbours per round, reserves
    each post on the shared NIC and ingests the arrivals per destination.
    The collective is *compact*: each rank's peer list names only its
    neighbours and its buffers hold only those slots (``degree`` extents,
    not one per rank), so the per-round compile cost and the buffer
    footprint stay O(degree) — at 8192 ranks the dense layout would need
    tens of gigabytes of simulated device memory and hash O(nranks) cache
    keys per compile.

    ``booking`` selects how the round's wire slots are priced:

    ``"scalar"``
        one :meth:`~repro.machine.nic.NicTimeline.reserve` call per post and
        one :meth:`~repro.machine.nic.NicTimeline.ingest` call per
        destination — the per-message control plane;
    ``"batched"``
        the whole round in one
        :meth:`~repro.machine.nic.NicTimeline.reserve_batch` call and one
        :meth:`~repro.machine.nic.NicTimeline.ingest_batch_vec` call
        (hierarchical topologies route per-path, so their reservations take
        the kernel's serial in-lock path and their rail-carrying ingest
        records the scalar API).

    Both modes compile every rank's plan every round — the clock charges
    *are* the workload — and price bit-identically: :meth:`digest` over a
    scalar and a batched driver of the same shape must agree exactly, which
    the batch-booking property tests pin.
    """

    def __init__(
        self,
        nranks: int,
        config: TempiConfig,
        model: PerformanceModel,
        *,
        degree: int = HALO_DEGREE,
        topology: Optional[TopologySpec] = None,
        booking: str = "scalar",
    ) -> None:
        if booking not in _BOOKING_MODES:
            raise ValueError(f"unknown booking mode {booking!r}; expected one of {_BOOKING_MODES}")
        self.nranks = nranks
        self.degree = degree
        self.booking = booking
        self.world = World(nranks, ranks_per_node=2, topology=topology)
        self.topo = self.world.topology if self.world.topology.hierarchical else None
        self.nic = self.world.nic
        self._setup: list[tuple] = []
        neighbor_rows: list[list[int]] = []
        for ctx in self.world.contexts:
            comm = interpose(ctx, config, model=model)
            datatype = comm.Type_commit(Type_vector(_BLOCKS, _BLOCK_BYTES, _STRIDE, BYTE))
            peers = _neighbors(ctx.rank, nranks, degree)
            counts = (1,) * len(peers)
            displs = tuple(slot * datatype.extent for slot in range(len(peers)))
            span = (len(peers) - 1) * datatype.extent + datatype.ub
            send = ctx.gpu.malloc(span)
            recv = ctx.gpu.malloc(span)
            self._setup.append(
                (ctx, comm, datatype, tuple(peers), counts, displs, send, recv, {})
            )
            neighbor_rows.append(peers)
        if booking == "batched":
            self._init_batched(neighbor_rows)
        # Per-message wire times and payload size, learned from the first
        # round's plans (message_time is a pure model query, so when it is
        # asked does not affect any clock).
        self._wire_mat: Optional[np.ndarray] = None
        self._nbytes: Optional[int] = None

    # ------------------------------------------------------------- batched prep
    def _init_batched(self, neighbor_rows: list[list[int]]) -> None:
        """Precompute the round-invariant arrays of the batched booking leg."""
        n, k = self.nranks, self.degree
        if any(len(row) != k for row in neighbor_rows):
            raise ValueError(
                f"batched booking needs a rectangular halo: every rank must have "
                f"{k} neighbours (nranks={n} is too small for degree={k})"
            )
        self._sources = np.arange(n, dtype=np.int64)
        self._dest_mat = np.asarray(neighbor_rows, dtype=np.int64)
        # Freeze the round-invariant arrays: the NIC's frozen-shape fast
        # lane only engages for read-only inputs (whose contents provably
        # cannot drift between rounds).
        self._sources.flags.writeable = False
        self._dest_mat.flags.writeable = False
        # Destinations in first-appearance order of the row-major post scan —
        # the same order the scalar leg's per-destination dict accumulates
        # them in, so the global ingest stall folds run identically.
        buckets: dict[int, list[tuple[int, int]]] = {}
        for i, row in enumerate(neighbor_rows):
            for j, peer in enumerate(row):
                buckets.setdefault(peer, []).append((i, j))
        if any(len(hits) != k for hits in buckets.values()):
            raise ValueError("batched booking needs a symmetric halo (k records per rank)")
        order = list(buckets)
        self._ingest_dests = np.asarray(order, dtype=np.int64)
        self._ingest_dests.flags.writeable = False
        self._gather_rows = np.asarray(
            [[i for i, _ in buckets[d]] for d in order], dtype=np.int64
        )
        self._gather_cols = np.asarray(
            [[j for _, j in buckets[d]] for d in order], dtype=np.int64
        )
        self._nows = np.empty(n, dtype=np.float64)
        # Flat (bound-method, clock, args) rows keep the per-rank compile
        # loop free of per-round tuple unpacking.
        self._compile_rows = [
            (
                comm._compile_collective,
                ctx.clock,
                ("alltoallv", peers, send, counts, displs, datatype,
                 recv, counts, displs, datatype),
            )
            for ctx, comm, datatype, peers, counts, displs, send, recv, _ in self._setup
        ]
        self._paths = None
        self._rails: Optional[list[list[Optional[tuple]]]] = None
        if self.topo is not None:
            topo = self.topo
            self._paths = [
                [topo.resolve(i, peer, device_buffers=True) for peer in row]
                for i, row in enumerate(neighbor_rows)
            ]
            self._rails = [
                [
                    topo.rail_key(peer) if not topo.same_node(i, peer) else None
                    for peer in row
                ]
                for i, row in enumerate(neighbor_rows)
            ]

    # ------------------------------------------------------------------ rounds
    def round(self) -> int:
        """Run one exchange round; returns the number of messages posted."""
        if self.booking == "batched":
            return self._round_batched()
        return self._round_scalar()

    def _round_scalar(self) -> int:
        """Compile, reserve and ingest one round through the scalar calls."""
        posted = 0
        topo = self.topo
        nic = self.nic
        inbound: dict[int, list[IngestRecord]] = {}
        for ctx, comm, datatype, peers, counts, displs, send, recv, wires in self._setup:
            plan = comm._compile_collective(
                "alltoallv", peers,
                send, counts, displs, datatype,
                recv, counts, displs, datatype,
                nonblocking=True,
            )
            now = ctx.clock.now
            rank = ctx.rank
            for post in plan.post_stages:
                wire_s = wires.get(post.peer)
                if wire_s is None:
                    wires[post.peer] = wire_s = comm._message_time(post.nbytes, post.peer, True)
                path = None
                rail = None
                if topo is not None:
                    path = topo.resolve(rank, post.peer, device_buffers=True)
                    if not topo.same_node(rank, post.peer):
                        rail = topo.rail_key(post.peer)
                reservation = nic.reserve(rank, post.peer, now, wire_s, post.nbytes,
                                          path=path)
                inbound.setdefault(post.peer, []).append(
                    IngestRecord(reservation.start, rank, reservation.seq,
                                 wire_s, reservation.arrival, rail)
                )
                posted += 1
        for dest, records in inbound.items():
            nic.ingest(dest, records)
        return posted

    def _learn_round_shape(self, rank: int, plan, comm) -> None:
        """Fill the wire matrix row of ``rank`` from its first compiled plan."""
        assert self._wire_mat is not None
        row = self._dest_mat[rank]
        posts = plan.post_stages
        if len(posts) != len(row):
            raise RuntimeError(
                f"rank {rank}: plan posts {len(posts)} messages, halo expects {len(row)}"
            )
        for j, post in enumerate(posts):
            if post.peer != int(row[j]):
                raise RuntimeError(
                    f"rank {rank}: post {j} targets {post.peer}, halo expects {int(row[j])}"
                )
            if self._nbytes is None:
                self._nbytes = post.nbytes
            elif post.nbytes != self._nbytes:
                raise RuntimeError("batched booking needs a homogeneous halo payload")
            self._wire_mat[rank, j] = comm._message_time(post.nbytes, post.peer, True)

    def _round_batched(self) -> int:
        """Compile every rank, then book the whole round in batch kernels."""
        n, k = self.nranks, self.degree
        learn = self._wire_mat is None
        if learn:
            self._wire_mat = np.empty((n, k), dtype=np.float64)
            for i, (ctx, comm, datatype, peers, counts, displs, send, recv, _) in enumerate(
                self._setup
            ):
                plan = comm._compile_collective(
                    "alltoallv", peers,
                    send, counts, displs, datatype,
                    recv, counts, displs, datatype,
                    nonblocking=True,
                )
                self._nows[i] = ctx.clock.now
                self._learn_round_shape(i, plan, comm)
            self._wire_mat.flags.writeable = False
            nows = self._nows
        else:
            nows_list = []
            append = nows_list.append
            for compile_fn, clock, args in self._compile_rows:
                compile_fn(*args, nonblocking=True)
                append(clock.now)
            nows = np.asarray(nows_list, dtype=np.float64)
        batch = self.nic.reserve_batch(
            self._sources, self._dest_mat, nows[:, None], self._wire_mat,
            self._nbytes, ingest=True, paths=self._paths,
        )
        if self._paths is None:
            rows, cols = self._gather_rows, self._gather_cols
            self.nic.ingest_batch_vec(
                self._ingest_dests,
                batch.start[rows, cols],
                rows,
                batch.seq[rows, cols],
                self._wire_mat[rows, cols],
                batch.arrival[rows, cols],
            )
        else:
            # Routed records carry their receive-side rail, which the
            # columnar ingest kernel deliberately does not model — serve
            # them through the scalar call, one destination at a time.
            starts = batch.start.tolist()
            arrivals = batch.arrival.tolist()
            seqs = batch.seq.tolist()
            wires = self._wire_mat.tolist()
            rails = self._rails
            assert rails is not None
            for dest, row_i, row_j in zip(
                self._ingest_dests.tolist(),
                self._gather_rows.tolist(),
                self._gather_cols.tolist(),
            ):
                records = [
                    IngestRecord(starts[i][j], i, seqs[i][j], wires[i][j],
                                 arrivals[i][j], rails[i][j])
                    for i, j in zip(row_i, row_j)
                ]
                self.nic.ingest(dest, records)
        return n * k

    # --------------------------------------------------------------- reporting
    def digest(self) -> tuple:
        """The full priced state: NIC fingerprint, clocks and charge counts.

        Two drivers of the same shape that ran the same number of rounds
        must produce equal digests whatever their ``booking`` mode — the
        bit-identity contract of the batch kernels.
        """
        return (
            self.nic.state_fingerprint(),
            tuple(ctx.clock.now for ctx in self.world.contexts),
            tuple(ctx.clock.events for ctx in self.world.contexts),
        )

    def result(self, *, iters: int, messages: int, wall_s: float,
               best_round_s: float) -> ThroughputResult:
        """Fold one timed run's counters into a :class:`ThroughputResult`."""
        per_round = messages // iters if iters else 0
        stats = [entry[1].tempi.stats for entry in self._setup]
        return ThroughputResult(
            nranks=self.nranks,
            iters=iters,
            messages=messages,
            wall_s=wall_s,
            messages_per_s=per_round / best_round_s if best_round_s > 0 else float("inf"),
            peak_pending=self.nic.peak_pending,
            ledger_len=self.nic.ledger_len(),
            ledger_nbytes=self.nic.ledger_nbytes(),
            plan_cache_hits=sum(s.plan_cache_hits for s in stats),
            plan_cache_misses=sum(s.plan_cache_misses for s in stats),
            selection_memo_hits=sum(s.selection_memo_hits for s in stats),
            selection_memo_misses=sum(s.selection_memo_misses for s in stats),
        )


def drive(
    nranks: int,
    config: TempiConfig,
    model: PerformanceModel,
    *,
    iters: int,
    degree: int = HALO_DEGREE,
    topology: Optional[TopologySpec] = None,
    booking: str = "scalar",
) -> ThroughputResult:
    """Time ``iters`` halo-exchange rounds of the control plane.

    Every rank compiles one sparse ``alltoallv`` against its ``degree`` ring
    neighbours, reserves each post on the shared NIC and the arrivals are
    ingested per destination — single-threaded, so the wall clock measures
    the simulator, not the thread scheduler.  One untimed warm-up round
    populates the caches (and, in eager mode, the stream/staging pools) so
    the timed region sees the steady state of each configuration.
    ``messages_per_s`` comes from the *best* round (min timing, robust to GC
    and scheduler noise); ``wall_s`` is the whole timed region.

    A hierarchical ``topology`` spec adds the path-resolution leg: every
    reservation carries its resolved :class:`~repro.machine.topology.PathSpec`
    (rail cursors, shared uplink ledgers) and every ingestion record its
    receive-side rail — the extra per-message work ``--topology`` measures.
    ``booking="batched"`` prices each round through the NIC's vectorized
    batch kernels instead of the per-message calls (see :class:`HaloDriver`).
    """
    driver = HaloDriver(nranks, config, model, degree=degree,
                        topology=topology, booking=booking)
    driver.round()  # warm-up: populate caches and pools, untimed
    gc.collect()
    # Collector pauses would land on arbitrary rounds (a large-rank round
    # allocates hundreds of thousands of transient records), so the timed
    # region runs with the cyclic collector off, as pyperf does.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        messages = 0
        best_round_s = float("inf")
        begin = perf_counter()
        for _ in range(iters):
            start = perf_counter()
            posted = driver.round()
            best_round_s = min(best_round_s, perf_counter() - start)
            messages += posted
        wall_s = perf_counter() - begin
    finally:
        if gc_was_enabled:
            gc.enable()
    return driver.result(iters=iters, messages=messages, wall_s=wall_s,
                         best_round_s=best_round_s)


def profile_drive(
    nranks: int,
    config: TempiConfig,
    model: PerformanceModel,
    *,
    iters: int,
    degree: int = HALO_DEGREE,
    topology: Optional[TopologySpec] = None,
    booking: str = "scalar",
    top: int = 20,
) -> str:
    """Profile ``iters`` rounds of the booking loop; return the hotspot table.

    Runs the same steady-state region :func:`drive` times (one untimed
    warm-up round first, so compiles are cache hits and pools are primed)
    under :mod:`cProfile` and renders the ``top`` functions by cumulative
    time — the ``--profile`` flag of ``bench_sim_throughput.py``.
    """
    driver = HaloDriver(nranks, config, model, degree=degree,
                        topology=topology, booking=booking)
    driver.round()  # warm-up stays outside the profile
    gc.collect()
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(iters):
        driver.round()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def _eager_iters(nranks: int) -> int:
    """Eager rounds per rank count — few; the eager path is slow but steady."""
    return max(2, 1536 // nranks)


def _cached_iters(nranks: int) -> int:
    """Cached rounds per rank count — more, for timing resolution.

    The floor matters at the large end of the sweep: ``messages_per_s``
    reports the *best* round, and under a noisy host (VM neighbours,
    frequency shifts) the minimum of too few samples wanders by 10-15%,
    which is larger than the effects the ``batched``/``cached`` legs are
    compared to resolve.  Eleven rounds keeps the large-rank legs honest
    at a few seconds of wall clock each.
    """
    return max(11, 10240 // nranks)


def default_model() -> PerformanceModel:
    """The reference-machine model every sweep leg prices against."""
    return PerformanceModel(measure_system(SUMMIT))


def run_sweep(
    rank_counts: Sequence[int] = SMOKE_RANKS,
    model: Optional[PerformanceModel] = None,
    *,
    degree: int = HALO_DEGREE,
    topology: Optional[TopologySpec] = None,
) -> dict[int, dict]:
    """Measure eager vs cached vs batched throughput at every rank count.

    Returns ``{nranks: {"eager": {...}|None, "cached": {...},
    "batched": {...}, "speedup": x|None, "batched_vs_cached": y}}`` with the
    per-mode :class:`ThroughputResult` fields flattened to plain dicts
    (JSON-ready for ``BENCH_sim.json``).  Above :data:`EAGER_MAX_RANKS` the
    eager leg is skipped (``None`` entries) — one recompile-every-round
    sweep point there costs minutes for a number the smaller points already
    establish.  ``topology`` runs the same sweep with a hierarchical world
    (path resolution and ledger binding per message), the ``--topology``
    leg of the CLI benchmark.
    """
    if model is None:
        model = default_model()
    results: dict[int, dict] = {}
    for nranks in rank_counts:
        eager = None
        if nranks <= EAGER_MAX_RANKS:
            eager = drive(nranks, EAGER_CONFIG, model, iters=_eager_iters(nranks),
                          degree=degree, topology=topology)
        cached = drive(nranks, CACHED_CONFIG, model, iters=_cached_iters(nranks),
                       degree=degree, topology=topology)
        batched = drive(nranks, CACHED_CONFIG, model, iters=_cached_iters(nranks),
                        degree=degree, topology=topology, booking="batched")
        results[nranks] = {
            "eager": asdict(eager) if eager is not None else None,
            "cached": asdict(cached),
            "batched": asdict(batched),
            "speedup": (cached.messages_per_s / eager.messages_per_s
                        if eager is not None else None),
            "batched_vs_cached": batched.messages_per_s / cached.messages_per_s,
        }
    return results


def check_sweep(results: Mapping[int, Mapping]) -> None:
    """Sanity-assert one sweep: caches help, hit, stay bounded — and scale."""
    for nranks, entry in results.items():
        eager, cached, batched = entry["eager"], entry["cached"], entry["batched"]
        speedup = entry["speedup"]
        if eager is not None:
            assert speedup > 1.0, (
                f"{nranks} ranks: cached path slower than eager ({speedup:.2f}x)"
            )
            assert eager["plan_cache_hits"] == 0, f"{nranks} ranks: eager mode hit a plan cache"
        assert cached["plan_cache_hits"] > 0, f"{nranks} ranks: plan cache never hit"
        assert batched["plan_cache_hits"] > 0, f"{nranks} ranks: batched leg missed the plan cache"
        # The compact ledger is the whole variable-size NIC footprint: the
        # ring is fixed-capacity and the advisory pending books are bounded.
        nic_defaults = 4096
        assert cached["ledger_len"] <= nic_defaults, f"{nranks} ranks: ledger unbounded"
        assert cached["peak_pending"] > 0, f"{nranks} ranks: no pending records tracked"
        assert batched["peak_pending"] > 0, f"{nranks} ranks: batched leg tracked no pending"
    smallest = min(results)
    # Compilation cost grows with the rank count while the cached path stays
    # near-flat, so the win shrinks on tiny worlds: hold the hard floor only
    # at halo scale (the >=10x acceptance target lives in the full bench run).
    if results[smallest]["speedup"] is not None:
        # Measured ~5.3x at 256 ranks on the reference host; the floor sits
        # a noise band (~15% on shared VMs) below that, not at the measured
        # value itself.
        floor = 4.0 if smallest >= 256 else 1.5
        assert results[smallest]["speedup"] >= floor, (
            f"{smallest} ranks: fast-path speedup {results[smallest]['speedup']:.1f}x "
            f"under the {floor:.1f}x floor"
        )
    # The batch kernels exist to hold throughput flat as the world grows:
    # per-message cost must not creep back in with the rank count.
    if 256 in results and 1024 in results:
        base = results[256]["batched"]["messages_per_s"]
        scaled = results[1024]["batched"]["messages_per_s"]
        assert scaled >= 0.8 * base, (
            f"batched throughput does not scale: {scaled:,.0f} msg/s at 1024 ranks "
            f"under 0.8x the {base:,.0f} msg/s at 256"
        )


def compare_baseline(
    results: Mapping[int, Mapping],
    baseline: Mapping,
    *,
    tolerance: float = 0.2,
) -> list[str]:
    """Regression-gate a fresh sweep against a committed ``BENCH_sim.json``.

    Compares the dimensionless cached/eager and batched/cached *speedup
    ratios* (stable across machines, unlike absolute msg/s) and the ledger
    bounds; a fresh ratio more than ``tolerance`` below the committed one is
    a failure.
    """
    failures: list[str] = []
    committed = baseline.get("results", {})
    for nranks, entry in results.items():
        ref = committed.get(str(nranks)) or committed.get(nranks)
        if ref is None:
            continue
        if entry["speedup"] is not None and ref.get("speedup") is not None:
            floor = (1.0 - tolerance) * float(ref["speedup"])
            if entry["speedup"] < floor:
                failures.append(
                    f"{nranks} ranks: speedup {entry['speedup']:.2f}x regressed below "
                    f"{floor:.2f}x (committed {ref['speedup']:.2f}x - {tolerance:.0%})"
                )
        if entry.get("batched_vs_cached") is not None and ref.get("batched_vs_cached") is not None:
            floor = (1.0 - tolerance) * float(ref["batched_vs_cached"])
            if entry["batched_vs_cached"] < floor:
                failures.append(
                    f"{nranks} ranks: batched/cached ratio {entry['batched_vs_cached']:.2f}x "
                    f"regressed below {floor:.2f}x (committed "
                    f"{ref['batched_vs_cached']:.2f}x - {tolerance:.0%})"
                )
        if entry["cached"]["ledger_nbytes"] > int(ref["cached"]["ledger_nbytes"]) * 2:
            failures.append(
                f"{nranks} ranks: ledger footprint {entry['cached']['ledger_nbytes']} B "
                f"over 2x the committed {ref['cached']['ledger_nbytes']} B"
            )
    return failures


def render_table(results: Mapping[int, Mapping]) -> str:
    """Format one sweep for the console."""
    lines = [
        f"{'ranks':>6} {'eager msg/s':>12} {'cached msg/s':>13} {'batched msg/s':>14} "
        f"{'speedup':>8} {'batch x':>8} {'peak pend':>10} {'ledger KiB':>11}"
    ]
    for nranks in sorted(results):
        entry = results[nranks]
        cached = entry["cached"]
        batched = entry["batched"]
        eager_s = (f"{entry['eager']['messages_per_s']:>12,.0f}"
                   if entry["eager"] is not None else f"{'-':>12}")
        speedup_s = (f"{entry['speedup']:>7.1f}x"
                     if entry["speedup"] is not None else f"{'-':>8}")
        lines.append(
            f"{nranks:>6} {eager_s} "
            f"{cached['messages_per_s']:>13,.0f} {batched['messages_per_s']:>14,.0f} "
            f"{speedup_s} {entry['batched_vs_cached']:>7.1f}x "
            f"{cached['peak_pending']:>10,} "
            f"{cached['ledger_nbytes'] / 1024:>11,.1f}"
        )
    return "\n".join(lines)
