"""MPI error hierarchy.

Real MPI reports errors through return codes (and usually aborts); the
simulation raises exceptions so tests can assert on the precise failure.
"""

from __future__ import annotations


class MpiError(RuntimeError):
    """Base class of every error raised by the simulated MPI."""


class MpiTypeError(MpiError, ValueError):
    """A datatype argument was invalid (``MPI_ERR_TYPE``)."""


class MpiArgumentError(MpiError, ValueError):
    """A count, rank, tag or buffer argument was invalid (``MPI_ERR_ARG``)."""


class MpiTruncationError(MpiError):
    """A receive buffer was too small for the matched message (``MPI_ERR_TRUNCATE``)."""


class MpiRankError(MpiArgumentError):
    """A rank was outside the communicator (``MPI_ERR_RANK``)."""


class MpiCommError(MpiError):
    """The communicator or world was used after shutdown."""
