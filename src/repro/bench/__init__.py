"""Benchmark harness helpers.

The ``benchmarks/`` directory contains one pytest-benchmark module per table
or figure of the paper's evaluation; this package holds what they share:

* :mod:`repro.bench.harness` — virtual-time measurement helpers (trimean of
  repeated runs, as Fig. 7 reports), simple fixed-width table rendering and
  speedup formatting;
* :mod:`repro.bench.workloads` — the exact datatype configurations the
  figures sweep (the 15 commit configurations of Fig. 7, the 2-D objects of
  Figs. 8/10/11);
* :mod:`repro.bench.reporting` — paper-vs-measured rows collected while the
  benchmarks run, so ``EXPERIMENTS.md`` can be regenerated from a benchmark
  session.
"""

from repro.bench.harness import (
    BenchResult,
    format_speedup,
    format_table,
    measure_virtual,
    trimean,
)
from repro.bench.reporting import ExperimentRecord, ReportCollector
from repro.bench.workloads import (
    Fig7Config,
    Fig8Config,
    Fig11Config,
    fig7_configurations,
    fig8_configurations,
    fig10_configurations,
    fig11_configurations,
)

__all__ = [
    "BenchResult",
    "ExperimentRecord",
    "Fig11Config",
    "Fig7Config",
    "Fig8Config",
    "ReportCollector",
    "fig10_configurations",
    "fig11_configurations",
    "fig7_configurations",
    "fig8_configurations",
    "format_speedup",
    "format_table",
    "measure_virtual",
    "trimean",
]
