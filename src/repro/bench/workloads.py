"""The datatype configurations swept by the paper's figures.

Figure 7 sweeps fifteen different *constructions* of 3-D objects (subarray;
hvector of vector; hvector of hvector of vector; subarray of vector) to show
that commit-time canonicalisation handles all of them.  Figures 8, 10 and 11
sweep 2-D objects parameterised by total size, contiguous-block length and
object count, with a 512 B pitch between blocks.

These builders produce *uncommitted* datatypes so each benchmark can time the
commit itself (Fig. 7) or commit through whichever communicator (baseline or
TEMPI) it is measuring.

One practical deviation: for very small blocks the paper's fixed 512 B pitch
makes the described allocation thousands of times larger than the payload
(a 4 MiB object of 1 B blocks spans 2 GiB).  The simulated kernels' cost does
not depend on the pitch, so when the 512 B pitch would push an allocation
past ``MAX_EXTENT_BYTES`` the workload shrinks the pitch to twice the block
length and records that in the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.mpi.constructors import (
    Type_contiguous,
    Type_create_hvector,
    Type_create_resized,
    Type_create_subarray,
    Type_vector,
)
from repro.mpi.datatype import BYTE, FLOAT, ORDER_C, Datatype

KIB = 1024
MIB = 1024 * 1024

#: Pitch between contiguous blocks in the 2-D sweeps (Fig. 8).
DEFAULT_PITCH = 512
#: Cap on the extent of a single described object in the functional benchmarks.
MAX_EXTENT_BYTES = 256 * MIB


# --------------------------------------------------------------------------- #
# Figure 7: fifteen 3-D object constructions
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Geometry3D:
    """A 3-D object of ``e0 × e1 × e2`` floats in an ``a0 × a1 × a2``-byte allocation."""

    e0: int
    e1: int
    e2: int
    a0: int
    a1: int
    a2: int

    def __post_init__(self) -> None:
        if self.e0 * 4 > self.a0:
            raise ValueError("object rows must fit in the allocation rows")
        if self.e1 > self.a1 or self.e2 > self.a2:
            raise ValueError("object must fit in the allocation")

    @property
    def object_bytes(self) -> int:
        return 4 * self.e0 * self.e1 * self.e2

    @property
    def alloc_bytes(self) -> int:
        return self.a0 * self.a1 * self.a2


#: Three object geometries, in the spirit of Fig. 2 (the paper's A0 of 256 B
#: cannot hold 100 floats; the allocation rows here are widened to 512 B).
GEOMETRIES = (
    Geometry3D(e0=100, e1=13, e2=47, a0=512, a1=512, a2=1024),
    Geometry3D(e0=64, e1=16, e2=16, a0=256, a1=64, a2=64),
    Geometry3D(e0=12, e1=40, e2=30, a0=64, a1=128, a2=128),
)


@dataclass(frozen=True)
class Fig7Config:
    """One bar of Fig. 7: a named way of constructing a 3-D object datatype."""

    index: int
    family: str
    geometry: Geometry3D
    build: Callable[[], Datatype]

    @property
    def label(self) -> str:
        return f"{self.index}:{self.family}"


def _subarray_3d(g: Geometry3D) -> Datatype:
    return Type_create_subarray(
        sizes=(g.a2, g.a1, g.a0),
        subsizes=(g.e2, g.e1, g.e0 * 4),
        starts=(0, 0, 0),
        order=ORDER_C,
        oldtype=BYTE,
    )


def _hvector_of_vector(g: Geometry3D) -> Datatype:
    plane = Type_vector(g.e1, g.e0, g.a0 // 4, FLOAT)
    return Type_create_hvector(g.e2, 1, g.a0 * g.a1, plane)


def _hvector_of_hvector_of_vector_float(g: Geometry3D) -> Datatype:
    row = Type_vector(1, g.e0, g.e0, FLOAT)
    plane = Type_create_hvector(g.e1, 1, g.a0, row)
    return Type_create_hvector(g.e2, 1, g.a0 * g.a1, plane)


def _hvector_of_hvector_of_contiguous_byte(g: Geometry3D) -> Datatype:
    row = Type_contiguous(g.e0 * 4, BYTE)
    plane = Type_create_hvector(g.e1, 1, g.a0, row)
    return Type_create_hvector(g.e2, 1, g.a0 * g.a1, plane)


def _subarray_of_vector(g: Geometry3D) -> Datatype:
    # The plane vector's natural extent is smaller than the allocation's plane
    # pitch, so it is resized (as real MPI codes do) before being tiled by the
    # enclosing 1-D subarray.
    plane = Type_vector(g.e1, g.e0, g.a0 // 4, FLOAT)
    tiled = Type_create_resized(plane, 0, g.a0 * g.a1)
    return Type_create_subarray(
        sizes=(g.a2,),
        subsizes=(g.e2,),
        starts=(0,),
        order=ORDER_C,
        oldtype=tiled,
    )


def fig7_configurations() -> list[Fig7Config]:
    """The fifteen constructions of Fig. 7 (indices 0-14)."""
    configs: list[Fig7Config] = []
    index = 0
    for geometry in GEOMETRIES:  # 0-2: subarray
        configs.append(Fig7Config(index, "subarray", geometry, lambda g=geometry: _subarray_3d(g)))
        index += 1
    for geometry in GEOMETRIES:  # 3-5: hvector of vector
        configs.append(
            Fig7Config(index, "hvector(vector)", geometry, lambda g=geometry: _hvector_of_vector(g))
        )
        index += 1
    for geometry in GEOMETRIES:  # 6-8: hvector of hvector of vector (float base)
        configs.append(
            Fig7Config(
                index,
                "hvector(hvector(vector))",
                geometry,
                lambda g=geometry: _hvector_of_hvector_of_vector_float(g),
            )
        )
        index += 1
    for geometry in GEOMETRIES:  # 9-11: hvector of hvector of contiguous bytes
        configs.append(
            Fig7Config(
                index,
                "hvector(hvector(contiguous))",
                geometry,
                lambda g=geometry: _hvector_of_hvector_of_contiguous_byte(g),
            )
        )
        index += 1
    for geometry in GEOMETRIES:  # 12-14: subarray of vector
        configs.append(
            Fig7Config(
                index, "subarray(vector)", geometry, lambda g=geometry: _subarray_of_vector(g)
            )
        )
        index += 1
    return configs


# --------------------------------------------------------------------------- #
# Figures 8, 10 and 11: 2-D objects (size, block length, count)
# --------------------------------------------------------------------------- #

def _pitch_for(object_bytes: int, block_bytes: int) -> int:
    """512 B pitch unless that makes the allocation unreasonably large."""
    nblocks = max(1, object_bytes // block_bytes)
    if nblocks * DEFAULT_PITCH <= MAX_EXTENT_BYTES:
        return DEFAULT_PITCH
    return 2 * block_bytes


@dataclass(frozen=True)
class Fig8Config:
    """One group of Fig. 8: a 2-D object packed ``count`` times."""

    label: str
    kind: str  # "vector" or "subarray"
    object_bytes: int
    count: int
    block_bytes: int

    @property
    def pitch(self) -> int:
        return _pitch_for(self.object_bytes, self.block_bytes)

    @property
    def nblocks(self) -> int:
        return max(1, self.object_bytes // self.block_bytes)

    def build(self) -> Datatype:
        """The datatype describing one object."""
        if self.kind == "vector":
            if self.nblocks == 1:
                return Type_contiguous(self.object_bytes, BYTE)
            return Type_vector(self.nblocks, self.block_bytes, self.pitch, BYTE)
        if self.kind == "subarray":
            return Type_create_subarray(
                sizes=(self.nblocks, self.pitch),
                subsizes=(self.nblocks, self.block_bytes),
                starts=(0, 0),
                order=ORDER_C,
                oldtype=BYTE,
            )
        raise ValueError(f"unknown 2-D datatype kind {self.kind!r}")

    @property
    def extent_bytes(self) -> int:
        """Bytes of allocation needed for ``count`` objects."""
        per_object = (self.nblocks - 1) * self.pitch + self.block_bytes
        return per_object * self.count if self.nblocks > 1 else self.object_bytes * self.count


def fig8_configurations() -> list[Fig8Config]:
    """The seven bar groups of Fig. 8."""
    return [
        Fig8Config("vec 1KiB 1/1", "vector", KIB, 1, 1),
        Fig8Config("vec 1KiB 1/8", "vector", KIB, 1, 8),
        Fig8Config("sub 1KiB 1/8", "subarray", KIB, 1, 8),
        Fig8Config("vec 1KiB 1/128", "vector", KIB, 1, 128),
        Fig8Config("vec 1KiB 1/256", "vector", KIB, 1, 256),
        Fig8Config("vec 1KiB 2/8", "vector", KIB, 2, 8),
        Fig8Config("vec 4MiB 2/1", "vector", 4 * MIB, 2, 1),
    ]


#: Object sizes and contiguous-block lengths of Fig. 10's four panels.
FIG10_OBJECT_SIZES = (64, 64 * KIB, 256 * KIB, MIB, 4 * MIB)
FIG10_BLOCK_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def fig10_configurations() -> list[tuple[int, int]]:
    """(object bytes, block bytes) grid of Fig. 10, block capped at the object."""
    grid = []
    for object_bytes in FIG10_OBJECT_SIZES:
        for block_bytes in FIG10_BLOCK_SIZES:
            grid.append((object_bytes, min(block_bytes, object_bytes)))
    return grid


@dataclass(frozen=True)
class Fig11Config:
    """One bar group of Fig. 11: a 2-D object sent between two ranks."""

    object_bytes: int
    block_bytes: int

    @property
    def label(self) -> str:
        size = (
            f"{self.object_bytes // MIB}MiB"
            if self.object_bytes >= MIB
            else f"{self.object_bytes // KIB}KiB"
        )
        return f"{size}/{self.block_bytes}B"

    @property
    def pitch(self) -> int:
        return _pitch_for(self.object_bytes, self.block_bytes)

    @property
    def nblocks(self) -> int:
        return max(1, self.object_bytes // self.block_bytes)

    def build(self) -> Datatype:
        if self.nblocks == 1:
            return Type_contiguous(self.object_bytes, BYTE)
        return Type_vector(self.nblocks, self.block_bytes, self.pitch, BYTE)

    @property
    def extent_bytes(self) -> int:
        return (self.nblocks - 1) * self.pitch + self.block_bytes


FIG11_OBJECT_SIZES = (KIB, MIB, 4 * MIB)
FIG11_BLOCK_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def fig11_configurations() -> list[Fig11Config]:
    """The 27 bar groups of Fig. 11 (3 object sizes × 9 block lengths)."""
    configs = []
    for object_bytes in FIG11_OBJECT_SIZES:
        for block_bytes in FIG11_BLOCK_SIZES:
            configs.append(Fig11Config(object_bytes, block_bytes))
    return configs


def total_configurations() -> dict[str, int]:
    """Configuration counts per figure (used by documentation tests)."""
    return {
        "fig7": len(fig7_configurations()),
        "fig8": len(fig8_configurations()),
        "fig10": len(fig10_configurations()),
        "fig11": len(fig11_configurations()),
    }
