"""simlint core: violations, suppressions, file model and the lint driver.

The driver walks every Python file under ``src/`` of the repository root,
parses each once, runs the per-file rules (SIM001/SIM003/SIM005) and the
project-level rules (SIM002 call-graph purity, SIM004 doc coverage), then
filters the result through the per-line suppression comments.

Suppression syntax (one line, same line as the finding)::

    something_suspicious()  # simlint: disable=SIM001 -- why this is safe

The justification after ``--`` is mandatory: a disable comment without one
is reported as **SIM000** at the same line, so every suppression in the tree
documents itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

#: Every rule code this package can emit (SIM000 is the meta-rule that a
#: suppression must carry a justification; it cannot itself be suppressed).
RULE_CODES = ("SIM000", "SIM001", "SIM002", "SIM003", "SIM004", "SIM005")

_DISABLE_RE = re.compile(
    r"#\s*simlint:\s*disable=(?P<codes>SIM\d{3}(?:\s*,\s*SIM\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule that fired at a line of a file.

    Ordered by ``(path, line, code)`` so reports are stable however the
    rules ran; ``path`` is repository-root-relative (posix separators).
    """

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        """The one-line CI-greppable form: ``file:line: SIMxxx message``."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``# simlint: disable=...`` comment: which codes, and why."""

    line: int
    codes: tuple[str, ...]
    justified: bool


@dataclass
class SourceFile:
    """One parsed Python file plus its lint metadata."""

    path: Path
    relpath: str
    source: str
    tree: Optional[ast.Module]
    parse_error: Optional[str]
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is disabled (with or without a reason) at ``line``."""
        entry = self.suppressions.get(line)
        return entry is not None and code in entry.codes


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """Collect the per-line disable comments of one file."""
    suppressions: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = tuple(code.strip() for code in match.group("codes").split(","))
        suppressions[lineno] = Suppression(
            line=lineno, codes=codes, justified=match.group("why") is not None
        )
    return suppressions


def load_source_file(path: Path, root: Path) -> SourceFile:
    """Read and parse one file (a parse failure becomes a finding, not a crash)."""
    source = path.read_text(encoding="utf-8")
    relpath = path.relative_to(root).as_posix()
    tree: Optional[ast.Module] = None
    parse_error: Optional[str] = None
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:  # pragma: no cover - ruff/compileall gate first
        parse_error = f"could not parse: {exc.msg} (line {exc.lineno})"
    return SourceFile(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        parse_error=parse_error,
        suppressions=_parse_suppressions(source),
    )


def collect_files(root: Path) -> list[SourceFile]:
    """Every Python file under ``<root>/src``, parsed, in path order."""
    src = root / "src"
    if not src.is_dir():
        return []
    return [
        load_source_file(path, root)
        for path in sorted(src.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]


def _suppression_findings(files: Iterable[SourceFile]) -> list[Violation]:
    """SIM000: every disable comment must carry a ``-- justification``."""
    findings: list[Violation] = []
    for source_file in files:
        for suppression in source_file.suppressions.values():
            if not suppression.justified:
                findings.append(
                    Violation(
                        path=source_file.relpath,
                        line=suppression.line,
                        code="SIM000",
                        message=(
                            "suppression without a justification; write "
                            "'# simlint: disable="
                            + ",".join(suppression.codes)
                            + " -- <why this is safe>'"
                        ),
                    )
                )
    return findings


def _apply_suppressions(
    findings: Iterable[Violation], files: dict[str, SourceFile]
) -> list[Violation]:
    """Drop findings whose line carries a matching disable comment."""
    kept: list[Violation] = []
    for violation in findings:
        source_file = files.get(violation.path)
        if source_file is not None and source_file.suppressed(
            violation.line, violation.code
        ):
            continue
        kept.append(violation)
    return kept


def run_lint(
    root: Path, select: Optional[Iterable[str]] = None
) -> list[Violation]:
    """Run every rule over the repository at ``root`` and return the findings.

    ``select`` restricts the report to the given rule codes (SIM000 — the
    justification meta-rule — always runs).  Findings are sorted by
    ``(path, line, code)`` and already filtered through the per-line
    suppression comments.
    """
    from tools.analyze.doccheck import check_doc_coverage
    from tools.analyze.purity import check_selection_purity
    from tools.analyze.rules import FILE_RULES

    files = collect_files(root)
    by_relpath = {source_file.relpath: source_file for source_file in files}

    findings: list[Violation] = []
    for source_file in files:
        if source_file.parse_error is not None:
            findings.append(
                Violation(source_file.relpath, 1, "SIM000", source_file.parse_error)
            )
            continue
        for rule in FILE_RULES:
            findings.extend(rule(source_file))
    findings.extend(check_selection_purity(files))
    findings.extend(check_doc_coverage(root))

    findings = _apply_suppressions(findings, by_relpath)
    findings.extend(_suppression_findings(files))
    if select is not None:
        wanted = set(select) | {"SIM000"}
        findings = [violation for violation in findings if violation.code in wanted]
    return sorted(findings)
