"""Shared fixtures for the figure/table benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Two kinds of numbers are produced:

* **simulated latencies** (virtual time) — these are the quantities the paper
  plots, printed as fixed-width tables and recorded in the paper-vs-measured
  report (``benchmarks/bench_report.json`` + ``EXPERIMENTS.md``);
* **wall-clock timings** from pytest-benchmark — these measure the harness
  itself (how long the simulation takes to run on the host) and are what
  ``--benchmark-only`` reports.

Set ``REPRO_BENCH_FULL=1`` to sweep the full paper grids where the default
keeps a representative subset for wall-clock friendliness.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.reporting import ReportCollector
from repro.machine.spec import SUMMIT
from repro.tempi.measurement import measure_system
from repro.tempi.perf_model import PerformanceModel

#: Where the paper-vs-measured records of a benchmark session are written.
REPORT_PATH = Path(__file__).parent / "bench_report.json"


def full_sweep() -> bool:
    """True when the user asked for the complete paper grids."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


@pytest.fixture(scope="session")
def summit_measurement():
    """One measurement sweep of the simulated machine per benchmark session."""
    return measure_system(SUMMIT)


@pytest.fixture(scope="session")
def summit_model(summit_measurement) -> PerformanceModel:
    return PerformanceModel(summit_measurement)


@pytest.fixture(scope="session")
def report() -> ReportCollector:
    """The session-wide paper-vs-measured collector (saved at teardown)."""
    collector = ReportCollector()
    yield collector
    if collector.records:
        collector.save(REPORT_PATH)


_REPORT_FOR_SUMMARY: list[ReportCollector] = []


@pytest.fixture(scope="session", autouse=True)
def _register_report(report):
    _REPORT_FOR_SUMMARY.append(report)
    return report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay each benchmark's printed figure table after the run.

    The tables of simulated latencies are the benchmarks' real output; pytest
    captures stdout of passing tests, so they are written again here (and end
    up in ``bench_output.txt`` when the run is teed to a file).
    """
    sections = [
        (report.nodeid, report.capstdout)
        for report in terminalreporter.getreports("passed")
        if report.when == "call" and report.capstdout.strip()
    ]
    if sections:
        terminalreporter.write_sep("=", "figure/table harness output (simulated latencies)")
        for nodeid, text in sections:
            terminalreporter.write_sep("-", nodeid)
            terminalreporter.write_line(text)
    for collector in _REPORT_FOR_SUMMARY:
        if collector.records:
            terminalreporter.write_sep("=", "paper-vs-measured summary")
            terminalreporter.write_line(collector.to_text())
            terminalreporter.write_line(f"(saved to {REPORT_PATH})")
