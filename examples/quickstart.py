#!/usr/bin/env python
"""Quickstart: accelerate MPI_Pack on a strided GPU datatype with TEMPI.

This is the smallest end-to-end use of the library:

1. build a simulated single-rank MPI world (one GPU, Summit-like costs);
2. describe a 2-D strided object with a plain ``MPI_Type_vector``;
3. commit it twice — once through the system MPI, once through the TEMPI
   interposer — and pack it with both;
4. print the virtual-time latency of each and the speedup, which is the
   paper's headline effect (Fig. 8).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import format_us
from repro.mpi.constructors import Type_vector
from repro.mpi.datatype import BYTE
from repro.mpi.world import World
from repro.tempi.interposer import TempiCommunicator, interpose


def pack_once(use_tempi: bool) -> tuple[float, np.ndarray]:
    """Pack one 1 MiB object of 8-byte blocks; return (latency, packed bytes)."""
    world = World(nranks=1)
    ctx = world.contexts[0]
    comm = interpose(ctx) if use_tempi else ctx.comm

    # 1 MiB object made of 8-byte contiguous runs, 512 B apart (Fig. 8's shape).
    nblocks = (1 << 20) // 8
    datatype = comm.Type_commit(Type_vector(nblocks, 8, 512, BYTE))

    source = ctx.gpu.malloc(datatype.extent)
    source.data[:] = np.arange(source.nbytes, dtype=np.uint32).astype(np.uint8)
    packed = ctx.gpu.malloc(datatype.size)

    start = ctx.clock.now
    comm.Pack((source, 1, datatype), packed, 0)
    elapsed = ctx.clock.now - start

    if use_tempi:
        handler = TempiCommunicator.handler_of(datatype)
        print("TEMPI committed handler:")
        print(f"  canonical strided block : {handler.packer.block}")
        print(f"  kernel word size        : {handler.packer.kernel.word_size} B")
        print(f"  kernel block dim        : {handler.packer.kernel.block_dim}")
    return elapsed, packed.data.copy()


def main() -> None:
    baseline_time, baseline_bytes = pack_once(use_tempi=False)
    tempi_time, tempi_bytes = pack_once(use_tempi=True)

    assert np.array_equal(baseline_bytes, tempi_bytes), "packed bytes must be identical"

    print()
    print(f"MPI_Pack latency, system MPI baseline : {format_us(baseline_time):>14} us")
    print(f"MPI_Pack latency, TEMPI interposed    : {format_us(tempi_time):>14} us")
    print(f"speedup                               : {baseline_time / tempi_time:14,.0f} x")
    print()
    print("Both paths produced byte-identical packed buffers; TEMPI replaced")
    print("one cudaMemcpyAsync per 8-byte block with a single pack kernel.")


if __name__ == "__main__":
    main()
