"""Timing model of the simulated GPU.

The paper's results are shaped by a small number of device characteristics:

* a latency floor for every kernel launch and every ``cudaMemcpyAsync`` call
  (Sec. 6.2 attributes the Spectrum MPI baseline's pathology to one memcpy
  per contiguous block; Sec. 6.3 attributes TEMPI's ~30 µs send floor mostly
  to pack/unpack kernel launches);
* device-memory bandwidth, whose effective value degrades for short
  contiguous blocks because accesses stop being coalesced ("in-device
  performance is maximized at 128 B blocks", Fig. 10); and
* the CPU-GPU interconnect bandwidth used both by plain ``cudaMemcpy`` and by
  zero-copy (mapped host memory) accesses from pack kernels ("one-shot
  performance is maximized at 32 B blocks", Fig. 10).

:class:`GpuCostModel` turns those characteristics into durations.  Default
values approximate a Summit node (V100 + NVLink 2); they are deliberately
kept as plain dataclass fields so benchmarks and tests can build degenerate
models (e.g. zero launch latency) to isolate effects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


@dataclass(frozen=True)
class GpuCostModel:
    """Durations (seconds) and bandwidths (bytes/second) of a simulated GPU.

    Attributes
    ----------
    kernel_launch_s:
        Host-side latency of launching one kernel.
    kernel_sync_s:
        Latency of ``cudaStreamSynchronize`` once the stream is idle.
    memcpy_call_s:
        Host-side latency of one ``cudaMemcpyAsync`` call.  The baseline
        (Spectrum-like) datatype engine pays this once per contiguous block.
    alloc_s / free_s:
        Latency of ``cudaMalloc`` / ``cudaFree``; motivates TEMPI's resource
        cache (Sec. 5).
    host_alloc_pinned_s:
        Latency of ``cudaHostAlloc``; also cached by TEMPI.
    d2d_bandwidth:
        Device-memory copy bandwidth (bytes/s) for perfectly coalesced access.
    d2h_bandwidth / h2d_bandwidth:
        CPU-GPU interconnect bandwidth for bulk copies.
    zero_copy_bandwidth:
        Bandwidth of kernel loads/stores against mapped host memory
        (the "one-shot" path).
    device_saturation_block:
        Contiguous-block length (bytes) at which device-memory accesses from
        the pack kernel become fully coalesced.
    zero_copy_saturation_block:
        Same, for zero-copy accesses over the interconnect.
    min_efficiency:
        Lower bound of the coalescing-efficiency factor (1-byte blocks still
        move one transaction per element, not zero bandwidth).
    unpack_penalty:
        Multiplier applied to kernel time when the *strided* side is written
        rather than read (Fig. 10: unpack is slower than pack).
    """

    kernel_launch_s: float = 4.0e-6
    kernel_sync_s: float = 2.5e-6
    memcpy_call_s: float = 9.0e-6
    alloc_s: float = 120.0e-6
    free_s: float = 80.0e-6
    host_alloc_pinned_s: float = 250.0e-6
    d2d_bandwidth: float = 780.0e9
    d2h_bandwidth: float = 45.0e9
    h2d_bandwidth: float = 45.0e9
    zero_copy_bandwidth: float = 38.0e9
    device_saturation_block: int = 128
    zero_copy_saturation_block: int = 32
    min_efficiency: float = 1.0 / 160.0
    unpack_penalty: float = 1.35

    def __post_init__(self) -> None:
        for name in (
            "d2d_bandwidth",
            "d2h_bandwidth",
            "h2d_bandwidth",
            "zero_copy_bandwidth",
        ):
            _positive(name, getattr(self, name))
        _positive("device_saturation_block", self.device_saturation_block)
        _positive("zero_copy_saturation_block", self.zero_copy_saturation_block)
        if not 0 < self.min_efficiency <= 1:
            raise ValueError("min_efficiency must be in (0, 1]")
        if self.unpack_penalty < 1:
            raise ValueError("unpack_penalty must be >= 1")

    # ------------------------------------------------------------------ copies
    def memcpy_time(self, nbytes: int, bandwidth: float) -> float:
        """Duration of one bulk copy of ``nbytes`` at ``bandwidth``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.memcpy_call_s + nbytes / bandwidth

    def memcpy_d2d_time(self, nbytes: int) -> float:
        """Device-to-device bulk copy duration."""
        return self.memcpy_time(nbytes, self.d2d_bandwidth)

    def memcpy_d2h_time(self, nbytes: int) -> float:
        """Device-to-host bulk copy duration."""
        return self.memcpy_time(nbytes, self.d2h_bandwidth)

    def memcpy_h2d_time(self, nbytes: int) -> float:
        """Host-to-device bulk copy duration."""
        return self.memcpy_time(nbytes, self.h2d_bandwidth)

    def memcpy_h2h_time(self, nbytes: int) -> float:
        """Host-to-host copy duration (staging buffers); cheap relative to the rest."""
        return 0.3e-6 + nbytes / (2.0 * self.d2h_bandwidth)

    # ----------------------------------------------------------------- kernels
    def coalescing_efficiency(self, block_bytes: int, saturation_block: int) -> float:
        """Fraction of peak bandwidth achieved for ``block_bytes`` contiguous runs.

        Short blocks waste memory / interconnect transactions; efficiency grows
        linearly with the block length until it saturates at
        ``saturation_block`` bytes, matching the qualitative description of
        Fig. 10.
        """
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        eff = block_bytes / float(saturation_block)
        return min(1.0, max(self.min_efficiency, eff))

    def kernel_time(
        self,
        total_bytes: int,
        block_bytes: int,
        *,
        target: str = "device",
        unpack: bool = False,
        include_sync: bool = True,
    ) -> float:
        """Duration of one pack or unpack kernel.

        Parameters
        ----------
        total_bytes:
            Number of payload bytes gathered or scattered by the kernel.
        block_bytes:
            Length of each contiguous run in the strided object.
        target:
            ``"device"`` when the contiguous side lives in device memory
            (the *device* method), ``"host"`` when it is a mapped host buffer
            (the *one-shot* method).
        unpack:
            True when the strided side is written (scatter); slower than the
            gather direction because writes are harder to coalesce.
        include_sync:
            Include the trailing ``cudaStreamSynchronize`` latency, which
            TEMPI always performs before handing the buffer to MPI.
        """
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
        if target == "device":
            bandwidth = self.d2d_bandwidth
            saturation = self.device_saturation_block
        elif target == "host":
            bandwidth = self.zero_copy_bandwidth
            saturation = self.zero_copy_saturation_block
        else:
            raise ValueError(f"unknown kernel target {target!r}")
        block = max(1, min(block_bytes, total_bytes)) if total_bytes else 1
        eff = self.coalescing_efficiency(block, saturation)
        transfer = total_bytes / (bandwidth * eff)
        if unpack:
            transfer *= self.unpack_penalty
        duration = self.kernel_launch_s + transfer
        if include_sync:
            duration += self.kernel_sync_s
        return duration

    # ------------------------------------------------------------------ tuning
    def with_overrides(self, **kwargs: float) -> "GpuCostModel":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: Cost model approximating one Summit node (V100 + NVLink 2).  Used as the
#: default by :class:`repro.gpu.runtime.CudaRuntime` and by the benchmarks.
SUMMIT_GPU = GpuCostModel()

#: A zero-latency, infinite-bandwidth model for tests that only care about
#: functional correctness and want clocks to stay put.
FREE_GPU = GpuCostModel(
    kernel_launch_s=0.0,
    kernel_sync_s=0.0,
    memcpy_call_s=0.0,
    alloc_s=0.0,
    free_s=0.0,
    host_alloc_pinned_s=0.0,
    d2d_bandwidth=1e30,
    d2h_bandwidth=1e30,
    h2d_bandwidth=1e30,
    zero_copy_bandwidth=1e30,
)
